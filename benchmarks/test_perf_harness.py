"""Parallel grid engine vs the sequential harness.

The paper's evaluation grids are dominated by budgeted cells — many entries
of Tables 1–3 are ``TO`` at the 10-minute limit — and a timed-out cell is a
pure wall-clock wait, so scheduling cells onto a worker pool speeds the
sweep up by ~``workers`` even on a single CPU (and by up to
``min(workers, cpus)`` on compute-bound cells).  This benchmark runs the
same TO-dominated grid (Count-FloodSet at n=5..6, large t: every cell busts
a 1.5 s budget) sequentially and with four workers, asserts the two sweeps
agree cell for cell, and records the wall-clock speedup in
``BENCH_harness.json``.

Conventions follow ``BENCH_checker.json``/``BENCH_minimize.json``: the file
is only (re)written when missing or when ``REPRO_BENCH_RECORD`` is set, and
``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job) shrinks the grid and drops
the speedup assertion and recording.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Tuple

from repro.harness.tables import CellSpec, TableSpec, run_table

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_harness.json"

#: Acceptance floor for the parallel sweep on the TO-dominated grid.
SPEEDUP_FLOOR = 2.0

WORKERS = 2 if SMOKE else 4
TIMEOUT_SECONDS = 0.3 if SMOKE else 1.5
TERM_GRACE_SECONDS = 2.0

_RECORDING = not SMOKE and (
    bool(os.environ.get("REPRO_BENCH_RECORD")) or not BENCH_PATH.exists()
)


def _to_grid_spec() -> TableSpec:
    """A grid whose every cell exceeds the budget (Count-FloodSet, large n/t).

    ``count`` synthesis at n=5 already needs >6 s at t=2 and >8 s at t>=3 on
    the recording machine, so a 1.5 s budget times every cell out; n=6 rows
    are strictly larger.  In smoke mode a 2-row slice keeps CI fast.
    """
    pairs: List[Tuple[int, int]] = [
        (5, 3), (5, 4), (5, 5), (6, 3), (6, 4), (6, 5), (6, 6), (6, 2),
    ]
    if SMOKE:
        pairs = pairs[:2]
    spec = TableSpec(
        name="bench-to-grid",
        title="Benchmark: TO-dominated Count-FloodSet synthesis grid",
        row_header=("n", "t"),
    )
    for n, t in pairs:
        cells: List[CellSpec] = [
            (
                "count-synth",
                "sba-synthesis",
                {"exchange": "count", "num_agents": n, "max_faulty": t},
            )
        ]
        spec.rows.append(((n, t), cells))
    return spec


def _sweep_seconds(spec: TableSpec, workers: int) -> Tuple[float, dict]:
    start = time.perf_counter()
    result = run_table(
        spec,
        timeout=TIMEOUT_SECONDS,
        workers=workers,
        term_grace=TERM_GRACE_SECONDS,
        verbose=False,
    )
    elapsed = time.perf_counter() - start
    cells = {
        (row_key, column): outcome.cell()
        for (row_key, column), outcome in result.outcomes.items()
    }
    return elapsed, cells


def test_parallel_grid_speedup_on_budgeted_cells():
    """Four workers finish a TO-dominated grid >= 2x faster than one."""
    spec = _to_grid_spec()
    total_cells = sum(len(cells) for _, cells in spec.rows)

    sequential_seconds, sequential_cells = _sweep_seconds(spec, workers=1)
    parallel_seconds, parallel_cells = _sweep_seconds(spec, workers=WORKERS)

    # The two schedules must agree cell for cell before timing means anything.
    assert parallel_cells == sequential_cells
    assert len(parallel_cells) == total_cells
    if not SMOKE:
        assert set(parallel_cells.values()) == {"TO"}

    speedup = sequential_seconds / max(parallel_seconds, 1e-9)

    if _RECORDING:
        existing: dict = {}
        if BENCH_PATH.exists():
            try:
                existing = json.loads(BENCH_PATH.read_text())
            except ValueError:
                existing = {}
        workloads = existing.get("workloads", {})
        workloads["to_grid_count_n5_n6"] = {
            "workload": "TO-dominated experiment grid",
            "exchange": "count",
            "cells": total_cells,
            "timeout_seconds": TIMEOUT_SECONDS,
            "workers": WORKERS,
            "cpus": os.cpu_count(),
            "sequential_seconds": round(sequential_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": round(speedup, 2),
        }
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "parallel resumable grid engine vs the "
                    "sequential table harness",
                    "workloads": workloads,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    if SMOKE:
        return
    assert speedup >= SPEEDUP_FLOOR, (
        f"{WORKERS}-worker sweep of {total_cells} budgeted cells was only "
        f"{speedup:.2f}x faster ({sequential_seconds:.2f}s -> "
        f"{parallel_seconds:.2f}s; floor {SPEEDUP_FLOOR}x)"
    )


# ---------------------------------------------------------------------------
# Shared compute plane: build-once spaces vs per-cell rebuild
# ---------------------------------------------------------------------------

#: Acceptance floor for the shared-space sweep over the per-cell-rebuild
#: baseline on a build-dominated model-checking grid.
SHARED_SPEEDUP_FLOOR = 2.0

SHARED_TIMEOUT_SECONDS = 60.0 if SMOKE else 600.0


def _shared_grid_spec() -> TableSpec:
    """A model-checking grid where many cells read one literature space.

    Each FloodSet row carries four cells over the *same* space: the plain
    model check and the temporal-only check at the default horizon, plus two
    explicit-round variants (``rounds = t + 2`` resolves to the default
    horizon under a distinct cell key; ``rounds = t + 1`` is served as a
    prefix).  Building the space dominates each cell, so the shared plane —
    one parent-side build forked into all four — approaches a 4x saving per
    row, where the per-cell baseline rebuilds it four times.
    """
    pairs: List[Tuple[int, int]] = [(3, 1), (4, 2)] if SMOKE else [
        (5, 3), (5, 2), (4, 2),
    ]
    spec = TableSpec(
        name="bench-shared-grid",
        title="Benchmark: shared-space FloodSet model-checking grid",
        row_header=("n", "t"),
    )
    for n, t in pairs:
        base = {"exchange": "floodset", "num_agents": n, "max_faulty": t}
        cells: List[CellSpec] = [
            ("floodset-mc", "sba-model-check", dict(base)),
            ("floodset-temporal", "sba-temporal-only", dict(base)),
            ("floodset-mc-full", "sba-model-check",
             dict(base, rounds=t + 2)),
            ("floodset-mc-short", "sba-model-check",
             dict(base, rounds=t + 1)),
        ]
        spec.rows.append(((n, t), cells))
    return spec


def _shared_sweep_seconds(
    spec: TableSpec, share_spaces: bool
) -> Tuple[float, dict]:
    start = time.perf_counter()
    result = run_table(
        spec,
        timeout=SHARED_TIMEOUT_SECONDS,
        workers=1,
        share_spaces=share_spaces,
        verbose=False,
    )
    elapsed = time.perf_counter() - start
    cells = {
        (row_key, column): (outcome.result, outcome.timed_out, outcome.error)
        for (row_key, column), outcome in result.outcomes.items()
    }
    return elapsed, cells


def test_shared_space_grid_speedup_over_per_cell_rebuild():
    """Build-once spaces finish the grid >= 2x faster than rebuilding."""
    spec = _shared_grid_spec()
    total_cells = sum(len(cells) for _, cells in spec.rows)

    rebuild_seconds, rebuild_cells = _shared_sweep_seconds(
        spec, share_spaces=False)
    shared_seconds, shared_cells = _shared_sweep_seconds(
        spec, share_spaces=True)

    # The optimisation must be invisible in the results themselves (only
    # the wall-clock may differ).
    assert shared_cells == rebuild_cells
    assert len(shared_cells) == total_cells
    assert all(result is not None and not timed_out and error is None
               for result, timed_out, error in shared_cells.values())

    speedup = rebuild_seconds / max(shared_seconds, 1e-9)

    if _RECORDING:
        existing: dict = {}
        if BENCH_PATH.exists():
            try:
                existing = json.loads(BENCH_PATH.read_text())
            except ValueError:
                existing = {}
        workloads = existing.get("workloads", {})
        workloads["shared_space_floodset_mc"] = {
            "workload": "build-dominated FloodSet model-checking grid",
            "exchange": "floodset",
            "cells": total_cells,
            "cells_per_space": 4,
            "timeout_seconds": SHARED_TIMEOUT_SECONDS,
            "workers": 1,
            "cpus": os.cpu_count(),
            "rebuild_seconds": round(rebuild_seconds, 3),
            "shared_seconds": round(shared_seconds, 3),
            "speedup": round(speedup, 2),
        }
        existing["workloads"] = workloads
        existing.setdefault(
            "benchmark",
            "parallel resumable grid engine vs the sequential table harness",
        )
        BENCH_PATH.write_text(
            json.dumps(existing, indent=2, sort_keys=True) + "\n"
        )

    if SMOKE:
        return
    assert speedup >= SHARED_SPEEDUP_FLOOR, (
        f"shared-space sweep of {total_cells} cells was only "
        f"{speedup:.2f}x faster ({rebuild_seconds:.2f}s -> "
        f"{shared_seconds:.2f}s; floor {SHARED_SPEEDUP_FLOOR}x)"
    )
