"""Shared configuration for the benchmark suite.

Every benchmark is one cell of the paper's tables (or one of the ablations),
executed in-process exactly once per benchmark round so that
``pytest benchmarks/ --benchmark-only`` completes in a few minutes on a
laptop.

Setting ``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job) runs every
benchmark on tiny instances without speedup-floor assertions or result
recording — a functional check of the benchmark code paths, not a timing
run.  Each benchmark module reads the variable itself (pytest's conftest
modules are not reliably importable from test modules, so there is no
shared constant).  The full grids with per-cell timeouts (including the ``TO`` rows of
the paper) are produced by the CLI, e.g.::

    python -m repro table1 --max-n 5 --timeout 600
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark fixture and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
