"""Table 1: SBA model checking and synthesis, FloodSet vs Count-FloodSet.

Each benchmark corresponds to one cell of Table 1 of the paper (crash
failures, two decision values): the ``mc`` benchmarks model check the
literature protocol and compare its decisions against the knowledge condition,
the ``synth`` benchmarks synthesize the optimal implementation of the
knowledge-based program ``P``.  The grid is restricted to the cases that
complete quickly in-process; the full grid (including the paper's ``TO``
cells) is produced by ``python -m repro table1``.
"""

import pytest

from repro.harness.tasks import sba_model_check_task, sba_synthesis_task

FLOODSET_GRID = [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3), (4, 1), (4, 2), (4, 4)]
COUNT_GRID = [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3), (4, 1), (4, 2)]


@pytest.mark.parametrize("n,t", FLOODSET_GRID, ids=lambda v: str(v))
def test_floodset_model_check(benchmark, n, t):
    result = benchmark.pedantic(
        sba_model_check_task,
        kwargs={"exchange": "floodset", "num_agents": n, "max_faulty": t},
        rounds=1,
        iterations=1,
    )
    assert all(result["spec"].values())
    assert result["sound"]


@pytest.mark.parametrize("n,t", FLOODSET_GRID, ids=lambda v: str(v))
def test_floodset_synthesis(benchmark, n, t):
    result = benchmark.pedantic(
        sba_synthesis_task,
        kwargs={"exchange": "floodset", "num_agents": n, "max_faulty": t},
        rounds=1,
        iterations=1,
    )
    # The earliest decision time is the paper's condition (2).
    expected = n - 1 if t >= n - 1 else t + 1
    assert result["earliest_condition_time"] == expected


@pytest.mark.parametrize("n,t", COUNT_GRID, ids=lambda v: str(v))
def test_count_model_check(benchmark, n, t):
    result = benchmark.pedantic(
        sba_model_check_task,
        kwargs={
            "exchange": "count",
            "num_agents": n,
            "max_faulty": t,
            "optimal_protocol": True,
        },
        rounds=1,
        iterations=1,
    )
    assert all(result["spec"].values())
    assert result["sound"]


@pytest.mark.parametrize("n,t", COUNT_GRID, ids=lambda v: str(v))
def test_count_synthesis(benchmark, n, t):
    result = benchmark.pedantic(
        sba_synthesis_task,
        kwargs={"exchange": "count", "num_agents": n, "max_faulty": t},
        rounds=1,
        iterations=1,
    )
    assert result["states"] > 0
