"""Ablation: purely temporal model checking vs the full epistemic analysis.

The paper's conclusion notes that the purely temporal SBA specification can be
checked with much better scaling than the common-knowledge analysis (their
SAT-based run of Dwork-Moses at ``n = 5, t = 4`` finishes in ~2 minutes while
the epistemic analysis times out).  These benchmarks compare the two analyses
on the same models in our engine.
"""

import pytest

from repro.harness.tasks import sba_model_check_task, sba_temporal_only_task

CASES = [
    ("floodset", 4, 3),
    ("floodset", 5, 2),
    ("dwork-moses", 3, 2),
    ("dwork-moses", 3, 3),
]


@pytest.mark.parametrize("exchange,n,t", CASES, ids=lambda v: str(v))
def test_temporal_only_model_check(benchmark, exchange, n, t):
    result = benchmark.pedantic(
        sba_temporal_only_task,
        kwargs={"exchange": exchange, "num_agents": n, "max_faulty": t},
        rounds=1,
        iterations=1,
    )
    assert all(result["spec"].values())


@pytest.mark.parametrize("exchange,n,t", CASES, ids=lambda v: str(v))
def test_full_epistemic_model_check(benchmark, exchange, n, t):
    result = benchmark.pedantic(
        sba_model_check_task,
        kwargs={"exchange": exchange, "num_agents": n, "max_faulty": t},
        rounds=1,
        iterations=1,
    )
    assert all(result["spec"].values())
    assert result["sound"]
