"""Espresso vs Quine–McCluskey on the ROADMAP condition-rendering repro.

The ROADMAP open item: ``python -m repro synthesize --exchange ebasic
--agents 3 --faulty 1 --failures sending`` produces conditions over 10–11
feature variables with only 7–13 reachable observations each, and the seed's
exact Quine–McCluskey path (which expands the implicit don't-care complement)
took ~2 minutes for a *single* ``describe()`` call.  The espresso backend
renders the **whole** condition table (24 conditions, all agents and times)
in well under a second.

Results are recorded into ``BENCH_minimize.json`` at the repository root,
following the ``BENCH_checker.json`` conventions: the file is only
(re)written when missing or when ``REPRO_BENCH_RECORD`` is set.  The QM
baseline for the worst single condition takes ~2 minutes, so it is only
re-measured when ``REPRO_BENCH_QM`` is additionally set; otherwise the
recorded measurement (taken on this machine against the seed algorithm,
which this PR leaves available as ``method="qm"``) is carried forward and
the espresso side is re-timed and re-asserted on every run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.cover import assignment_to_index, certify_cover
from repro.core.synthesis import synthesize_eba
from repro.api import Scenario, build_model

# Benchmark-smoke mode (see benchmarks/conftest.py): keep the functional
# checks, drop the wall-clock assertion and recording.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_minimize.json"
ROUNDS = 1 if SMOKE else 3

#: Acceptance budget for rendering the full condition table with espresso.
ESPRESSO_BUDGET_SECONDS = 5.0

#: QM baseline for the worst single condition, measured on this scenario
#: before the backend switch existed (seed algorithm, same machine class as
#: the recorded espresso numbers).  Re-measure with ``REPRO_BENCH_QM=1``.
QM_WORST_SEED_SECONDS = 113.2

_RECORDING = not SMOKE and (
    bool(os.environ.get("REPRO_BENCH_RECORD")) or not BENCH_PATH.exists()
)
_MEASURE_QM = bool(os.environ.get("REPRO_BENCH_QM"))


def _roadmap_predicate(conditions):
    """The condition the ROADMAP open item cites: agent 0, time 1, decide-1.

    Ten feature variables, seven reachable observations — the smallest of
    the wide conditions.  (The 11-variable time-2 conditions are *worse* for
    QM — upwards of ten minutes — so the recorded baseline understates the
    seed's cost of rendering the full table.)
    """
    return conditions.get(0, 1, "decide1")


def _prior_qm_seconds() -> float:
    if BENCH_PATH.exists():
        try:
            recorded = json.loads(BENCH_PATH.read_text())
            return float(
                recorded["workloads"]["ebasic_sending_n3"]["qm_roadmap_seconds"]
            )
        except (ValueError, KeyError, TypeError):
            pass
    return QM_WORST_SEED_SECONDS


def test_roadmap_repro_condition_rendering():
    """The ROADMAP scenario's rendering drops from ~2 min to sub-second."""
    model = build_model(
        Scenario(exchange="ebasic", num_agents=3, max_faulty=1, failures="sending")
    )
    start = time.perf_counter()
    result = synthesize_eba(model)
    synthesis_seconds = time.perf_counter() - start
    conditions = result.conditions

    espresso_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        rendering = conditions.describe(method="espresso")
        espresso_seconds = min(espresso_seconds, time.perf_counter() - start)
    assert rendering.count("agent") == len(conditions.conditions)

    # Every espresso cover must verify exactly against its specification
    # before any timing claim means anything.
    for predicate in conditions.conditions.values():
        _, cover = predicate.minimised_cover(method="espresso")
        on_set, off_set = [], []
        for assignment, value in predicate._boolean_table()[1].items():
            (on_set if value else off_set).append(assignment_to_index(assignment))
        certificate = certify_cover(cover, on_set, off_set)
        assert certificate.prime_and_irredundant, (
            predicate.agent,
            predicate.time,
            certificate,
        )

    roadmap = _roadmap_predicate(conditions)
    start = time.perf_counter()
    roadmap.describe(method="espresso")
    espresso_roadmap_seconds = time.perf_counter() - start

    if _MEASURE_QM:
        start = time.perf_counter()
        roadmap.describe(method="qm")
        qm_roadmap_seconds = time.perf_counter() - start
    else:
        qm_roadmap_seconds = _prior_qm_seconds()

    payload = {
        "workload": "condition-rendering",
        "exchange": "ebasic",
        "n": 3,
        "t": 1,
        "failures": "sending",
        "conditions": len(conditions.conditions),
        "max_feature_variables": max(
            len(predicate._boolean_table()[0])
            for predicate in conditions.conditions.values()
        ),
        "roadmap_condition": "agent 0, time 1, decide1 (10 variables, 7 rows)",
        "synthesis_seconds": round(synthesis_seconds, 4),
        "espresso_table_seconds": round(espresso_seconds, 4),
        "espresso_roadmap_seconds": round(espresso_roadmap_seconds, 4),
        "qm_roadmap_seconds": round(qm_roadmap_seconds, 4),
        "qm_roadmap_remeasured": _MEASURE_QM,
        "roadmap_condition_speedup": round(
            qm_roadmap_seconds / max(espresso_roadmap_seconds, 1e-9), 2
        ),
    }

    if _RECORDING:
        existing: dict = {}
        if BENCH_PATH.exists():
            try:
                existing = json.loads(BENCH_PATH.read_text())
            except ValueError:
                existing = {}
        workloads = existing.get("workloads", {})
        workloads["ebasic_sending_n3"] = payload
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "espresso condition minimiser vs exact "
                    "Quine-McCluskey on the ROADMAP describe() repro",
                    "rounds": ROUNDS,
                    "workloads": workloads,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    if SMOKE:
        return
    assert espresso_seconds < ESPRESSO_BUDGET_SECONDS, (
        f"espresso rendering of the full condition table took "
        f"{espresso_seconds:.2f}s (budget {ESPRESSO_BUDGET_SECONDS}s)"
    )
