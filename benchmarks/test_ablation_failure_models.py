"""Ablation: receiving and general omissions behave like sending omissions.

Section 11 of the paper notes that modelling receiving and general omissions
gives similar performance, with successful computations in the same cases.
These benchmarks run EBA synthesis for E_min under each omission variant.
"""

import pytest

from repro.harness.tasks import eba_synthesis_task

GRID = [(2, 1), (3, 1), (3, 2)]


@pytest.mark.parametrize("failures", ["sending", "receiving", "general"])
@pytest.mark.parametrize("n,t", GRID, ids=lambda v: str(v))
def test_emin_synthesis_across_omission_variants(benchmark, n, t, failures):
    result = benchmark.pedantic(
        eba_synthesis_task,
        kwargs={
            "exchange": "emin",
            "num_agents": n,
            "max_faulty": t,
            "failures": failures,
        },
        rounds=1,
        iterations=1,
    )
    assert result["converged"]
