"""Table 3: EBA synthesis for the exchanges E_min and E_basic.

Each benchmark is one cell of Table 3: synthesizing the implementation of the
knowledge-based program ``P0`` for one exchange, failure model and (n, t).
The paper reports crash and sending-omissions columns; E_basic is more
expensive than E_min because of the additional ``num1`` counter — the same
ordering shows up in these benchmarks.
"""

import pytest

from repro.harness.tasks import eba_synthesis_task

GRID = [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3), (4, 1)]


@pytest.mark.parametrize("failures", ["crash", "sending"])
@pytest.mark.parametrize("n,t", GRID, ids=lambda v: str(v))
def test_emin_synthesis(benchmark, n, t, failures):
    result = benchmark.pedantic(
        eba_synthesis_task,
        kwargs={
            "exchange": "emin",
            "num_agents": n,
            "max_faulty": t,
            "failures": failures,
        },
        rounds=1,
        iterations=1,
    )
    assert result["converged"]


@pytest.mark.parametrize("failures", ["crash", "sending"])
@pytest.mark.parametrize("n,t", GRID, ids=lambda v: str(v))
def test_ebasic_synthesis(benchmark, n, t, failures):
    result = benchmark.pedantic(
        eba_synthesis_task,
        kwargs={
            "exchange": "ebasic",
            "num_agents": n,
            "max_faulty": t,
            "failures": failures,
        },
        rounds=1,
        iterations=1,
    )
    assert result["converged"]
