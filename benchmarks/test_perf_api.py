"""Cold vs warm repeated queries through one :class:`repro.api.Session`.

The paper's workloads are many small epistemic queries over a handful of
configurations — exactly what the session cache is for.  This benchmark runs
the same repeated check/synthesize mix twice:

* **cold** — a fresh ``Session`` per query, the pre-redesign behaviour
  (every call rebuilds model, space, checker and formulas from scratch);
* **warm** — one shared ``Session``, the facade behaviour (repeats are
  result-cache hits; related queries share artefacts).

It asserts the warm sweep is at least :data:`SPEEDUP_FLOOR` times faster and
records the honest numbers — cache hit/miss counts included — in
``BENCH_api.json``.

Conventions follow ``BENCH_harness.json``: the file is only (re)written when
missing or when ``REPRO_BENCH_RECORD`` is set, and ``REPRO_BENCH_SMOKE=1``
(the CI bench-smoke job) shrinks the workload and drops the assertion and
the recording.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List, Tuple

from repro.api import Scenario, Session

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_api.json"

#: Acceptance floor for the warm sweep (the issue asks for >= 3x).
SPEEDUP_FLOOR = 3.0

#: Acceptance floor for the striped session over the single-lock baseline on
#: the 4-thread all-cold diverse-traffic barrage.
CONCURRENT_SPEEDUP_FLOOR = 2.0

#: Injected per-result-build latency for the concurrency benchmark (seconds).
#: CPython's GIL serialises the pure-Python model/space/checker compute no
#: matter how the locks are arranged, so lock architecture is only measurable
#: when builds spend time off the GIL (as real deployments do in I/O, BDD
#: libraries or subprocesses).  Both contenders get the *same* injected
#: ``time.sleep`` through the documented ``Session._invoke_build`` seam; the
#: benchmark therefore measures exactly what changed in this redesign — one
#: global build lock vs per-key striping — not compute throughput.
BUILD_LATENCY_SECONDS = 0.02 if SMOKE else 0.15

#: How many times the query mix repeats (the serving workload shape:
#: the same handful of scenarios queried over and over).
REPEATS = 2 if SMOKE else 5

_RECORDING = not SMOKE and (
    bool(os.environ.get("REPRO_BENCH_RECORD")) or not BENCH_PATH.exists()
)


def _query_mix() -> List[Tuple[str, Scenario]]:
    """One round of the repeated check/synthesize mix."""
    if SMOKE:
        scenarios = [
            Scenario(exchange="floodset", num_agents=2, max_faulty=1),
            Scenario(exchange="emin", num_agents=2, max_faulty=1),
        ]
    else:
        scenarios = [
            Scenario(exchange="floodset", num_agents=3, max_faulty=1),
            Scenario(exchange="floodset", num_agents=3, max_faulty=2),
            Scenario(exchange="count", num_agents=3, max_faulty=2),
            Scenario(exchange="emin", num_agents=3, max_faulty=1),
        ]
    mix: List[Tuple[str, Scenario]] = []
    for scenario in scenarios:
        mix.append(("check", scenario))
        mix.append(("synthesize", scenario))
        if scenario.family == "sba":
            mix.append(("temporal", scenario))
    return mix


def _sweep_cold(mix: List[Tuple[str, Scenario]]) -> Tuple[float, list]:
    start = time.perf_counter()
    results = [Session().query(op, scenario) for op, scenario in mix]
    return time.perf_counter() - start, results


def _sweep_warm(
    session: Session, mix: List[Tuple[str, Scenario]]
) -> Tuple[float, list]:
    start = time.perf_counter()
    results = session.batch(mix)
    return time.perf_counter() - start, results


def test_warm_session_amortises_repeated_queries():
    """One warm session answers the repeated mix >= 3x faster than cold."""
    mix = _query_mix() * REPEATS

    cold_seconds, cold_results = _sweep_cold(mix)

    session = Session()
    warm_seconds, warm_results = _sweep_warm(session, mix)
    stats = session.stats()

    # Warm and cold must agree query for query before timing means anything.
    assert [r.to_dict() for r in warm_results] == [r.to_dict() for r in cold_results]
    # The repeats were answered from the session cache.
    assert stats.hits >= len(mix) - len(_query_mix())

    speedup = cold_seconds / max(warm_seconds, 1e-9)

    if _RECORDING:
        existing: dict = {}
        if BENCH_PATH.exists():
            try:
                existing = json.loads(BENCH_PATH.read_text())
            except ValueError:
                existing = {}
        workloads = existing.get("workloads", {})
        workloads["repeated_check_synthesize_mix"] = {
            "workload": "repeated check/synthesize/temporal mix through "
                        "one Session",
            "scenarios": sorted({
                f"{s.exchange} n={s.num_agents} t={s.max_faulty}"
                for _, s in mix
            }),
            "queries": len(mix),
            "repeats": REPEATS,
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "speedup": round(speedup, 2),
            "session_cache": stats.to_json(),
        }
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "session facade serving benchmarks: warm "
                    "cache amortisation, striped-lock concurrency, coalescing",
                    "workloads": workloads,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    if SMOKE:
        return
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm session answered {len(mix)} queries only {speedup:.2f}x faster "
        f"({cold_seconds:.2f}s -> {warm_seconds:.2f}s; floor {SPEEDUP_FLOOR}x)"
    )


class _LatencySession(Session):
    """A session whose result builds carry off-GIL latency (see above)."""

    def _invoke_build(self, key, build):
        if key[0] == "result":
            time.sleep(BUILD_LATENCY_SECONDS)
        return super()._invoke_build(key, build)


def _diverse_mix() -> List[Tuple[str, Scenario]]:
    """All-cold diverse traffic: every (op, scenario) is a distinct result key."""
    if SMOKE:
        scenarios = [
            Scenario(exchange="floodset", num_agents=2, max_faulty=1),
            Scenario(exchange="emin", num_agents=2, max_faulty=1),
        ]
        return [("check", s) for s in scenarios] + [("synthesize", s) for s in scenarios]
    scenarios = [
        Scenario(exchange="floodset", num_agents=2, max_faulty=1),
        Scenario(exchange="floodset", num_agents=3, max_faulty=1),
        Scenario(exchange="count", num_agents=2, max_faulty=1),
        Scenario(exchange="count", num_agents=3, max_faulty=2),
        Scenario(exchange="diff", num_agents=2, max_faulty=1),
        Scenario(exchange="emin", num_agents=2, max_faulty=1),
    ]
    mix: List[Tuple[str, Scenario]] = []
    for scenario in scenarios:
        mix.append(("check", scenario))
        mix.append(("synthesize", scenario))
    return mix


def _threaded_barrage(session: Session, mix: List[Tuple[str, Scenario]],
                      threads: int) -> float:
    """Wall-clock for ``threads`` workers draining ``mix`` round-robin."""
    import threading

    errors: list = []

    def worker(lane: int) -> None:
        try:
            for op, scenario in mix[lane::threads]:
                session.query(op, scenario)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(lane,))
               for lane in range(threads)]
    start = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return elapsed


def test_striped_session_beats_the_single_lock_baseline_at_four_threads():
    """4-thread all-cold distinct-scenario barrage: striping >= 2x the old lock."""
    threads = 2 if SMOKE else 4
    mix = _diverse_mix()

    baseline = _LatencySession(concurrent_builds=False)  # pre-redesign: one lock
    baseline_seconds = _threaded_barrage(baseline, mix, threads)

    striped = _LatencySession()
    striped_seconds = _threaded_barrage(striped, mix, threads)

    # Both sessions answered the whole barrage cold, nothing coalesced away.
    assert striped.stats().misses >= len(mix)
    assert baseline.stats().misses >= len(mix)

    speedup = baseline_seconds / max(striped_seconds, 1e-9)

    if _RECORDING:
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {"benchmark": "session facade benchmarks", "workloads": {}}
        existing.setdefault("workloads", {})["concurrent_cold_barrage"] = {
            "workload": "4-thread all-cold diverse traffic: per-key striped "
                        "locks vs the old single build lock",
            "note": "both sessions carry the same injected "
                    f"{BUILD_LATENCY_SECONDS}s off-GIL latency per result "
                    "build (the GIL serialises pure-Python compute either "
                    "way); the speedup isolates the lock architecture",
            "scenarios": sorted({
                f"{s.exchange} n={s.num_agents} t={s.max_faulty}"
                for _, s in mix
            }),
            "queries": len(mix),
            "threads": threads,
            "build_latency_seconds": BUILD_LATENCY_SECONDS,
            "single_lock_seconds": round(baseline_seconds, 3),
            "striped_seconds": round(striped_seconds, 3),
            "speedup": round(speedup, 2),
        }
        BENCH_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    if SMOKE:
        return
    assert speedup >= CONCURRENT_SPEEDUP_FLOOR, (
        f"striped session ran the {threads}-thread barrage only "
        f"{speedup:.2f}x faster ({baseline_seconds:.2f}s -> "
        f"{striped_seconds:.2f}s; floor {CONCURRENT_SPEEDUP_FLOOR}x)"
    )


def test_concurrent_identical_cold_requests_coalesce_to_one_build():
    """Two identical cold requests racing: one build, coalesce counter = 1."""
    import threading

    built: list = []

    class CountingLatencySession(_LatencySession):
        def _invoke_build(self, key, build):
            if key[0] == "result":
                built.append(key)
            return super()._invoke_build(key, build)

    session = CountingLatencySession()
    scenario = Scenario(exchange="floodset", num_agents=2, max_faulty=1)
    results: list = []

    def worker() -> None:
        results.append(session.check(scenario))

    workers = [threading.Thread(target=worker) for _ in range(2)]
    first, second = workers
    first.start()
    time.sleep(BUILD_LATENCY_SECONDS / 2)  # the duplicate lands mid-build
    second.start()
    for thread in workers:
        thread.join(timeout=120)

    assert len(results) == 2 and results[0] is results[1]
    assert len(built) == 1  # the duplicate coalesced onto the in-flight build
    stats = session.stats()
    assert stats.coalesced == 1

    if _RECORDING:
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {"benchmark": "session facade benchmarks", "workloads": {}}
        existing.setdefault("workloads", {})["identical_cold_coalesce"] = {
            "workload": "two concurrent identical cold /check requests",
            "builds": 1,
            "coalesced": stats.coalesced,
            "hits": stats.hits,
            "misses": stats.misses,
        }
        BENCH_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


# ------------------------------------------------------------ pre-fork front

#: Acceptance floor for ``repro serve --workers 4`` over one process on the
#: all-cold diverse barrage (the issue asks for >= 2x).
PREFORK_SPEEDUP_FLOOR = 2.0

PREFORK_WORKERS = 2 if SMOKE else 4

#: Injected per-cold-build latency for the simulated-GIL mode (seconds) —
#: see :data:`repro.api.service.BUILD_DELAY_ENV`.
SIMULATED_BUILD_SECONDS = 0.05 if SMOKE else 0.25

#: Real cold builds only parallelise across processes when there are cores
#: to run them on; below this the benchmark injects the simulated-GIL
#: latency instead (see the recorded note).
_REAL_COMPUTE = (os.cpu_count() or 1) >= PREFORK_WORKERS


def _prefork_mix() -> List[Tuple[str, dict]]:
    """Distinct cold queries as JSON documents (one result key each)."""
    mix = [(op, {"scenario": scenario.to_json()})
           for op, scenario in _diverse_mix()]
    seen: List[Scenario] = []
    for _, scenario in _diverse_mix():
        if scenario.family == "sba" and scenario not in seen:
            seen.append(scenario)
            mix.append(
                ("check", {"scenario": scenario.to_json(), "temporal": True}))
    return mix


def _spawn_serve(workers: int) -> Tuple[object, str]:
    """A real ``repro serve`` subprocess; returns (process, base URL)."""
    import re
    import subprocess
    import sys

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    if not _REAL_COMPUTE:
        env["REPRO_SERVE_BUILD_DELAY"] = str(SIMULATED_BUILD_SECONDS)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(workers), "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
    )
    banner = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    assert match, f"no serve banner (got {banner!r})"
    return process, f"http://127.0.0.1:{match.group(1)}"


def _drive_prefork(workers: int, mix: List[Tuple[str, dict]],
                   clients: int) -> float:
    """Wall-clock for ``clients`` threads draining ``mix`` once, cold."""
    import signal
    import threading
    import urllib.request

    process, base = _spawn_serve(workers)
    errors: list = []

    def client(lane: int) -> None:
        try:
            for op, payload in mix[lane::clients]:
                request = urllib.request.Request(
                    f"{base}/{op}", data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=600) as response:
                    assert json.loads(response.read())["ok"]
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    try:
        threads = [threading.Thread(target=client, args=(lane,))
                   for lane in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        elapsed = time.perf_counter() - start
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.communicate(timeout=60)
        except Exception:  # pragma: no cover - cleanup of a hung server
            process.kill()
            process.communicate(timeout=30)
    assert not errors, errors
    return elapsed


def test_prefork_workers_beat_one_process_on_cold_traffic():
    """``--workers 4`` answers the all-cold barrage >= 2x faster than one
    process.

    Each server is a fresh subprocess with no store, so every query is a
    cold CPU-bound build; clients use one connection per request, so the
    kernel spreads the load across the workers at ``accept()``.  On hosts
    with fewer cores than workers the builds carry the documented
    simulated-GIL latency seam instead of real compute (recorded in the
    ``mode`` field): the sleep holds a process-wide lock, so it serialises
    within a process and parallelises across forked workers exactly as
    GIL-bound compute does on a machine with the cores to run it.
    """
    mix = _prefork_mix()
    clients = 4 if SMOKE else 8

    single_seconds = _drive_prefork(1, mix, clients)
    prefork_seconds = _drive_prefork(PREFORK_WORKERS, mix, clients)
    speedup = single_seconds / max(prefork_seconds, 1e-9)

    if _RECORDING:
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {"benchmark": "session facade benchmarks", "workloads": {}}
        existing.setdefault("workloads", {})["prefork_cold_diverse_traffic"] = {
            "workload": f"repro serve --workers {PREFORK_WORKERS} vs one "
                        f"process: {len(mix)} distinct cold queries from "
                        f"{clients} client threads",
            "mode": "real-compute" if _REAL_COMPUTE else "simulated-gil",
            "note": "real-compute when the host has at least as many cores "
                    "as workers; otherwise each cold build carries "
                    f"{SIMULATED_BUILD_SECONDS}s of injected latency under "
                    "a process-wide lock (REPRO_SERVE_BUILD_DELAY), which "
                    "serialises inside a process and parallelises across "
                    "forked workers exactly like GIL-bound compute",
            "queries": len(mix),
            "client_threads": clients,
            "workers": PREFORK_WORKERS,
            "cores": os.cpu_count(),
            "single_process_seconds": round(single_seconds, 3),
            "prefork_seconds": round(prefork_seconds, 3),
            "speedup": round(speedup, 2),
        }
        BENCH_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    if SMOKE:
        return
    assert speedup >= PREFORK_SPEEDUP_FLOOR, (
        f"{PREFORK_WORKERS} workers answered the {len(mix)}-query cold "
        f"barrage only {speedup:.2f}x faster ({single_seconds:.2f}s -> "
        f"{prefork_seconds:.2f}s; floor {PREFORK_SPEEDUP_FLOOR}x)"
    )


def test_serve_answers_concurrent_repeated_queries_from_the_session_cache():
    """The JSON service on one shared session: concurrent repeats are hits."""
    import threading
    import urllib.request

    from repro.api.service import make_server

    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    n, t = (2, 1) if SMOKE else (3, 1)
    scenario = {"exchange": "floodset", "num_agents": n, "max_faulty": t}
    clients = 2 if SMOKE else 8
    rounds = 2 if SMOKE else 5

    def post(path, payload):
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.loads(response.read())

    try:
        errors: list = []

        def client() -> None:
            try:
                for _ in range(rounds):
                    assert post("/check", {"scenario": scenario})["ok"]
                    assert post("/synthesize", {"scenario": scenario})["ok"]
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        start = time.perf_counter()
        threads = [threading.Thread(target=client) for _ in range(clients)]
        for worker in threads:
            worker.start()
        for worker in threads:
            worker.join(timeout=300)
        elapsed = time.perf_counter() - start
        assert not errors
        cache = post("/batch", {"requests": []})["cache"]
    finally:
        server.shutdown()
        server.server_close()

    total_queries = clients * rounds * 2
    # Every request past the first two built nothing: the shared session
    # answered it from the cache.
    assert cache["hits"] >= total_queries - 2

    if _RECORDING:
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {"benchmark": "session facade benchmarks", "workloads": {}}
        existing.setdefault("workloads", {})["serve_concurrent_repeats"] = {
            "workload": "repro serve: concurrent clients repeating one "
                        "check/synthesize pair",
            "scenario": f"floodset n={n} t={t}",
            "clients": clients,
            "queries": total_queries,
            "seconds": round(elapsed, 3),
            "session_cache": cache,
        }
        BENCH_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# Preloaded workers: first-query latency vs a cold session
# ---------------------------------------------------------------------------

#: Acceptance floor for the preloaded first query over the cold first query
#: on a build-dominated scenario.
PRELOAD_SPEEDUP_FLOOR = 2.0


def test_preloaded_session_first_query_beats_cold():
    """A ``serve --preload`` worker answers its first query without paying
    the space build: the parent built the artefacts pre-fork and the child
    inherits them copy-on-write.  This measures that first-query latency
    against a cold session on the same scenario (the build dominates, so
    the preloaded path should win by far more than the 2x floor)."""
    from repro.runtime.preload import Preloader

    if SMOKE:
        scenario = Scenario(exchange="floodset", num_agents=4, max_faulty=2)
    else:
        scenario = Scenario(exchange="floodset", num_agents=5, max_faulty=3)

    cold_session = Session()
    start = time.perf_counter()
    cold_result = cold_session.check(scenario)
    cold_seconds = time.perf_counter() - start

    # The preload itself happens in the serve parent, outside any query.
    preloader = Preloader()
    preload_start = time.perf_counter()
    preloader.preload_cells([("sba-model-check", scenario)])
    preload_seconds = time.perf_counter() - preload_start

    warm_session = Session(preloaded=preloader)
    start = time.perf_counter()
    warm_result = warm_session.check(scenario)
    warm_seconds = time.perf_counter() - start

    assert warm_result.to_dict() == cold_result.to_dict()
    assert warm_session.stats().preloaded == 2  # model + space served
    assert warm_session.build_seconds() == 0.0

    speedup = cold_seconds / max(warm_seconds, 1e-9)

    if _RECORDING:
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (OSError, ValueError):
            existing = {"benchmark": "session facade benchmarks",
                        "workloads": {}}
        existing.setdefault("workloads", {})["preloaded_first_query"] = {
            "workload": "serve --preload: first query on a preloaded worker "
                        "vs a cold session",
            "scenario": (f"floodset n={scenario.num_agents} "
                         f"t={scenario.max_faulty}"),
            "cold_first_query_seconds": round(cold_seconds, 3),
            "preload_seconds": round(preload_seconds, 3),
            "preloaded_first_query_seconds": round(warm_seconds, 3),
            "speedup": round(speedup, 2),
        }
        BENCH_PATH.write_text(
            json.dumps(existing, indent=2, sort_keys=True) + "\n")

    if SMOKE:
        return
    assert speedup >= PRELOAD_SPEEDUP_FLOOR, (
        f"preloaded first query was only {speedup:.2f}x faster "
        f"({cold_seconds:.3f}s -> {warm_seconds:.3f}s; "
        f"floor {PRELOAD_SPEEDUP_FLOOR}x)"
    )
