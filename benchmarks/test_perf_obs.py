"""Observability overhead guard: instrumentation-on vs off on a warm sweep.

PR 9 threads a metrics registry, trace spans and optional kernel profiling
through the serving path.  The contract is that the always-on portion
(counters, histograms, inert spans, profile wrappers in their disabled
fast path) costs ≤5% on a warm check sweep — the cache-hit regime a
long-lived ``repro serve`` front lives in.

Both sides run the *same* serving-shaped work per query — scenario
validation, the session query, a stats snapshot and its JSON encoding,
exactly what the HTTP handler does per request minus the socket — so the
ratio measures instrumentation against realistic request handling rather
than against a bare dict lookup.  The baseline session routes its metrics
to the no-op ``NULL`` registry; the instrumented one uses a real registry.
Rounds alternate sides and both take a min-of-rounds, which cancels
machine drift.

Machine noise (scheduler preemption, CPU frequency, GC) moves a single
round by more than the budget itself, but the noise is one-sided — it only
ever *adds* time — so each side's true cost is estimated as the minimum
over many rounds, with the two sides alternating (baseline-first on even
pairs, instrumented-first on odd ones) so both sample the same machine
states and warm-up drift cannot favour either.

Results are recorded into ``BENCH_obs.json`` at the repository root,
following the ``BENCH_checker.json`` conventions: the file is only
(re)written when missing or when ``REPRO_BENCH_RECORD`` is set.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Tuple

from repro.api import Scenario, Session
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
ROUNDS = 1 if SMOKE else 10
REPEATS = 3 if SMOKE else 400

#: The acceptance bound from the PR issue: warm-path instrumentation must
#: cost no more than 5%.
OVERHEAD_BUDGET_RATIO = 1.05

_RECORDING = not SMOKE and (
    bool(os.environ.get("REPRO_BENCH_RECORD")) or not BENCH_PATH.exists()
)

RAW_SCENARIOS = [
    {"exchange": "floodset", "num_agents": agents, "max_faulty": 1}
    for agents in (2, 3, 4)
]


def _sweep(session: Session, repeats: int) -> float:
    """One timed round: the serving path for every scenario, ``repeats`` times."""
    start = time.perf_counter()
    for _ in range(repeats):
        for raw in RAW_SCENARIOS:
            scenario = Scenario(**raw)
            result = session.check(scenario)
            payload = {"ok": True, "result": result.to_json(),
                       "cache": session.stats().to_json()}
            json.dumps(payload)
    return time.perf_counter() - start


def test_warm_sweep_overhead_within_budget():
    # Kernel profiling must be off: the wrapper's disabled fast path is part
    # of what this guard prices in, the enabled path is opt-in by design.
    obs_profile.disable()

    baseline = Session(metrics=obs_metrics.NULL)
    instrumented = Session(metrics=obs_metrics.MetricsRegistry())

    # Warm both sides: every query after this is a result-cache hit.
    _sweep(baseline, 1)
    _sweep(instrumented, 1)

    def _measure() -> Tuple[float, float, float]:
        baseline_best = float("inf")
        instrumented_best = float("inf")
        for pair in range(ROUNDS):
            if pair % 2 == 0:
                baseline_seconds = _sweep(baseline, REPEATS)
                instrumented_seconds = _sweep(instrumented, REPEATS)
            else:
                instrumented_seconds = _sweep(instrumented, REPEATS)
                baseline_seconds = _sweep(baseline, REPEATS)
            baseline_best = min(baseline_best, baseline_seconds)
            instrumented_best = min(instrumented_best, instrumented_seconds)
        return (instrumented_best / max(baseline_best, 1e-9),
                baseline_best, instrumented_best)

    # Noise-robust overhead: best-over-rounds on both sides.  Scheduler
    # noise is strictly additive, so when a whole attempt is polluted by
    # co-load the measured ratio can only be inflated — retry a couple of
    # times and keep the cleanest attempt (every attempt is recorded).
    attempts = []
    for _ in range(1 if SMOKE else 3):
        attempts.append(_measure())
        if attempts[-1][0] <= OVERHEAD_BUDGET_RATIO * 0.98:
            break
    ratio, baseline_best, instrumented_best = min(attempts)
    queries = REPEATS * len(RAW_SCENARIOS)

    # The instrumented side really did count: every query was a lookup.
    snapshot = instrumented.metrics_registry.snapshot()
    lookups = sum(
        series["value"]
        for series in snapshot["repro_session_lookups_total"]["series"]
    )
    assert lookups >= queries

    payload = {
        "workload": "warm-check-sweep",
        "scenarios": [
            f"{raw['exchange']} n={raw['num_agents']} t={raw['max_faulty']}"
            for raw in RAW_SCENARIOS
        ],
        "queries_per_round": queries,
        "rounds": ROUNDS,
        "baseline_seconds": round(baseline_best, 4),
        "instrumented_seconds": round(instrumented_best, 4),
        "attempt_ratios": [round(value, 4) for value, _, _ in attempts],
        "overhead_ratio": round(ratio, 4),
        "budget_ratio": OVERHEAD_BUDGET_RATIO,
    }

    if _RECORDING:
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "benchmark": "observability instrumentation overhead on "
                    "a warm serving-path check sweep (on vs off)",
                    "workloads": {"warm_check_sweep": payload},
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    if SMOKE:
        return
    assert ratio <= OVERHEAD_BUDGET_RATIO, (
        f"instrumentation overhead {((ratio - 1) * 100):.1f}% exceeds "
        f"{(OVERHEAD_BUDGET_RATIO - 1) * 100:.0f}% "
        f"(baseline {baseline_best:.4f}s, instrumented {instrumented_best:.4f}s)"
    )
