"""Qualitative reproduction benchmarks (E4-E8).

These benchmarks time the analyses behind the paper's qualitative findings and
assert the findings themselves:

* E4 — FloodSet's earliest decision condition (2) and the refutation of the
  naive ``t + 1`` hypothesis at ``n = 3, t = 2``.
* E5 — the Count-FloodSet ``count <= 1`` early exit (condition (3)) and the
  insufficiency of ``count <= 2``.
* E6 — Diff provides no SBA improvement over Count.
* E7 — the Dwork-Moses protocol is a correct SBA protocol.
* E8 — E_min / E_basic are correct EBA protocols and exact implementations of
  ``P0`` for ``t < n - 1``.
"""

from repro.analysis import (
    check_count_le_two_insufficient,
    check_diff_no_improvement,
    count_condition_hypothesis,
    floodset_condition_hypothesis,
    naive_floodset_hypothesis,
)
from repro.core.synthesis import synthesize_sba
from repro.api import Scenario, build_model
from repro.kbp import verify_eba_implementation, verify_sba_implementation
from repro.protocols import (
    DworkMosesProtocol,
    EBasicProtocol,
    EMinProtocol,
    FloodSetStandardProtocol,
)


def test_e4_floodset_condition_two(benchmark):
    def experiment():
        model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=2))
        result = synthesize_sba(model)
        naive = result.conditions.check_hypothesis(0, naive_floodset_hypothesis(3, 2, 0))
        revised = result.conditions.check_hypothesis(
            0, floodset_condition_hypothesis(3, 2, 0)
        )
        late = verify_sba_implementation(model, FloodSetStandardProtocol(3, 2))
        return naive, revised, late

    naive, revised, late = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert not naive.confirmed
    assert revised.confirmed
    assert late.is_sound and not late.is_optimal


def test_e5_count_early_exit(benchmark):
    def experiment():
        model = build_model(Scenario(exchange="count", num_agents=3, max_faulty=2))
        result = synthesize_sba(model)
        hypothesis = result.conditions.check_hypothesis(
            0, count_condition_hypothesis(3, 2, 0)
        )
        return result, hypothesis

    result, hypothesis = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert hypothesis.confirmed
    assert check_count_le_two_insufficient(result)
    assert not result.conditions.get(0, 1, 0).always_false()


def test_e6_diff_no_improvement(benchmark):
    def experiment():
        diff_result = synthesize_sba(build_model(Scenario(exchange="diff", num_agents=3, max_faulty=2)))
        count_result = synthesize_sba(
            build_model(Scenario(exchange="count", num_agents=3, max_faulty=2))
        )
        return check_diff_no_improvement(diff_result, count_result)

    assert benchmark.pedantic(experiment, rounds=1, iterations=1)


def test_e7_dwork_moses_correctness(benchmark):
    def experiment():
        model = build_model(Scenario(exchange="dwork-moses", num_agents=3, max_faulty=2))
        return verify_sba_implementation(model, DworkMosesProtocol(3, 2))

    report = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert report.is_sound


def test_e8_eba_implementations(benchmark):
    def experiment():
        reports = []
        for exchange, protocol_cls in (("emin", EMinProtocol), ("ebasic", EBasicProtocol)):
            model = build_model(
                Scenario(exchange=exchange, num_agents=3, max_faulty=1, failures="sending")
            )
            reports.append(verify_eba_implementation(model, protocol_cls(3, 1)))
        return reports

    reports = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert all(report.ok for report in reports)
