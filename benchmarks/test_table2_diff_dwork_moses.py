"""Table 2: SBA model checking of the Diff and Dwork-Moses protocols.

Each benchmark is one cell of Table 2: model checking the protocol with a
bounded number of rounds (the paper varies the number of rounds to study its
impact on performance — it is minimal, which these benchmarks reproduce).
"""

import pytest

from repro.harness.tasks import sba_model_check_task


def _grid(max_n):
    grid = []
    for n in range(2, max_n + 1):
        for t in range(1, n + 1):
            for rounds in range(1, t + 2):
                grid.append((n, t, rounds))
    return grid


GRID = _grid(3)


@pytest.mark.parametrize("n,t,rounds", GRID, ids=lambda v: str(v))
def test_diff_model_check(benchmark, n, t, rounds):
    result = benchmark.pedantic(
        sba_model_check_task,
        kwargs={
            "exchange": "diff",
            "num_agents": n,
            "max_faulty": t,
            "rounds": rounds,
            "optimal_protocol": True,
        },
        rounds=1,
        iterations=1,
    )
    assert result["states"] > 0
    # Agreement and validity hold regardless of how many rounds are modelled.
    assert result["spec"]["agreement"]
    assert result["spec"]["validity"]


@pytest.mark.parametrize("n,t,rounds", GRID, ids=lambda v: str(v))
def test_dwork_moses_model_check(benchmark, n, t, rounds):
    result = benchmark.pedantic(
        sba_model_check_task,
        kwargs={
            "exchange": "dwork-moses",
            "num_agents": n,
            "max_faulty": t,
            "rounds": rounds,
        },
        rounds=1,
        iterations=1,
    )
    assert result["states"] > 0
    assert result["spec"]["agreement"]
    assert result["spec"]["validity"]
    assert result["sound"]
