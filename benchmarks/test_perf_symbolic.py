"""Symbolic BDD backend vs the explicit engines on synthesis workloads.

Two workloads, both shaped like the synthesis loop's hot path:

* **synthesis-conditions sweep** — the knowledge conditions ``B^N_i CB_N ∃v``
  for every agent, value and level of a prebuilt FloodSet space, on a
  growing-``n`` grid, evaluated by each engine's specialised per-level
  evaluator under a per-engine wall-clock budget.  The space build is shared
  and untimed, so the numbers isolate what the engines actually differ on.
* **full synthesis** — end-to-end :func:`~repro.core.synthesis.synthesize_sba`
  wall-clock (space build included) per engine on two mid-size configurations.

Honest summary of what the sweep shows (also recorded in the JSON):

* the explicit **bitset** engine stays the fastest backend in pure Python —
  its big-int kernels run at C speed, which is why it remains the default;
* the **symbolic** engine beats the set-based explicit-enumeration oracle by
  a growing margin (~3-4x at 10^5 states) and, under the per-engine budget,
  completes the largest configuration that explicit enumeration cannot —
  the factored BDD representation is the scaling path the multi-backend
  architecture exists for.

Results are recorded into ``BENCH_symbolic.json`` at the repository root
under the same write-once/``REPRO_BENCH_RECORD`` policy as the other
benchmarks; ``REPRO_BENCH_SMOKE=1`` runs tiny instances with no assertions
and no recording.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.synthesis import sba_condition_evaluator, synthesize_sba
from repro.api import Scenario, build_model
from repro.protocols.sba import FloodSetStandardProtocol
from repro.systems.space import build_space

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_symbolic.json"

#: Per-configuration budget factor: the symbolic and set engines get
#: ``BUDGET_FACTOR x`` the bitset engine's measured time on the same
#: configuration (floored at BUDGET_FLOOR_SECONDS).  Calibrating against
#: the in-process bitset run makes the budget machine-speed-invariant: all
#: three engines are pure Python, so their *ratios* are stable even when a
#: faster or slower runner shifts every absolute time.  Measured ratios on
#: the largest sweep configuration: symbolic ~10x bitset, set ~40x bitset.
BUDGET_FACTOR = 25.0
BUDGET_FLOOR_SECONDS = 2.0

ENGINES = ("bitset", "symbolic", "set")

#: (n, t) grid for the conditions sweep, growing towards the budget edge.
SWEEP = [(3, 1), (3, 2)] if SMOKE else [(5, 2), (6, 2), (6, 4)]

#: (n, t) configurations for the end-to-end synthesis comparison.
FULL_SYNTH = [(3, 1)] if SMOKE else [(4, 2), (5, 3)]

_RECORDING = not SMOKE and (
    bool(os.environ.get("REPRO_BENCH_RECORD")) or not BENCH_PATH.exists()
)

_RESULTS: dict = {}


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    if not _RECORDING:
        return
    existing: dict = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except ValueError:
            existing = {}
    workloads = existing.get("workloads", {})
    workloads.update(_RESULTS)
    BENCH_PATH.write_text(
        json.dumps(
            {
                "benchmark": "symbolic BDD backend vs explicit engines "
                "(synthesis workloads)",
                "budget": f"{BUDGET_FACTOR}x the bitset engine's time per "
                f"configuration, floored at {BUDGET_FLOOR_SECONDS}s",
                "summary": (
                    "bitset remains the fastest backend; the symbolic BDD "
                    "engine beats explicit set enumeration by a growing "
                    "margin and completes configurations explicit "
                    "enumeration cannot finish within the per-engine budget"
                ),
                "workloads": workloads,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _timed_conditions(space, engine: str, budget: float):
    """Evaluate every level's knowledge conditions under a wall-clock budget.

    Returns ``(seconds, timed_out, conditions_by_level)``; a timed-out run
    reports the partial elapsed time and ``None`` conditions.
    """
    evaluator = sba_condition_evaluator(space, engine)
    by_level = []
    start = time.perf_counter()
    for level in range(len(space.levels)):
        by_level.append(evaluator(level))
        elapsed = time.perf_counter() - start
        if elapsed > budget:
            return elapsed, True, None
    return time.perf_counter() - start, False, by_level


def test_synthesis_conditions_sweep():
    """Growing-n sweep of the per-level knowledge-condition evaluators."""
    rows = []
    symbolic_beats_set_somewhere = False
    symbolic_completes_beyond_set = False

    for n, t in SWEEP:
        model = build_model(Scenario(exchange="floodset", num_agents=n, max_faulty=t))
        space = build_space(model, FloodSetStandardProtocol(n, t))
        row = {"n": n, "t": t, "states": space.num_states(), "engines": {}}
        # The bitset engine runs first, unbudgeted: its time calibrates the
        # budget the other engines get on this configuration.
        budget = float("inf")
        reference = None
        for engine in ENGINES:
            seconds, timed_out, by_level = _timed_conditions(space, engine, budget)
            row["engines"][engine] = {
                "seconds": None if timed_out else round(seconds, 3),
                "timed_out": timed_out,
            }
            if engine == "bitset":
                reference = by_level
                if not SMOKE:
                    budget = max(BUDGET_FLOOR_SECONDS, BUDGET_FACTOR * seconds)
                    row["budget_seconds"] = round(budget, 3)
            elif by_level is not None and reference is not None:
                # Identical satisfaction bitmasks on every level — the
                # correctness gate that makes the timings comparable.
                assert by_level == reference, (engine, n, t)
        bitset_info = row["engines"]["bitset"]
        symbolic_info = row["engines"]["symbolic"]
        set_info = row["engines"]["set"]
        if not symbolic_info["timed_out"]:
            if set_info["timed_out"]:
                symbolic_completes_beyond_set = True
            elif symbolic_info["seconds"] < set_info["seconds"]:
                symbolic_beats_set_somewhere = True
                row["symbolic_speedup_vs_set"] = round(
                    set_info["seconds"] / symbolic_info["seconds"], 2
                )
        if not (bitset_info["timed_out"] or symbolic_info["timed_out"]):
            row["symbolic_slowdown_vs_bitset"] = round(
                symbolic_info["seconds"] / max(bitset_info["seconds"], 1e-9), 2
            )
        rows.append(row)

    _record(
        "synthesis_conditions_sweep",
        {
            "workload": "B^N_i CB_N exists-v for all agents/values/levels, "
            "prebuilt FloodSet space (build untimed)",
            "rows": rows,
            "symbolic_beats_set_enumeration": symbolic_beats_set_somewhere,
            "symbolic_completes_beyond_set_enumeration": symbolic_completes_beyond_set,
        },
    )

    if SMOKE:
        return
    assert symbolic_beats_set_somewhere, (
        "the symbolic backend was never faster than explicit set enumeration: "
        f"{rows}"
    )
    assert symbolic_completes_beyond_set, (
        "the symbolic backend did not complete any configuration that "
        f"explicit set enumeration timed out on: {rows}"
    )
    # The symbolic engine must finish the whole sweep inside the budget.
    assert all(not row["engines"]["symbolic"]["timed_out"] for row in rows)


def test_full_synthesis_comparison():
    """End-to-end synthesize_sba wall-clock per engine (build included)."""
    rows = []
    for n, t in FULL_SYNTH:
        model = build_model(Scenario(exchange="floodset", num_agents=n, max_faulty=t))
        row = {"n": n, "t": t, "engines": {}}
        reference = None
        for engine in ENGINES:
            start = time.perf_counter()
            result = synthesize_sba(model, engine=engine)
            seconds = time.perf_counter() - start
            row["states"] = result.space.num_states()
            row["engines"][engine] = round(seconds, 3)
            if reference is None:
                reference = result
            else:
                assert result.rule.table == reference.rule.table, (engine, n, t)
        rows.append(row)

    _record(
        "full_synthesis",
        {
            "workload": "synthesize_sba end-to-end (shared space build "
            "dominates; engine deltas ride on top)",
            "rows": rows,
        },
    )
