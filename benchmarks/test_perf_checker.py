"""Bitset satisfaction engine vs the legacy set-based checker.

Measures the speedup of the packed-bitset :class:`~repro.core.checker.ModelChecker`
over the retained set-based oracle :class:`~repro.core.reference.SetChecker`
on the paper's table workloads:

* **Table 1 (SBA)** — model checking the FloodSet ``n=6`` system: the SBA
  specification formulas plus the knowledge conditions ``B^N_i CB_N ∃v`` for
  every agent and value.  This is the workload the acceptance criterion
  targets (≥5× speedup).
* **Table 3 (EBA)** — model checking E_min under sending omissions: the EBA
  specification plus the decide-1 knowledge condition
  ``K_i ~EF(someone decides 0)`` for every agent.

Results (times, speedups, state counts) are recorded into
``BENCH_checker.json`` at the repository root so the speedup is tracked
across PRs.  To keep routine test runs from dirtying the working tree with
machine-local timing noise, the file is only (re)written when it does not
exist yet or when ``REPRO_BENCH_RECORD`` is set in the environment; the
speedup assertions run regardless.  Timings take the best of :data:`ROUNDS`
fresh-checker runs per engine, which suppresses scheduler noise without
letting either engine reuse its formula cache across rounds.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.checker import ModelChecker
from repro.core.reference import SetChecker
from repro.api import Scenario, build_model
from repro.logic.atoms import decides_now
from repro.logic.builders import big_or, common_belief_exists, neg
from repro.logic.formula import EvEventually, Knows
from repro.protocols.eba import EMinProtocol
from repro.protocols.sba import FloodSetStandardProtocol
from repro.spec.eba import eba_spec_formulas
from repro.spec.sba import sba_spec_formulas
from repro.systems.space import build_space

# Benchmark-smoke mode (see benchmarks/conftest.py): tiny instances, no
# speedup-floor assertions, no recording.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_checker.json"
ROUNDS = 1 if SMOKE else 3

# Decided once per test session: record when explicitly asked, or when the
# file is missing entirely (bootstrap) — checked at import so the first
# workload's write doesn't stop the later ones from recording.  Smoke runs
# use tiny instances, so their timings are never recorded.
_RECORDING = not SMOKE and (
    bool(os.environ.get("REPRO_BENCH_RECORD")) or not BENCH_PATH.exists()
)

_RESULTS: dict = {}


def _time_engine(engine_factory, formulas) -> float:
    """Best wall-clock time of evaluating all formulas on a fresh checker."""
    best = float("inf")
    for _ in range(ROUNDS):
        checker = engine_factory()
        start = time.perf_counter()
        for formula in formulas:
            checker.check(formula)
        best = min(best, time.perf_counter() - start)
    return best


def _record(name: str, payload: dict) -> None:
    _RESULTS[name] = payload
    if not _RECORDING:
        return
    existing: dict = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except ValueError:
            existing = {}
    workloads = existing.get("workloads", {})
    workloads.update(_RESULTS)
    BENCH_PATH.write_text(
        json.dumps(
            {
                "benchmark": "bitset satisfaction engine vs legacy set-based checker",
                "rounds": ROUNDS,
                "workloads": workloads,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _compare(space, formulas) -> dict:
    legacy_seconds = _time_engine(lambda: SetChecker(space), formulas)
    bitset_seconds = _time_engine(lambda: ModelChecker(space), formulas)

    # The engines must agree before any timing claim means anything.
    legacy, fast = SetChecker(space), ModelChecker(space)
    for formula in formulas:
        assert legacy.check(formula) == fast.check(formula)

    return {
        "states": space.num_states(),
        "formulas": len(formulas),
        "legacy_seconds": round(legacy_seconds, 4),
        "bitset_seconds": round(bitset_seconds, 4),
        "speedup": round(legacy_seconds / bitset_seconds, 2),
    }


def test_table1_sba_n6_speedup():
    """Table 1 workload, FloodSet n=6: the acceptance-criterion cell (≥5×)."""
    n, t = (4, 1) if SMOKE else (6, 2)
    model = build_model(Scenario(exchange="floodset", num_agents=n, max_faulty=t))
    space = build_space(model, FloodSetStandardProtocol(n, t))
    formulas = list(sba_spec_formulas(model, space.horizon).values())
    formulas += [
        common_belief_exists(agent, value)
        for agent in model.agents()
        for value in model.values()
    ]

    payload = {"workload": "sba-model-check", "exchange": "floodset", "n": n, "t": t}
    payload.update(_compare(space, formulas))
    _record("table1_sba_n6", payload)

    if SMOKE:
        return
    assert payload["speedup"] >= 5.0, (
        f"bitset engine only {payload['speedup']}x faster than the set-based "
        f"checker on the n=6 SBA workload (need >= 5x)"
    )


def test_table3_eba_speedup():
    """Table 3 workload, E_min n=4 under sending omissions (recorded)."""
    n, t = (3, 1) if SMOKE else (4, 1)
    model = build_model(Scenario(exchange="emin", num_agents=n, max_faulty=t, failures="sending"))
    space = build_space(model, EMinProtocol(n, t))
    formulas = list(eba_spec_formulas(model, space.horizon).values())
    someone_decides_zero = big_or(decides_now(agent, 0) for agent in model.agents())
    formulas += [
        Knows(agent, neg(EvEventually(someone_decides_zero)))
        for agent in model.agents()
    ]

    payload = {"workload": "eba-model-check", "exchange": "emin", "n": n, "t": t}
    payload.update(_compare(space, formulas))
    _record("table3_eba_n4", payload)

    if SMOKE:
        return
    assert payload["speedup"] >= 1.0, "bitset engine slower than the set-based checker"
