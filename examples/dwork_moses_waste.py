"""The Dwork-Moses waste-based protocol (paper Section 7.4).

The Dwork-Moses protocol for simultaneous agreement under crash failures
tracks which agents are known to be faulty and estimates the *waste* — the
number of failures that were not needed to delay a clean round.  A decision is
made as soon as ``time >= t + 1 - waste``, which is when the existence of a
clean round has become common knowledge.

This example traces concrete runs of the protocol, showing how crashes that
are discovered quickly pull the (simultaneous) decision earlier, and then
model checks the protocol against the SBA specification and the knowledge
condition of the knowledge-based program.

Run with::

    python examples/dwork_moses_waste.py
"""

from repro import ModelChecker, Scenario, build_model
from repro.kbp import verify_sba_implementation
from repro.protocols import DworkMosesProtocol
from repro.spec.sba import sba_spec_formulas
from repro.systems.runs import CrashAdversary, simulate_run
from repro.systems.space import build_space

NUM_AGENTS = 4
MAX_FAULTY = 3


def trace(model, protocol, votes, adversary, label):
    run = simulate_run(model, protocol, votes, adversary)
    print(f"--- {label}")
    print(f"    votes = {votes}")
    for time, state in enumerate(run.states):
        summary = []
        for agent in range(NUM_AGENTS):
            local = state.locals[agent]
            status = "x" if not adversary.nonfaulty_at(agent, time) else " "
            decided = f"->{local.decision}" if local.decided else ""
            summary.append(
                f"a{agent}{status}(waste={local.waste},F={sorted(local.known_faulty)}{decided})"
            )
        print(f"    t={time}: " + "  ".join(summary))
    times = {agent: run.decision_time(agent) for agent in range(NUM_AGENTS)}
    print(f"    decision times: {times}\n")


def main() -> None:
    model = build_model(
        Scenario(exchange="dwork-moses", num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY)
    )
    protocol = DworkMosesProtocol(NUM_AGENTS, MAX_FAULTY)

    # Failure-free run: no waste, decide at t+1.
    trace(model, protocol, (1, 0, 1, 1), CrashAdversary(), "failure-free run")

    # Two agents crash silently in round 1: one failure is wasted, the
    # survivors decide a round earlier — and still simultaneously.
    adversary = CrashAdversary(crashes={1: (1, frozenset()), 2: (1, frozenset())})
    trace(model, protocol, (1, 0, 0, 1), adversary, "two silent crashes in round 1")

    # Three agents crash silently in round 1: two failures wasted.
    adversary = CrashAdversary(
        crashes={0: (1, frozenset()), 1: (1, frozenset()), 2: (1, frozenset())}
    )
    trace(model, protocol, (0, 0, 0, 1), adversary, "three silent crashes in round 1")

    # Model check the protocol (smaller instance keeps this quick).
    small = build_model(Scenario(exchange="dwork-moses", num_agents=3, max_faulty=2))
    small_protocol = DworkMosesProtocol(3, 2)
    space = build_space(small, small_protocol)
    checker = ModelChecker(space)
    print("SBA specification for n=3, t=2:")
    for name, formula in sba_spec_formulas(small, space.horizon).items():
        print(f"  {name}: {checker.holds_initially(formula)}")
    report = verify_sba_implementation(small, small_protocol, space=space)
    print(f"Knowledge-based analysis: {report.summary()}")
    print(
        "  (late decision points indicate the waste summary does not exploit "
        "all the knowledge available in the failure-set exchange)"
    )


if __name__ == "__main__":
    main()
