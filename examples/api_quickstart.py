"""Quickstart for the ``repro.api`` facade: scenarios, sessions, serving.

The public API revolves around three objects:

1. a frozen, validated :class:`~repro.api.Scenario` (the model
   configuration: exchange, n, t, failure model, engine, ...),
2. a :class:`~repro.api.Session` that memoises every per-scenario artefact
   (model, state space, checker, spec formulas, synthesis fixpoints) behind
   one bounded cache, and
3. versioned typed results (``CheckResult``/``SynthesisResult``) with
   ``to_json``/``from_json`` round-trips.

This example checks and synthesizes a couple of configurations through one
session (watch the cache statistics: repeats cost nothing), then serves the
same session over JSON HTTP for a single request — the ``repro serve``
workflow, in-process.

Run with::

    python examples/api_quickstart.py
"""

import json
import threading
import urllib.request

from repro.api import Scenario, Session, result_from_json
from repro.api.service import make_server


def main() -> None:
    session = Session()
    floodset = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
    emin = Scenario(exchange="emin", num_agents=2, max_faulty=1)

    # --- typed queries ----------------------------------------------------
    verdict = session.check(floodset)
    print(f"check {floodset.exchange} n={floodset.num_agents} "
          f"t={floodset.max_faulty}: spec_ok={verdict.spec_ok}, "
          f"optimal={verdict.optimal}, states={verdict.states}")

    synthesis = session.synthesize(floodset)   # warm: shares the cached model
    print(f"synthesize: earliest condition time "
          f"{synthesis.earliest_condition_time}")

    # --- batches amortise across scenarios and engines --------------------
    results = session.batch([
        ("check", floodset),
        ("check", floodset),               # a pure result-cache hit
        ("synthesize", emin),
        ("check", floodset.with_engine("symbolic")),  # shares the space
    ])
    print(f"batch of {len(results)} answered; cache: "
          f"{session.stats().to_json()}")

    # --- the result schema round-trips through JSON -----------------------
    wire = json.dumps(verdict.to_json())
    assert result_from_json(json.loads(wire)) == verdict
    print(f"result schema version {verdict.to_json()['schema_version']} "
          "round-trips")

    # --- the same facade over HTTP (what `repro serve` runs) --------------
    server = make_server(port=0, session=session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/check",
        data=json.dumps({"scenario": floodset.to_json()}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        body = json.loads(response.read())
    server.shutdown()
    server.server_close()
    print(f"served /check: ok={body['ok']}, "
          f"hits so far {body['cache']['hits']} "
          f"(the query itself was a cache hit — the session is shared)")


if __name__ == "__main__":
    main()
