"""Quickstart: synthesize the optimal FloodSet protocol for a small system.

This reproduces the paper's appendix example: FloodSet information exchange,
3 agents, at most 1 crash failure, two decision values.  We

1. build the model (exchange + failure model),
2. synthesize the unique clock-semantics implementation of the SBA
   knowledge-based program ``P`` (decide once ``B^N_i CB_N ∃v`` holds),
3. print the synthesized decision conditions per time (the analogue of MCK's
   ``define`` statements),
4. check that the synthesized protocol satisfies the SBA specification, and
5. compare the textbook FloodSet rule (decide at round ``t + 1``) against the
   knowledge conditions.

Run with::

    python examples/quickstart.py
"""

from repro import ModelChecker, Scenario, Session
from repro.kbp import verify_sba_implementation
from repro.protocols import FloodSetStandardProtocol
from repro.spec.sba import sba_spec_formulas


def main() -> None:
    # 1. The scenario: FloodSet exchange under crash failures, n=3, t=1, |V|=2.
    session = Session()
    scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
    model = session.model(scenario)
    print(f"Model: {model}")

    # 2. Synthesize the optimal implementation of the knowledge-based program.
    result = session.synthesis_artifact(scenario)
    print(f"\nReachable states per time level: {[len(l) for l in result.space.levels]}")

    # 3. The synthesized decision conditions (agent 0; the model is symmetric).
    print("\nSynthesized decision conditions for agent 0:")
    for time in range(result.space.horizon + 1):
        for value in model.values():
            predicate = result.conditions.get(0, time, value)
            print(f"  time {time}, decide {value}:  {predicate.describe()}")

    # 4. The synthesized protocol satisfies the SBA specification.
    checker = ModelChecker(result.space)
    print("\nSBA specification on the synthesized protocol:")
    for name, formula in sba_spec_formulas(model, result.space.horizon).items():
        print(f"  {name}: {checker.holds_initially(formula)}")

    # 5. Is the textbook rule (decide at t+1) optimal for this exchange?
    report = verify_sba_implementation(model, FloodSetStandardProtocol(3, 1))
    print(f"\nTextbook FloodSet rule: {report.summary()}")
    print(f"  optimal for this information exchange: {report.is_optimal}")


if __name__ == "__main__":
    main()
