"""Optimal Eventual Byzantine Agreement protocols (paper Sections 8-9).

For EBA the agents need not decide simultaneously.  The knowledge-based
program ``P0`` decides 0 on an initial 0 or on knowledge of a 0 decision, and
decides 1 on knowledge that no agent ever decides 0.  The paper studies two
information exchanges satisfying the side conditions under which
implementations of ``P0`` are optimal:

* ``E_min`` — agents broadcast only the value they have just decided,
* ``E_basic`` — agents with initial value 1 additionally broadcast
  ``(init, 1)`` and everyone counts those messages (``num1``), enabling an
  early decision on 1 once ``num1 > n - time``.

This example model checks both literature implementations, synthesizes the
implementation of ``P0`` directly, and demonstrates the early-stopping benefit
of ``E_basic`` on the all-ones run.

Run with::

    python examples/eba_optimal_protocols.py
"""

from repro import ModelChecker, Scenario, build_model, synthesize_eba
from repro.kbp import verify_eba_implementation
from repro.protocols import EBasicProtocol, EMinProtocol
from repro.spec.eba import eba_spec_formulas
from repro.systems.runs import OmissionAdversary, simulate_run
from repro.systems.space import build_space

NUM_AGENTS = 3
MAX_FAULTY = 1


def main() -> None:
    for exchange, protocol_cls in (("emin", EMinProtocol), ("ebasic", EBasicProtocol)):
        model = build_model(
            Scenario(exchange=exchange, num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY, failures="sending")
        )
        protocol = protocol_cls(NUM_AGENTS, MAX_FAULTY)
        space = build_space(model, protocol)
        checker = ModelChecker(space)
        print(f"=== {exchange} (sending omissions, n={NUM_AGENTS}, t={MAX_FAULTY})")
        for name, formula in eba_spec_formulas(model, space.horizon).items():
            print(f"  {name}: {checker.holds_initially(formula)}")
        report = verify_eba_implementation(model, protocol, space=space)
        print(f"  implementation of P0: {report.summary()}")

    # --- Synthesis of P0 for E_min --------------------------------------------
    model = build_model(
        Scenario(exchange="emin", num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY, failures="sending")
    )
    result = synthesize_eba(model)
    print(
        f"\nSynthesis of P0 for E_min converged after {result.iterations} passes; "
        "decide-1 condition per time (agent 0):"
    )
    for time in range(result.space.horizon + 1):
        print(f"  time {time}: {result.conditions.get(0, time, 'decide1').describe()}")

    # --- E_basic decides earlier on the all-ones run ---------------------------
    adversary = OmissionAdversary()
    emin_model = build_model(
        Scenario(exchange="emin", num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY, failures="sending")
    )
    ebasic_model = build_model(
        Scenario(exchange="ebasic", num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY, failures="sending")
    )
    votes = (1,) * NUM_AGENTS
    emin_run = simulate_run(
        emin_model, EMinProtocol(NUM_AGENTS, MAX_FAULTY), votes, adversary
    )
    ebasic_run = simulate_run(
        ebasic_model, EBasicProtocol(NUM_AGENTS, MAX_FAULTY), votes, adversary
    )
    print(
        f"\nAll-ones failure-free run: E_min decides at time "
        f"{emin_run.decision_time(0)}, E_basic at time {ebasic_run.decision_time(0)} "
        "(the num1 counter pays off)."
    )


if __name__ == "__main__":
    main()
