"""Finding an early-stopping opportunity in FloodSet (paper Section 7.1).

The textbook stopping rule for FloodSet decides at round ``t + 1``.  The
paper's first qualitative result is that this is *not* optimal for the
FloodSet information exchange: when ``t >= n - 1`` the knowledge condition
``B^N_i CB_N ∃v`` already holds at time ``n - 1``, giving the revised
condition (2)

    (t >= n - 1  and  time = n - 1)  or  (t < n - 1  and  time = t + 1).

This example re-derives that result automatically for ``n = 3, t = 2``:

* model checking shows the textbook protocol decides later than the knowledge
  allows (an optimization opportunity),
* synthesis produces the optimal protocol, whose conditions match (2),
* the revised protocol is verified optimal and is shown to decide strictly
  earlier on some runs.

Run with::

    python examples/floodset_early_stopping.py
"""

from repro import Scenario, build_model, synthesize_sba
from repro.analysis import floodset_condition_hypothesis, naive_floodset_hypothesis
from repro.kbp import verify_sba_implementation
from repro.protocols import FloodSetRevisedProtocol, FloodSetStandardProtocol
from repro.spec.optimality import compare_protocols
from repro.systems.runs import enumerate_crash_adversaries

NUM_AGENTS = 3
MAX_FAULTY = 2


def main() -> None:
    model = build_model(Scenario(exchange="floodset", num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY))

    # --- Model checking the textbook rule -------------------------------------
    standard = FloodSetStandardProtocol(NUM_AGENTS, MAX_FAULTY)
    report = verify_sba_implementation(model, standard)
    print("Textbook FloodSet rule (decide at t+1):")
    print(f"  {report.summary()}")
    for mismatch in report.late_mismatches()[:3]:
        print(f"  example optimization opportunity: {mismatch.describe()}")

    # --- Synthesis of the optimal protocol ------------------------------------
    result = synthesize_sba(model)
    print("\nSynthesized decision condition for value 0 (agent 0):")
    for time in range(result.space.horizon + 1):
        print(f"  time {time}: {result.conditions.get(0, time, 0).describe()}")

    naive = result.conditions.check_hypothesis(
        0, naive_floodset_hypothesis(NUM_AGENTS, MAX_FAULTY, 0)
    )
    revised = result.conditions.check_hypothesis(
        0, floodset_condition_hypothesis(NUM_AGENTS, MAX_FAULTY, 0)
    )
    print(f"\nNaive 't+1' hypothesis:      {naive.summary()}")
    print(f"Paper's condition (2):       {revised.summary()}")

    # --- The revised protocol is optimal and strictly earlier somewhere -------
    revised_protocol = FloodSetRevisedProtocol(NUM_AGENTS, MAX_FAULTY)
    print(f"\nRevised rule: {verify_sba_implementation(model, revised_protocol).summary()}")

    adversaries = list(
        enumerate_crash_adversaries(NUM_AGENTS, MAX_FAULTY, model.default_horizon(), limit=500)
    )
    comparison = compare_protocols(model, revised_protocol, standard, adversaries)
    print(
        "Run-level comparison over "
        f"{len(comparison.comparisons)} corresponding runs: "
        f"never later = {comparison.first_never_later()}, "
        f"strictly earlier somewhere = {comparison.first_strictly_earlier_somewhere()}"
    )


if __name__ == "__main__":
    main()
