"""The Count-FloodSet early exit (paper Section 7.2).

Adding a single counter — the number of messages received in the last round —
gives agents genuinely more knowledge: as soon as ``count <= 1`` the agent is
the only non-crashed agent left, common belief among the nonfaulty agents
degenerates to its own knowledge, and it can decide immediately (the paper's
condition (3)).  At the same time, ``count <= 2`` does *not* suffice.

This example synthesizes the optimal protocol for the Count exchange, checks
condition (3), exhibits the ``count <= 2`` counterexample, and shows that
additionally remembering the previous count (the Diff exchange) does not
improve the SBA decision condition (Section 7.3).

Run with::

    python examples/count_floodset_optimization.py
"""

from repro import Scenario, build_model, synthesize_sba
from repro.analysis import (
    check_count_le_two_insufficient,
    check_diff_no_improvement,
    count_condition_hypothesis,
)
from repro.kbp import verify_sba_implementation
from repro.protocols import CountConditionProtocol

NUM_AGENTS = 3
MAX_FAULTY = 2


def main() -> None:
    count_model = build_model(Scenario(exchange="count", num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY))
    count_result = synthesize_sba(count_model)

    print("Synthesized decision condition for value 0 (agent 0), Count exchange:")
    for time in range(count_result.space.horizon + 1):
        print(f"  time {time}: {count_result.conditions.get(0, time, 0).describe()}")

    hypothesis = count_result.conditions.check_hypothesis(
        0, count_condition_hypothesis(NUM_AGENTS, MAX_FAULTY, 0)
    )
    print(f"\nPaper's condition (3): {hypothesis.summary()}")
    print(
        "count <= 2 alone is insufficient for an early decision: "
        f"{check_count_le_two_insufficient(count_result)}"
    )

    protocol = CountConditionProtocol(NUM_AGENTS, MAX_FAULTY)
    print(
        "\nEarly-exit protocol vs knowledge conditions: "
        f"{verify_sba_implementation(count_model, protocol).summary()}"
    )

    # --- The Diff exchange does not improve on the single count ----------------
    diff_model = build_model(Scenario(exchange="diff", num_agents=NUM_AGENTS, max_faulty=MAX_FAULTY))
    diff_result = synthesize_sba(diff_model)
    unchanged = check_diff_no_improvement(diff_result, count_result)
    print(
        "\nRemembering the previous count (Diff exchange) changes the SBA "
        f"decision condition: {not unchanged}"
    )


if __name__ == "__main__":
    main()
