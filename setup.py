"""Setup shim for environments without PEP 517 build isolation."""

from setuptools import setup

setup()
