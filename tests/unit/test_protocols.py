"""Unit tests for the concrete decision protocols."""

import pytest

from repro.exchanges import (
    CountFloodSetExchange,
    DiffFloodSetExchange,
    DworkMosesExchange,
    EBasicExchange,
    EMinExchange,
    FloodSetExchange,
)
from repro.protocols import (
    CountConditionProtocol,
    DworkMosesProtocol,
    EBasicProtocol,
    EMinProtocol,
    FloodSetRevisedProtocol,
    FloodSetStandardProtocol,
    FunctionProtocol,
    NeverDecide,
)
from repro.protocols.sba import floodset_critical_time, least_seen_value
from repro.systems.actions import NOOP


class TestHelpers:
    def test_least_seen_value(self):
        assert least_seen_value((False, True)) == 1
        assert least_seen_value((True, True)) == 0
        assert least_seen_value((False, False)) is NOOP

    def test_floodset_critical_time(self):
        assert floodset_critical_time(3, 1) == 2   # t < n-1 -> t+1
        assert floodset_critical_time(3, 2) == 2   # t >= n-1 -> n-1
        assert floodset_critical_time(3, 3) == 2
        assert floodset_critical_time(5, 2) == 3
        assert floodset_critical_time(2, 2) == 1

    def test_never_decide_and_function_protocol(self):
        assert NeverDecide().act(0, None, 5) is NOOP
        wrapped = FunctionProtocol(lambda agent, local, time: 1, name="always-one")
        assert wrapped(0, None, 0) == 1
        assert wrapped.name == "always-one"


class TestFloodSetProtocols:
    def setup_method(self):
        self.exchange = FloodSetExchange(num_agents=3, num_values=2, max_faulty=2)

    def test_standard_waits_until_t_plus_one(self):
        protocol = FloodSetStandardProtocol(3, 2)
        local = self.exchange.initial_local(0, 1)
        assert protocol.act(0, local, 0) is NOOP
        assert protocol.act(0, local, 2) is NOOP
        assert protocol.act(0, local, 3) == 1

    def test_standard_decides_least_seen(self):
        protocol = FloodSetStandardProtocol(3, 2)
        local = self.exchange.initial_local(0, 1)._replace(seen=(True, True))
        assert protocol.act(0, local, 3) == 0

    def test_revised_uses_critical_time(self):
        protocol = FloodSetRevisedProtocol(3, 2)
        local = self.exchange.initial_local(0, 1)
        assert protocol.act(0, local, 1) is NOOP
        assert protocol.act(0, local, 2) == 1  # n-1 = 2 < t+1 = 3

    def test_revised_matches_standard_when_t_small(self):
        protocol = FloodSetRevisedProtocol(4, 1)
        local = FloodSetExchange(4, 2, 1).initial_local(0, 0)
        assert protocol.act(0, local, 1) is NOOP
        assert protocol.act(0, local, 2) == 0


class TestCountProtocol:
    def test_early_exit_on_count_one(self):
        exchange = CountFloodSetExchange(num_agents=3, num_values=2, max_faulty=2)
        protocol = CountConditionProtocol(3, 2)
        lonely = exchange.initial_local(0, 1)._replace(count=1)
        assert protocol.act(0, lonely, 1) == 1
        crowded = exchange.initial_local(0, 1)._replace(count=3)
        assert protocol.act(0, crowded, 1) is NOOP
        assert protocol.act(0, crowded, 2) == 1

    def test_no_early_exit_at_time_zero(self):
        exchange = CountFloodSetExchange(num_agents=3, num_values=2, max_faulty=2)
        protocol = CountConditionProtocol(3, 2)
        local = exchange.initial_local(0, 1)._replace(count=1)
        assert protocol.act(0, local, 0) is NOOP

    def test_works_with_diff_local_states(self):
        exchange = DiffFloodSetExchange(num_agents=3, num_values=2, max_faulty=1)
        protocol = CountConditionProtocol(3, 1)
        local = exchange.initial_local(0, 0)._replace(count=1)
        assert protocol.act(0, local, 1) == 0

    def test_rejects_wrong_local_state(self):
        protocol = CountConditionProtocol(3, 1)
        floodset_local = FloodSetExchange(3, 2, 1).initial_local(0, 0)
        with pytest.raises(TypeError):
            protocol.act(0, floodset_local, 1)


class TestDworkMosesProtocol:
    def setup_method(self):
        self.exchange = DworkMosesExchange(num_agents=3, num_values=2, max_faulty=2)
        self.protocol = DworkMosesProtocol(3, 2)

    def test_waits_for_waste_condition(self):
        local = self.exchange.initial_local(0, 1)
        assert self.protocol.act(0, local, 1) is NOOP
        assert self.protocol.act(0, local, 2) is NOOP
        assert self.protocol.act(0, local, 3) == 1  # t+1 with zero waste

    def test_waste_enables_early_decision(self):
        local = self.exchange.initial_local(0, 0)._replace(waste=2)
        assert self.protocol.act(0, local, 1) == 0  # 1 >= t+1-2

    def test_decides_zero_iff_exists0(self):
        local = self.exchange.initial_local(0, 1)._replace(waste=2, exists0=True)
        assert self.protocol.act(0, local, 1) == 0
        local = self.exchange.initial_local(0, 1)._replace(waste=2, exists0=False)
        assert self.protocol.act(0, local, 1) == 1

    def test_rejects_wrong_local_state(self):
        with pytest.raises(TypeError):
            self.protocol.act(0, FloodSetExchange(3, 2, 2).initial_local(0, 0), 3)


class TestEBAProtocols:
    def test_emin_decides_zero_immediately_on_initial_zero(self):
        exchange = EMinExchange(num_agents=3, num_values=2, max_faulty=1)
        protocol = EMinProtocol(3, 1)
        assert protocol.act(0, exchange.initial_local(0, 0), 0) == 0

    def test_emin_decides_zero_on_heard_decision(self):
        exchange = EMinExchange(num_agents=3, num_values=2, max_faulty=1)
        protocol = EMinProtocol(3, 1)
        local = exchange.initial_local(0, 1)._replace(jd=0)
        assert protocol.act(0, local, 1) == 0

    def test_emin_decides_one_only_at_t_plus_one(self):
        exchange = EMinExchange(num_agents=3, num_values=2, max_faulty=1)
        protocol = EMinProtocol(3, 1)
        local = exchange.initial_local(0, 1)
        assert protocol.act(0, local, 1) is NOOP
        assert protocol.act(0, local, 2) == 1

    def test_ebasic_early_decision_on_num1(self):
        exchange = EBasicExchange(num_agents=3, num_values=2, max_faulty=2)
        protocol = EBasicProtocol(3, 2)
        local = exchange.initial_local(0, 1)._replace(num1=3)
        assert protocol.act(0, local, 1) == 1  # 3 > 3 - 1
        local = exchange.initial_local(0, 1)._replace(num1=2)
        assert protocol.act(0, local, 1) is NOOP

    def test_ebasic_follows_heard_decisions(self):
        exchange = EBasicExchange(num_agents=3, num_values=2, max_faulty=2)
        protocol = EBasicProtocol(3, 2)
        assert protocol.act(0, exchange.initial_local(0, 1)._replace(jd=0), 1) == 0
        assert protocol.act(0, exchange.initial_local(0, 1)._replace(jd=1), 1) == 1

    def test_eba_protocols_reject_wrong_local_state(self):
        with pytest.raises(TypeError):
            EMinProtocol(3, 1).act(0, FloodSetExchange(3, 2, 1).initial_local(0, 0), 0)
        with pytest.raises(TypeError):
            EBasicProtocol(3, 1).act(0, EMinExchange(3, 2, 1).initial_local(0, 0), 0)
