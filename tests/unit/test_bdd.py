"""The ROBDD engine against brute-force truth-table evaluation.

Every operation of :class:`repro.symbolic.bdd.BDD` is checked against an
exhaustive enumeration over a small variable universe: random formulas are
built bottom-up, their truth tables computed by evaluation, and the
connectives, quantifiers, substitution, renaming and model
counting/enumeration are compared case by case.  Canonicity (equal
functions share a handle) is asserted throughout, since the symbolic
checker's fixpoints terminate by handle equality.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.symbolic.bdd import BDD

NVARS = 5
VARS = list(range(NVARS))
ASSIGNMENTS = [
    dict(zip(VARS, bits))
    for bits in itertools.product([False, True], repeat=NVARS)
]


def evaluate(bdd: BDD, node: int, assignment) -> bool:
    return bdd.evaluate(node, assignment)


def random_node(bdd: BDD, rng: random.Random, depth: int) -> int:
    if depth == 0:
        return rng.choice(
            [bdd.true, bdd.false]
            + [bdd.variable(v) for v in VARS]
            + [bdd.nvariable(v) for v in VARS]
        )
    a = random_node(bdd, rng, depth - 1)
    b = random_node(bdd, rng, depth - 1)
    op = rng.randrange(5)
    if op == 0:
        return bdd.apply_and(a, b)
    if op == 1:
        return bdd.apply_or(a, b)
    if op == 2:
        return bdd.apply_xor(a, b)
    if op == 3:
        return bdd.apply_not(a)
    return bdd.ite(a, b, random_node(bdd, rng, depth - 1))


@pytest.fixture(scope="module")
def engine():
    bdd = BDD()
    rng = random.Random("bdd-unit")
    nodes = [random_node(bdd, rng, rng.randrange(1, 5)) for _ in range(60)]
    tables = [
        tuple(evaluate(bdd, node, assignment) for assignment in ASSIGNMENTS)
        for node in nodes
    ]
    return bdd, rng, nodes, tables


def test_canonicity(engine):
    """Structurally different builds of the same function share a handle."""
    bdd, _, nodes, tables = engine
    by_table = {}
    for node, table in zip(nodes, tables):
        if table in by_table:
            assert by_table[table] == node
        by_table[table] = node
    x, y = bdd.variable(0), bdd.variable(1)
    lhs = bdd.apply_not(bdd.apply_and(x, y))
    rhs = bdd.apply_or(bdd.apply_not(x), bdd.apply_not(y))
    assert lhs == rhs  # De Morgan, canonically


def test_connectives(engine):
    bdd, _, nodes, tables = engine
    for (f, tf), (g, tg) in zip(
        zip(nodes, tables), zip(nodes[1:], tables[1:])
    ):
        for index, assignment in enumerate(ASSIGNMENTS):
            assert evaluate(bdd, bdd.apply_and(f, g), assignment) == (
                tf[index] and tg[index]
            )
            assert evaluate(bdd, bdd.apply_or(f, g), assignment) == (
                tf[index] or tg[index]
            )
            assert evaluate(bdd, bdd.apply_xor(f, g), assignment) == (
                tf[index] != tg[index]
            )
            assert evaluate(bdd, bdd.apply_diff(f, g), assignment) == (
                tf[index] and not tg[index]
            )
            assert evaluate(bdd, bdd.apply_implies(f, g), assignment) == (
                (not tf[index]) or tg[index]
            )
            assert evaluate(bdd, bdd.apply_not(f), assignment) == (not tf[index])


def test_quantification(engine):
    bdd, rng, nodes, tables = engine
    for f, table in zip(nodes, tables):
        cube = [v for v in VARS if rng.random() < 0.5]
        ex = bdd.exists(f, cube)
        fa = bdd.forall(f, cube)
        for assignment in ASSIGNMENTS:
            branches = []
            for sub in itertools.product([False, True], repeat=len(cube)):
                probe = dict(assignment)
                probe.update(zip(cube, sub))
                branches.append(
                    table[ASSIGNMENTS.index({v: probe[v] for v in VARS})]
                )
            assert evaluate(bdd, ex, assignment) == any(branches)
            assert evaluate(bdd, fa, assignment) == all(branches)
        # Duality: exists f == ~forall ~f.
        assert ex == bdd.apply_not(bdd.forall(bdd.apply_not(f), cube))


def test_and_exists_matches_unfused(engine):
    bdd, rng, nodes, _ = engine
    for f, g in zip(nodes, reversed(nodes)):
        cube = [v for v in VARS if rng.random() < 0.5]
        fused = bdd.and_exists(f, g, cube)
        unfused = bdd.exists(bdd.apply_and(f, g), cube)
        assert fused == unfused


def test_restrict_and_compose(engine):
    bdd, rng, nodes, tables = engine
    for f, table in zip(nodes, tables):
        variable = rng.randrange(NVARS)
        g = nodes[rng.randrange(len(nodes))]
        for value in (False, True):
            restricted = bdd.restrict(f, variable, value)
            for assignment in ASSIGNMENTS:
                probe = dict(assignment)
                probe[variable] = value
                assert evaluate(bdd, restricted, assignment) == table[
                    ASSIGNMENTS.index({v: probe[v] for v in VARS})
                ]
        composed = bdd.compose(f, variable, g)
        for assignment in ASSIGNMENTS:
            probe = dict(assignment)
            probe[variable] = evaluate(bdd, g, assignment)
            assert evaluate(bdd, composed, assignment) == table[
                ASSIGNMENTS.index({v: probe[v] for v in VARS})
            ]


def test_rename(engine):
    bdd, _, nodes, tables = engine
    mapping = {v: v + NVARS for v in VARS}
    for f, table in zip(nodes, tables):
        renamed = bdd.rename(f, mapping)
        for assignment, expected in zip(ASSIGNMENTS, table):
            shifted = {v + NVARS: value for v, value in assignment.items()}
            assert evaluate(bdd, renamed, shifted) == expected


def test_rename_rejects_order_violations():
    bdd = BDD()
    f = bdd.apply_and(bdd.variable(0), bdd.variable(1))
    with pytest.raises(ValueError):
        bdd.rename(f, {0: 5})  # 0 -> 5 would sink the root below variable 1


def test_sat_count_and_iter(engine):
    bdd, _, nodes, tables = engine
    for f, table in zip(nodes, tables):
        expected = {
            tuple(assignment[v] for v in VARS)
            for assignment, value in zip(ASSIGNMENTS, table)
            if value
        }
        assert bdd.sat_count(f, VARS) == len(expected)
        assert set(bdd.sat_iter(f, VARS)) == expected


def test_sat_count_requires_support():
    bdd = BDD()
    f = bdd.variable(3)
    with pytest.raises(ValueError):
        bdd.sat_count(f, [0, 1])


def test_cube_and_support():
    bdd = BDD()
    literals = {0: True, 2: False, 4: True}
    cube = bdd.cube(literals)
    assert bdd.support(cube) == frozenset(literals)
    for assignment in ASSIGNMENTS:
        expected = all(assignment[v] == polarity for v, polarity in literals.items())
        probe = dict(assignment)
        assert bdd.evaluate(cube, probe) == expected


def test_evaluate_missing_variable_raises():
    bdd = BDD()
    f = bdd.variable(2)
    with pytest.raises(KeyError):
        bdd.evaluate(f, {0: True})


def test_size_counts_internal_nodes():
    bdd = BDD()
    assert bdd.size(bdd.true) == 0
    assert bdd.size(bdd.variable(0)) == 1
    chain = bdd.big_and(bdd.variable(v) for v in range(4))
    assert bdd.size(chain) == 4
