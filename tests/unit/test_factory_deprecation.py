"""The factory constructors survive as deprecation shims over the facade."""

import pytest

from repro.api import Scenario, Session, build_model
from repro.factory import build_checker, build_eba_model, build_sba_model


class TestDeprecationWarnings:
    def test_build_sba_model_warns(self):
        with pytest.warns(DeprecationWarning, match="build_sba_model"):
            build_sba_model("floodset", num_agents=2, max_faulty=1)

    def test_build_eba_model_warns(self):
        with pytest.warns(DeprecationWarning, match="build_eba_model"):
            build_eba_model("emin", num_agents=2, max_faulty=1)

    def test_build_checker_warns(self):
        space = Session().space(
            Scenario(exchange="floodset", num_agents=2, max_faulty=1))
        with pytest.warns(DeprecationWarning, match="build_checker"):
            build_checker(space)


class TestBehaviouralEquivalence:
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_sba_shim_builds_the_same_model_as_the_facade(self):
        legacy = build_sba_model("count", num_agents=3, max_faulty=2,
                                 num_values=2, failures="crash")
        modern = build_model(Scenario(exchange="count", num_agents=3,
                                      max_faulty=2))
        assert type(legacy.exchange) is type(modern.exchange)
        assert legacy.default_horizon() == modern.default_horizon()
        assert list(legacy.agents()) == list(modern.agents())
        assert list(legacy.values()) == list(modern.values())
        assert sorted(map(repr, legacy.initial_states())) == \
            sorted(map(repr, modern.initial_states()))

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_eba_shim_builds_the_same_model_as_the_facade(self):
        legacy = build_eba_model("ebasic", num_agents=2, max_faulty=1,
                                 failures="sending")
        modern = build_model(Scenario(exchange="ebasic", num_agents=2,
                                      max_faulty=1, failures="sending"))
        assert type(legacy.exchange) is type(modern.exchange)
        assert type(legacy.failures) is type(modern.failures)
        assert legacy.default_horizon() == modern.default_horizon()

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_shims_keep_the_legacy_family_errors(self):
        with pytest.raises(ValueError, match="not an SBA exchange"):
            build_sba_model("emin", num_agents=2, max_faulty=1)
        with pytest.raises(ValueError, match="not an EBA exchange"):
            build_eba_model("floodset", num_agents=2, max_faulty=1)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_build_checker_matches_checker_for(self):
        from repro.engines import checker_for

        scenario = Scenario(exchange="floodset", num_agents=2, max_faulty=1)
        space = Session().space(scenario)
        assert type(build_checker(space, "set")) is type(checker_for(space, "set"))
        with pytest.raises(ValueError, match="satisfaction engine"):
            build_checker(space, "cudd")
