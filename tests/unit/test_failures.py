"""Unit tests for the failure models."""

import pytest

from repro.failures import (
    CrashFailures,
    GeneralOmissions,
    ReceivingOmissions,
    SendingOmissions,
    failure_model_by_name,
)
from repro.failures.base import DeliveryMode


class TestCrashFailures:
    def test_single_initial_env_with_everyone_alive(self):
        model = CrashFailures(3, 2)
        envs = list(model.initial_env_states())
        assert envs == [(False, False, False)]

    def test_round_choices_respect_failure_budget(self):
        model = CrashFailures(3, 1)
        env = (False, False, False)
        choices = list(model.round_choices(env))
        assert frozenset() in choices
        assert all(len(choice) <= 1 for choice in choices)
        assert len(choices) == 4  # nobody, or any single agent

    def test_round_choices_exclude_already_crashed(self):
        model = CrashFailures(3, 3)
        env = (True, False, False)
        choices = list(model.round_choices(env))
        assert all(0 not in choice for choice in choices)
        # remaining budget is 2 over two alive agents
        assert max(len(choice) for choice in choices) == 2

    def test_apply_choice_marks_agents_crashed(self):
        model = CrashFailures(3, 2)
        env = (False, False, False)
        assert model.apply_choice(env, frozenset({1})) == (False, True, False)

    def test_delivery_modes(self):
        model = CrashFailures(3, 2)
        env = (True, False, False)
        choice = frozenset({1})
        assert model.delivery_mode(env, choice, 0, 2) is DeliveryMode.NEVER
        assert model.delivery_mode(env, choice, 1, 2) is DeliveryMode.OPTIONAL
        assert model.delivery_mode(env, choice, 1, 1) is DeliveryMode.ALWAYS
        assert model.delivery_mode(env, choice, 2, 0) is DeliveryMode.ALWAYS

    def test_crashed_agents_cannot_send_or_act_and_are_faulty(self):
        model = CrashFailures(2, 1)
        env = (True, False)
        assert not model.can_send(env, frozenset(), 0)
        assert model.can_send(env, frozenset(), 1)
        assert not model.can_act(env, 0)
        assert not model.nonfaulty(env, 0)
        assert model.nonfaulty(env, 1)
        assert model.nonfaulty_set(env) == (1,)


class TestOmissionFailures:
    def test_initial_env_states_enumerate_faulty_sets(self):
        model = SendingOmissions(3, 1)
        envs = list(model.initial_env_states())
        assert frozenset() in envs
        assert len(envs) == 1 + 3  # empty set plus three singletons

    def test_initial_env_states_bounded_by_t(self):
        model = SendingOmissions(4, 2)
        envs = list(model.initial_env_states())
        assert all(len(env) <= 2 for env in envs)
        assert len(envs) == 1 + 4 + 6

    def test_round_choices_trivial(self):
        model = SendingOmissions(3, 1)
        assert list(model.round_choices(frozenset({0}))) == [None]
        assert model.apply_choice(frozenset({0}), None) == frozenset({0})

    def test_sending_omission_delivery_modes(self):
        model = SendingOmissions(3, 1)
        env = frozenset({0})
        assert model.delivery_mode(env, None, 0, 1) is DeliveryMode.OPTIONAL
        assert model.delivery_mode(env, None, 0, 0) is DeliveryMode.ALWAYS
        assert model.delivery_mode(env, None, 1, 0) is DeliveryMode.ALWAYS

    def test_receiving_omission_delivery_modes(self):
        model = ReceivingOmissions(3, 1)
        env = frozenset({0})
        assert model.delivery_mode(env, None, 1, 0) is DeliveryMode.OPTIONAL
        assert model.delivery_mode(env, None, 0, 1) is DeliveryMode.ALWAYS

    def test_general_omission_delivery_modes(self):
        model = GeneralOmissions(3, 1)
        env = frozenset({0})
        assert model.delivery_mode(env, None, 0, 1) is DeliveryMode.OPTIONAL
        assert model.delivery_mode(env, None, 1, 0) is DeliveryMode.OPTIONAL
        assert model.delivery_mode(env, None, 1, 2) is DeliveryMode.ALWAYS

    def test_faulty_agents_still_act_and_send(self):
        model = SendingOmissions(3, 1)
        env = frozenset({0})
        assert model.can_act(env, 0)
        assert model.can_send(env, None, 0)
        assert not model.nonfaulty(env, 0)
        assert model.nonfaulty(env, 1)


class TestRegistryAndValidation:
    def test_failure_model_by_name(self):
        assert isinstance(failure_model_by_name("crash", 3, 1), CrashFailures)
        assert isinstance(failure_model_by_name("sending", 3, 1), SendingOmissions)
        assert isinstance(failure_model_by_name("receiving", 3, 1), ReceivingOmissions)
        assert isinstance(failure_model_by_name("general", 3, 1), GeneralOmissions)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            failure_model_by_name("byzantine", 3, 1)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            CrashFailures(0, 0)
        with pytest.raises(ValueError):
            CrashFailures(3, 4)
        with pytest.raises(ValueError):
            CrashFailures(3, -1)
