"""Unit tests for the espresso-style minimiser's cube layer and edge cases."""

import pytest

from repro.core.cover import Cover, certify_cover
from repro.core.espresso import (
    cover_is_tautology,
    cube_contains,
    cube_free_count,
    cube_literal_count,
    cube_to_implicant,
    espresso_minimise,
    full_cube,
    implicant_to_cube,
    minterm_cube,
)


class TestCubePrimitives:
    def test_minterm_cube_matches_truth_table_convention(self):
        # Minterm 0b10 over 2 variables: variable 0 (MSB) is True, variable 1
        # is False -> pairs (admits True, admits False) = (0b10, 0b01).
        assert minterm_cube(0b10, 2) == (0b01 << 2) | 0b10

    def test_implicant_cube_round_trip(self):
        for implicant in [
            (True, False, None),
            (None, None, None),
            (False,),
            (True, True, True, False),
        ]:
            assert cube_to_implicant(implicant_to_cube(implicant), len(implicant)) == implicant

    def test_cube_to_implicant_rejects_empty_pairs(self):
        with pytest.raises(ValueError):
            cube_to_implicant(0, 1)

    def test_containment_is_bit_subset(self):
        outer = implicant_to_cube((True, None))
        inner = implicant_to_cube((True, False))
        assert cube_contains(outer, inner)
        assert not cube_contains(inner, outer)
        assert cube_contains(full_cube(2), outer)

    def test_free_and_literal_counts(self):
        cube = implicant_to_cube((True, None, False, None))
        assert cube_free_count(cube, 4) == 2
        assert cube_literal_count(cube, 4) == 2


class TestEspressoMinimise:
    def test_empty_on_set_is_false(self):
        cover = espresso_minimise(3, [])
        assert cover.implicants == ()
        assert cover.render(["a", "b", "c"]) == "False"

    def test_zero_variables(self):
        assert espresso_minimise(0, [0]).implicants == ((),)
        assert espresso_minimise(0, []).implicants == ()

    def test_all_specified_on_collapses_to_true(self):
        # Explicit empty off-set: everything else is don't-care, so the
        # single specified on-row generalises to the universal cube.
        cover = espresso_minimise(4, [5], [])
        assert cover.implicants == ((None, None, None, None),)
        assert cover.render(["a", "b", "c", "d"]) == "True"

    def test_full_on_set_is_tautology(self):
        cover = espresso_minimise(3, range(8))
        assert cover.implicants == ((None, None, None),)
        assert cover_is_tautology(cover)

    def test_overlapping_on_and_off_rejected(self):
        with pytest.raises(ValueError):
            espresso_minimise(2, [1], [1, 2])

    def test_single_variable_projection(self):
        # f(a, b) = a with the full truth table specified.
        cover = espresso_minimise(2, [2, 3])
        assert cover.implicants == ((True, None),)

    def test_xor_cannot_be_reduced(self):
        cover = espresso_minimise(2, [1, 2])
        assert len(cover.implicants) == 2
        assert certify_cover(cover, [1, 2], None).prime_and_irredundant

    def test_sparse_wide_table_stays_sparse(self):
        # The ROADMAP shape: 10 variables, 7 specified rows.  The cover must
        # be found without ever enumerating the 1017 don't-care minterms.
        on_set = [0b1111111111, 0b1111111110, 0b0000000001]
        off_set = [0b0000000000, 0b1000000000, 0b0100000000, 0b0010000000]
        cover = espresso_minimise(10, on_set, off_set)
        certificate = certify_cover(cover, on_set, off_set)
        assert certificate.prime_and_irredundant
        assert len(cover.implicants) <= 3

    def test_classic_qm_exercise_with_dont_cares(self):
        # Minterms 4,8,10,11,12,15 with DC 9,14: the exact minimum is 3
        # cubes; espresso must find a certified cover of at most 4.
        on_set = [4, 8, 10, 11, 12, 15]
        off_set = sorted(set(range(16)) - set(on_set) - {9, 14})
        cover = espresso_minimise(4, on_set, off_set)
        certificate = certify_cover(cover, on_set, off_set)
        assert certificate.prime_and_irredundant
        assert len(cover.implicants) <= 4


class TestCertifyCover:
    def test_detects_uncovered_on_points(self):
        bad = Cover(num_variables=2, implicants=((True, None),))
        certificate = certify_cover(bad, [0, 2], [1])
        assert certificate.uncovered_on == (0,)
        assert not certificate.ok

    def test_detects_off_set_violations(self):
        bad = Cover(num_variables=2, implicants=((None, None),))
        certificate = certify_cover(bad, [0, 2], [1])
        assert certificate.violated_off == (1,)
        assert not certificate.ok

    def test_detects_implicit_complement_violation(self):
        # (True, None) covers minterms 2 and 3, but only 2 is on: with the
        # implicit off-set the counting oracle must flag a witness.
        bad = Cover(num_variables=2, implicants=((True, None),))
        certificate = certify_cover(bad, [2], None)
        assert certificate.violated_off == (3,)

    def test_detects_non_prime_and_redundant_implicants(self):
        # (True, True) could drop a literal (off-set allows it), and the
        # second implicant covers no on-point of its own.
        sloppy = Cover(num_variables=2, implicants=((True, True), (None, True)))
        certificate = certify_cover(sloppy, [3], [0])
        assert certificate.ok
        assert certificate.non_prime
        assert certificate.redundant
        assert not certificate.prime_and_irredundant

    def test_rejects_overlapping_specification(self):
        cover = Cover(num_variables=1, implicants=())
        with pytest.raises(ValueError):
            certify_cover(cover, [0], [0])
