"""Unit tests for the :class:`repro.api.Scenario` value object."""

import json

import pytest

from repro.api import EBA_EXCHANGES, SBA_EXCHANGES, Scenario


class TestConstruction:
    def test_defaults_are_the_papers(self):
        sba = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        assert sba.family == "sba"
        assert sba.failures == "crash"
        assert sba.num_values == 2
        assert sba.engine == "bitset"
        eba = Scenario(exchange="emin", num_agents=3, max_faulty=1)
        assert eba.family == "eba"
        assert eba.failures == "sending"

    def test_is_frozen_and_hashable(self):
        scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        with pytest.raises(AttributeError):
            scenario.num_agents = 4
        same = Scenario(exchange="floodset", num_agents=3, max_faulty=1,
                        failures="crash", num_values=2)
        assert scenario == same
        assert len({scenario, same}) == 1

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(exchange="bogus", num_agents=3, max_faulty=1), "not a known exchange"),
            (dict(exchange="floodset", num_agents=0, max_faulty=1), "num_agents"),
            (dict(exchange="floodset", num_agents=3, max_faulty=-1), "max_faulty"),
            (dict(exchange="floodset", num_agents=3, max_faulty=1, num_values=1),
             "num_values"),
            (dict(exchange="emin", num_agents=3, max_faulty=1, num_values=3),
             "value domain"),
            (dict(exchange="floodset", num_agents=3, max_faulty=1,
                  failures="byzantine"), "failure model"),
            (dict(exchange="floodset", num_agents=3, max_faulty=1, rounds=-1),
             "rounds"),
            (dict(exchange="floodset", num_agents=3, max_faulty=1, rounds=True),
             "rounds"),
            (dict(exchange="floodset", num_agents=3, max_faulty=1, max_states=0),
             "max_states"),
            (dict(exchange="floodset", num_agents=3, max_faulty=1,
                  max_states=True), "max_states"),
            (dict(exchange="floodset", num_agents=True, max_faulty=1),
             "integer"),
            (dict(exchange="floodset", num_agents=3, max_faulty=1, engine="cudd"),
             "satisfaction engine"),
            (dict(exchange="floodset", num_agents="3", max_faulty=1), "integer"),
        ],
    )
    def test_validates_at_construction(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            Scenario(**kwargs)

    def test_every_exchange_has_a_family(self):
        for exchange in SBA_EXCHANGES:
            assert Scenario(exchange=exchange, num_agents=3, max_faulty=1).family == "sba"
        for exchange in EBA_EXCHANGES:
            assert Scenario(exchange=exchange, num_agents=3, max_faulty=1).family == "eba"


class TestCanonicalForm:
    def test_defaults_are_omitted_and_engine_is_explicit(self):
        scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        params = json.loads(scenario.canonical_json())
        assert params == {"exchange": "floodset", "num_agents": 3,
                          "max_faulty": 1, "engine": "bitset"}

    def test_spelled_out_defaults_normalise_identically(self):
        terse = Scenario(exchange="emin", num_agents=2, max_faulty=1)
        spelled = Scenario(exchange="emin", num_agents=2, max_faulty=1,
                           failures="sending", num_values=2,
                           optimal_protocol=False, engine="bitset")
        assert terse.canonical_json() == spelled.canonical_json()

    def test_non_defaults_are_kept(self):
        scenario = Scenario(exchange="count", num_agents=4, max_faulty=2,
                            failures="sending", rounds=3, optimal_protocol=True,
                            max_states=1000, engine="symbolic")
        params = json.loads(scenario.canonical_json())
        assert params["failures"] == "sending"
        assert params["rounds"] == 3
        assert params["optimal_protocol"] is True
        assert params["max_states"] == 1000
        assert params["engine"] == "symbolic"

    def test_cell_key_matches_the_legacy_store_key(self):
        # The exact key format pre-redesign journals used: canonical JSON of
        # [task, resolved-params] with defaults omitted.
        scenario = Scenario(exchange="floodset", num_agents=2, max_faulty=1,
                            max_states=2_000_000)
        expected = json.dumps(
            ["sba-model-check",
             {"engine": "bitset", "exchange": "floodset", "max_faulty": 1,
              "max_states": 2_000_000, "num_agents": 2}],
            sort_keys=True, separators=(",", ":"))
        assert scenario.cell_key("sba-model-check") == expected


class TestTaskParams:
    def test_round_trip_through_task_params(self):
        scenario = Scenario(exchange="diff", num_agents=4, max_faulty=2,
                            rounds=2, engine="symbolic", max_states=500)
        params = scenario.to_params("sba-model-check")
        assert Scenario.from_task_params("sba-model-check", params) == scenario

    def test_task_family_must_match(self):
        with pytest.raises(ValueError, match="not an SBA exchange"):
            Scenario.from_task_params(
                "sba-model-check",
                {"exchange": "emin", "num_agents": 2, "max_faulty": 1})
        with pytest.raises(ValueError, match="not an EBA exchange"):
            Scenario.from_task_params(
                "eba-synthesis",
                {"exchange": "floodset", "num_agents": 2, "max_faulty": 1})

    def test_unknown_task_and_params_are_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            Scenario.from_task_params("bogus-task", {"exchange": "floodset"})
        with pytest.raises(ValueError, match="does not take"):
            Scenario.from_task_params(
                "eba-synthesis",
                {"exchange": "emin", "num_agents": 2, "max_faulty": 1,
                 "optimal_protocol": True})

    def test_inapplicable_fields_refuse_to_render(self):
        scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1,
                            optimal_protocol=True)
        with pytest.raises(ValueError, match="does not take 'optimal_protocol'"):
            scenario.to_params("sba-synthesis")

    def test_json_round_trip(self):
        scenario = Scenario(exchange="ebasic", num_agents=3, max_faulty=1,
                            engine="set", max_states=10_000)
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_json({"exchange": "floodset", "num_agents": 3,
                                "max_faulty": 1, "n": 3})
