"""Unit tests for the memoising :class:`repro.api.Session` facade."""

import threading

import pytest

from repro.api import Scenario, Session
from repro.harness.tasks import TASKS

FLOODSET = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
EMIN = Scenario(exchange="emin", num_agents=2, max_faulty=1)


class TestQueries:
    def test_check_matches_the_legacy_task(self):
        expected = TASKS["sba-model-check"](
            exchange="floodset", num_agents=3, max_faulty=1)
        assert Session().check(FLOODSET).to_dict() == expected

    def test_temporal_check_matches_the_legacy_task(self):
        expected = TASKS["sba-temporal-only"](
            exchange="floodset", num_agents=3, max_faulty=1)
        assert Session().check_temporal(FLOODSET).to_dict() == expected

    def test_synthesize_matches_the_legacy_tasks(self):
        session = Session()
        sba = TASKS["sba-synthesis"](exchange="floodset", num_agents=3, max_faulty=1)
        assert session.synthesize(FLOODSET).to_dict() == sba
        eba = TASKS["eba-synthesis"](exchange="emin", num_agents=2, max_faulty=1)
        assert session.synthesize(EMIN).to_dict() == eba

    def test_eba_check_dispatches_by_family(self):
        result = Session().check(EMIN)
        assert result.task == "eba-model-check"
        assert result.protocol is not None
        assert result.spec_ok

    def test_temporal_check_rejects_eba(self):
        with pytest.raises(ValueError, match="SBA exchanges only"):
            Session().check_temporal(EMIN)

    def test_query_dispatch_and_unknown_op(self):
        session = Session()
        assert session.query("check", FLOODSET) == session.check(FLOODSET)
        with pytest.raises(ValueError, match="unknown query op"):
            session.query("minimise", FLOODSET)

    def test_batch_runs_in_order_on_the_shared_cache(self):
        session = Session()
        results = session.batch([
            ("check", FLOODSET),
            ("synthesize", FLOODSET),
            ("check", FLOODSET),
            ("synthesize", EMIN),
        ])
        assert [r.task for r in results] == [
            "sba-model-check", "sba-synthesis", "sba-model-check",
            "eba-synthesis",
        ]
        assert results[0] is results[2]  # second check is a pure cache hit

    def test_synthesis_artifact_is_shared_with_the_summary(self):
        session = Session()
        artifact = session.synthesis_artifact(FLOODSET)
        summary = session.synthesize(FLOODSET)
        assert artifact is session.synthesis_artifact(FLOODSET)
        assert summary.states == artifact.space.num_states()

    def test_optimal_flag_is_irrelevant_to_synthesis(self):
        session = Session()
        plain = session.synthesize(FLOODSET)
        flagged = session.synthesize(
            Scenario(exchange="floodset", num_agents=3, max_faulty=1,
                     optimal_protocol=True))
        assert plain is flagged  # normalised to the same cache entry


class TestCaching:
    def test_repeated_queries_hit_the_result_cache(self):
        session = Session()
        first = session.check(FLOODSET)
        misses_after_first = session.stats().misses
        second = session.check(FLOODSET)
        assert first is second
        stats = session.stats()
        assert stats.misses == misses_after_first
        assert stats.hits > 0
        assert 0.0 < stats.hit_rate < 1.0

    def test_mixed_queries_share_artefacts(self):
        # A temporal-only check after a full check re-uses model, space and
        # checker: only the result entry itself is a new miss.
        session = Session()
        session.check(FLOODSET)
        misses_before = session.stats().misses
        session.check_temporal(FLOODSET)
        assert session.stats().misses == misses_before + 1

    def test_engines_never_share_checkers(self):
        session = Session()
        bitset = session.checker(FLOODSET)
        symbolic = session.checker(FLOODSET.with_engine("symbolic"))
        assert type(bitset) is not type(symbolic)
        # ...but both engines share the one space.
        assert session.space(FLOODSET) is session.space(
            FLOODSET.with_engine("symbolic"))

    def test_cache_is_bounded_and_evicts_lru(self):
        session = Session(max_entries=2)
        session.model(FLOODSET)
        session.model(EMIN)
        session.model(Scenario(exchange="count", num_agents=2, max_faulty=1))
        stats = session.stats()
        assert stats.entries <= 2
        # The first model was evicted: asking again is a miss, not a hit.
        misses = stats.misses
        session.model(FLOODSET)
        assert session.stats().misses == misses + 1

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError, match="max_entries"):
            Session(max_entries=0)

    def test_clear_drops_artefacts(self):
        session = Session()
        session.check(FLOODSET)
        session.clear()
        assert session.stats().entries == 0

    def test_stats_to_json_is_serialisable(self):
        import json

        json.dumps(Session().stats().to_json())

    def test_cache_is_bounded_by_weight(self):
        # A budget big enough for one model (~4 KiB) but not two: the
        # second insert evicts the first even though max_entries is ample.
        session = Session(max_weight_bytes=6 * 1024)
        session.model(FLOODSET)
        session.model(EMIN)
        stats = session.stats()
        assert stats.entries == 1
        assert stats.weight_bytes <= stats.max_weight_bytes
        misses = stats.misses
        session.model(FLOODSET)  # evicted above: a rebuild, not a hit
        assert session.stats().misses == misses + 1

    def test_weight_accounting_tracks_entries(self):
        session = Session()
        assert session.stats().weight_bytes == 0
        session.check(FLOODSET)
        weight = session.stats().weight_bytes
        assert weight > 0
        session.clear()
        assert session.stats().weight_bytes == 0

    def test_max_weight_must_be_positive(self):
        with pytest.raises(ValueError, match="max_weight_bytes"):
            Session(max_weight_bytes=0)


class TestStatsSnapshot:
    def test_stats_snapshot_is_frozen(self):
        import dataclasses

        stats = Session().stats()
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.hits = 99

    def test_stats_json_is_a_fresh_copy(self):
        session = Session()
        session.check(FLOODSET)
        snapshot = session.stats().to_json()
        snapshot["hits"] = -1
        snapshot["store"] = {"hits": 10**6}
        # Mutating a handed-out snapshot (as a service response might)
        # cannot touch the session's own accounting.
        assert session.stats().to_json()["hits"] != -1
        assert session.stats().store is None

    def test_store_counters_are_read_only(self, tmp_path):
        from repro.api import ArtefactStore

        session = Session(store=ArtefactStore(tmp_path / "store"))
        session.check(FLOODSET)
        stats = session.stats()
        with pytest.raises(TypeError):
            stats.store["hits"] = 10**6
        # ...and the JSON form converts them to a plain (fresh) dict.
        import json

        json.dumps(stats.to_json())


class TestStatsAggregation:
    def test_aggregate_sums_counters_and_recomputes_hit_rate(self):
        from repro.api.session import SessionStats

        views = [
            {"hits": 9, "misses": 1, "coalesced": 2, "entries": 4,
             "hit_rate": 0.9, "store": {"hits": 3, "misses": 1}},
            {"hits": 0, "misses": 10, "coalesced": 0, "entries": 1,
             "hit_rate": 0.0, "store": {"hits": 0, "misses": 7}},
        ]
        merged = SessionStats.aggregate_json(views)
        assert merged["workers"] == 2
        assert merged["hits"] == 9 and merged["misses"] == 11
        assert merged["coalesced"] == 2 and merged["entries"] == 5
        # Recomputed from the summed totals (9/20), not averaged (0.45
        # either way here, but 0.9-and-0.0 averaged would hide the busy
        # worker's denominator).
        assert merged["hit_rate"] == 0.45
        assert merged["store"] == {"hits": 3, "misses": 8}

    def test_aggregate_of_nothing_is_empty_but_well_formed(self):
        from repro.api.session import SessionStats

        merged = SessionStats.aggregate_json([])
        assert merged["workers"] == 0
        assert merged["hit_rate"] == 0.0
        assert "store" not in merged

    def test_aggregate_accepts_real_snapshots(self):
        from repro.api.session import SessionStats

        session = Session()
        session.check(FLOODSET)
        session.check(FLOODSET)
        merged = SessionStats.aggregate_json(
            [session.stats().to_json(), session.stats().to_json()])
        assert merged["workers"] == 2
        assert merged["hits"] == 2 * session.stats().hits


class TestBatchFailureConsistency:
    def test_failing_scenario_mid_batch_leaves_a_consistent_session(self):
        session = Session()
        # The temporal op on an EBA scenario raises; the batch propagates
        # the error after completing the earlier requests.
        with pytest.raises(ValueError, match="SBA exchanges only"):
            session.batch([
                ("check", FLOODSET),
                ("temporal", EMIN),
                ("check", FLOODSET),
            ])
        stats_after_failure = session.stats()
        # The completed prefix is cached: re-running the batch prefix is
        # pure hits, no new builds.
        result = session.check(FLOODSET)
        assert result.spec_ok
        assert session.stats().misses == stats_after_failure.misses
        # The failure consumed no cache entry and no counter.
        assert stats_after_failure.entries == session.stats().entries

    def test_mid_build_failure_does_not_poison_the_batch_key(self, monkeypatch):
        from repro.core import synthesis

        calls = {"count": 0}
        real = synthesis.synthesize_sba

        def flaky(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("injected mid-build failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(synthesis, "synthesize_sba", flaky)
        session = Session()
        with pytest.raises(RuntimeError, match="injected"):
            session.batch([("check", FLOODSET), ("synthesize", FLOODSET)])
        # The check result survived; the failed synthesis left no entry and
        # the retry rebuilds cleanly on the same session.
        hits_before = session.stats().hits
        assert session.check(FLOODSET).spec_ok
        assert session.stats().hits == hits_before + 1
        summary = session.synthesize(FLOODSET)
        assert summary.task == "sba-synthesis"
        assert calls["count"] == 2


class TestThreadSafety:
    def test_concurrent_identical_queries_build_once(self):
        session = Session()
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(session.check(FLOODSET)))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all(result is results[0] for result in results)


class TestPreloadedSessions:
    def test_preloaded_artefacts_are_served_not_built(self):
        from repro.runtime.preload import Preloader

        preloader = Preloader()
        preloader.preload_cells([("sba-model-check", FLOODSET)])
        session = Session(preloaded=preloader)
        cold = Session().check(FLOODSET)
        warm = session.check(FLOODSET)
        assert warm.to_dict() == cold.to_dict()
        stats = session.stats()
        assert stats.preloaded == 2  # model + space both came preloaded
        assert session.build_seconds() == 0.0

    def test_preloader_serves_prefix_horizons(self):
        from repro.runtime.preload import Preloader

        tall = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        short = Scenario(exchange="floodset", num_agents=3, max_faulty=1,
                         rounds=2)
        preloader = Preloader()
        preloader.ensure(tall)
        session = Session(preloaded=preloader)
        cold = Session().check(short)
        assert session.check(short).to_dict() == cold.to_dict()
        assert session.stats().preloaded == 2

    def test_falls_through_to_fresh_build_when_not_preloaded(self):
        from repro.runtime.preload import Preloader

        preloader = Preloader()
        preloader.preload_cells([("sba-model-check", FLOODSET)])
        session = Session(preloaded=preloader)
        other = Scenario(exchange="floodset", num_agents=4, max_faulty=1)
        cold = Session().check(other)
        assert session.check(other).to_dict() == cold.to_dict()
        assert session.stats().preloaded == 0
        assert session.build_seconds() > 0.0

    def test_preloaded_counter_rides_aggregation(self):
        from repro.api.session import SessionStats
        from repro.runtime.preload import Preloader

        preloader = Preloader()
        preloader.preload_cells([("sba-model-check", FLOODSET)])
        warm = Session(preloaded=preloader)
        warm.check(FLOODSET)
        merged = SessionStats.aggregate_json([
            warm.stats().to_json(), Session().stats().to_json(),
        ])
        assert merged["preloaded"] == 2
