"""Unit tests for the ``repro lint`` rules and engine.

Each rule gets the four-quadrant treatment the analyzer contract
promises: a fixture where it must fire (the true positive the rule was
built for), one where it must stay silent, one where a per-line pragma
suppresses it, and one where a baseline entry does.  The engine-level
tests pin the suppression accounting, the schema-versioned JSON report,
and the rule registry's ``repro.engines``-style validation.
"""

import json

import pytest

from repro.api.results import SchemaVersionError
from repro.devtools import (
    Baseline,
    BaselineEntry,
    check_source,
    render_json,
    report_from_json,
    rules_for,
    validate_rule,
)
from repro.devtools.rules import RULE_CODES, all_rules, rule_for

DET01_POSITIVE = '''
def describe(space):
    items = {frontier(x) for x in range(space)}
    return ", ".join(str(x) for x in items)
'''

DET01_NEGATIVE = '''
def describe(space):
    items = {frontier(x) for x in range(space)}
    return ", ".join(str(x) for x in sorted(items))
'''

LOCK01_POSITIVE = '''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded by: _lock

    def put(self, key, value):
        self._items[key] = value
'''

LOCK01_NEGATIVE = '''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded by: _lock

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def get_locked(self, key):
        # _locked suffix: the caller holds the lock.
        return self._items[key]
'''

FORK01_POSITIVE = '''
import os
import threading

def run():
    worker = threading.Thread(target=print)
    worker.start()
    pid = os.fork()
'''

FORK01_NEGATIVE = '''
import os
import threading

def run():
    worker = threading.Thread(target=print)
    worker.start()
    worker.join()
    pid = os.fork()
'''

FORK01_HANDLER_POSITIVE = '''
import signal
import threading

def install(server):
    def _stop(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()
    signal.signal(signal.SIGTERM, _stop)
'''

FORK01_HANDLER_NEGATIVE = '''
import os
import signal

def install(children):
    def _fan_out(signum, frame):
        for pid in list(children):
            os.kill(pid, signal.SIGTERM)
        signal.alarm(5)
    def _expired(signum, frame):
        raise TimeoutError("wall clock exceeded")
    signal.signal(signal.SIGTERM, _fan_out)
    signal.signal(signal.SIGALRM, _expired)
'''

RES01_POSITIVE = '''
import os

def leak():
    read_end, write_end = os.pipe()
    os.close(write_end)
    return None
'''

RES01_NEGATIVE = '''
import os

def balanced():
    read_end, write_end = os.pipe()
    try:
        return os.read(read_end, 1)
    finally:
        os.close(read_end)
        os.close(write_end)

def handed_off(path):
    handle = open(path)
    return handle

def stored(self, path):
    self.handle = open(path)
    self.handle = None

def managed(path):
    with open(path) as handle:
        return handle.read()
'''

IMP01_POSITIVE = '''
def checker_for(space):
    from repro.core.checker import ModelChecker
    return ModelChecker(space)
'''

IMP01_NEGATIVE = '''
from repro.core.checker import ModelChecker

def checker_for(space):
    return ModelChecker(space)
'''

CASES = {
    "DET01": (DET01_POSITIVE, DET01_NEGATIVE),
    "LOCK01": (LOCK01_POSITIVE, LOCK01_NEGATIVE),
    "FORK01": (FORK01_POSITIVE, FORK01_NEGATIVE),
    "RES01": (RES01_POSITIVE, RES01_NEGATIVE),
    "IMP01": (IMP01_POSITIVE, IMP01_NEGATIVE),
}


def _findings(source, code, **kwargs):
    report = check_source(source, rules_for([code]), **kwargs)
    assert not report.errors, report.errors
    return report.findings


class TestRuleFixtures:
    @pytest.mark.parametrize("code", sorted(CASES))
    def test_positive_fires(self, code):
        positive, _ = CASES[code]
        findings = _findings(positive, code)
        assert findings, f"{code} must fire on its true-positive fixture"
        assert all(f.rule == code for f in findings)
        assert all(f.line > 0 and f.context for f in findings)

    @pytest.mark.parametrize("code", sorted(CASES))
    def test_negative_is_silent(self, code):
        _, negative = CASES[code]
        assert _findings(negative, code) == []

    @pytest.mark.parametrize("code", sorted(CASES))
    def test_pragma_suppresses(self, code):
        positive, _ = CASES[code]
        baseline_run = check_source(positive, rules_for([code]))
        line = baseline_run.findings[0].line
        lines = positive.splitlines()
        lines[line - 1] = lines[line - 1] + "  # lint: disable=" + code
        suppressed = check_source("\n".join(lines), rules_for([code]))
        assert suppressed.findings == []
        assert suppressed.suppressed_pragma >= 1

    @pytest.mark.parametrize("code", sorted(CASES))
    def test_baseline_suppresses(self, code):
        positive, _ = CASES[code]
        first_run = check_source(positive, rules_for([code]))
        baseline = Baseline(
            [
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    context=f.context,
                    justification="grandfathered for the fixture test",
                )
                for f in first_run.findings
            ]
        )
        second_run = check_source(
            positive, rules_for([code]), baseline=baseline
        )
        assert second_run.findings == []
        assert second_run.suppressed_baseline == len(first_run.findings)


class TestDet01Semantics:
    def test_order_insensitive_consumers_are_fine(self):
        source = '''
def describe(space):
    items = {x for x in range(space)}
    total = sum(items)
    low = min(items)
    copied = set(items)
    return f"{total}-{low}-{len(copied)}"
'''
        assert _findings(source, "DET01") == []

    def test_taint_follows_local_calls(self):
        source = '''
def _rows(space):
    return [str(x) for x in space]

def describe(space):
    return ", ".join(_rows({x for x in range(space)}))
'''
        # _rows is called from a sink, so a set iterated inside it is hot.
        tainted = '''
def _rows(space):
    items = {x for x in range(space)}
    return [str(x) for x in items]

def describe(space):
    return ", ".join(_rows(space))
'''
        assert _findings(source, "DET01") == []  # the set is only built
        findings = _findings(tainted, "DET01")
        assert [f.context for f in findings] == ["_rows"]

    def test_untainted_functions_iterate_sets_freely(self):
        source = '''
def frontier(space):
    return [x for x in {x for x in range(space)}]
'''
        assert _findings(source, "DET01") == []


class TestFork01Semantics:
    def test_helper_that_leaks_a_thread_counts_as_start(self):
        source = '''
import os
import threading

def gatekeeper():
    worker = threading.Thread(target=print)
    worker.start()
    return worker

def serve():
    gate = gatekeeper()
    os.fork()
'''
        findings = _findings(source, "FORK01")
        assert [f.context for f in findings] == ["serve"]

    def test_joining_the_helper_thread_clears_it(self):
        source = '''
import os
import threading

def gatekeeper():
    worker = threading.Thread(target=print)
    worker.start()
    return worker

def serve():
    gate = gatekeeper()
    gate.join()
    os.fork()
'''
        assert _findings(source, "FORK01") == []

    def test_safe_handlers_pass(self):
        assert _findings(FORK01_HANDLER_NEGATIVE, "FORK01") == []


class TestRes01Semantics:
    def test_dispositions_silence_the_rule(self):
        assert _findings(RES01_NEGATIVE, "RES01") == []

    def test_unreferenced_socket_is_flagged(self):
        source = '''
import socket

def probe(host, port):
    conn = socket.create_connection((host, port))
    return True
'''
        findings = _findings(source, "RES01")
        assert len(findings) == 1
        assert "conn" in findings[0].message


class TestImp01Scope:
    def test_driver_side_modules_are_exempt(self):
        assert (
            _findings(IMP01_POSITIVE, "IMP01", rel_path="repro/harness/x.py")
            == []
        )
        assert (
            _findings(IMP01_POSITIVE, "IMP01", rel_path="repro/cli.py") == []
        )

    def test_serving_side_modules_are_in_scope(self):
        for rel_path in ("repro/api/x.py", "repro/engines.py"):
            assert _findings(IMP01_POSITIVE, "IMP01", rel_path=rel_path)


class TestRegistry:
    def test_rule_codes_are_sorted_and_complete(self):
        assert RULE_CODES == ("DET01", "FORK01", "IMP01", "LOCK01", "RES01")
        assert len(all_rules()) == len(RULE_CODES)

    def test_validate_normalises_and_rejects(self):
        assert validate_rule(" det01 ") == "DET01"
        with pytest.raises(ValueError, match="unknown lint rule"):
            validate_rule("NOPE99")
        with pytest.raises(ValueError, match="unknown lint rule"):
            rule_for("NOPE99")

    def test_rules_carry_code_and_title(self):
        for rule in all_rules():
            assert rule.code in RULE_CODES
            assert rule.title


class TestReportSchema:
    def test_json_report_round_trips(self):
        report = check_source(DET01_POSITIVE, all_rules())
        payload = json.loads(render_json(report))
        assert payload["schema_version"] == 1
        assert payload["tool"] == "repro-lint"
        rebuilt = report_from_json(payload)
        assert rebuilt.findings == report.findings
        assert rebuilt.files_scanned == report.files_scanned
        assert rebuilt.rules == report.rules

    def test_unknown_schema_version_is_rejected(self):
        report = check_source(DET01_POSITIVE, all_rules())
        payload = json.loads(render_json(report))
        payload["schema_version"] = 99
        with pytest.raises(SchemaVersionError):
            report_from_json(payload)
        with pytest.raises(SchemaVersionError):
            report_from_json({})

    def test_baseline_requires_justifications(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "entries": [
                        {"rule": "DET01", "path": "x.py", "context": "f"}
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)

    def test_baseline_rejects_other_schema_versions(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": 2, "entries": []}))
        with pytest.raises(SchemaVersionError):
            Baseline.load(path)
