"""Unit and fault-injection tests for the persistent artefact store.

The store is the crash-consistency boundary of the serving stack, so the
battery leans on fault injection: torn and corrupt files, wrong versions,
renamed entries, and a full disk (ENOSPC simulated by monkeypatching the
atomic-write plumbing) must all degrade to cold queries with a warning —
never an exception, never a wrong answer.
"""

import errno
import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.api import ArtefactStore, Scenario, Session
from repro.api.artefact_store import STORE_FORMAT_VERSION
from repro.api.results import SCHEMA_VERSION, CheckResult

SCENARIO = Scenario(exchange="floodset", num_agents=2, max_faulty=1)

RESULT = CheckResult(
    task="sba-model-check", engine="bitset", exchange="floodset",
    failures="crash", num_agents=2, max_faulty=1, states=7,
    spec={"validity": True},
)


@pytest.fixture
def store(tmp_path):
    return ArtefactStore(tmp_path / "store")


def _populate(store, op="check"):
    key = SCENARIO.canonical_json()
    assert store.put_result(op, key, RESULT.to_json())
    return key


class TestRoundTrip:
    def test_put_then_get_returns_the_payload(self, store):
        key = _populate(store)
        payload = store.get_result("check", key)
        assert payload == RESULT.to_json()
        assert CheckResult.from_json(payload) == RESULT

    def test_missing_entry_is_a_counted_miss(self, store):
        assert store.get_result("check", SCENARIO.canonical_json()) is None
        assert store.stats()["misses"] == 1

    def test_hits_misses_and_writes_are_counted(self, store):
        key = _populate(store)
        store.get_result("check", key)
        store.get_result("synthesize", key)
        stats = store.stats()
        assert stats["writes"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_distinct_ops_and_scenarios_are_distinct_entries(self, store):
        key = _populate(store, op="check")
        assert store.get_result("synthesize", key) is None
        other = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        assert store.get_result("check", other.canonical_json()) is None

    def test_rewrite_replaces_the_entry(self, store):
        key = _populate(store)
        newer = json.loads(json.dumps(RESULT.to_json()))
        newer["states"] = 99
        assert store.put_result("check", key, newer)
        assert store.get_result("check", key)["states"] == 99

    def test_store_directory_layout_is_created(self, tmp_path):
        root = tmp_path / "deep" / "store"
        ArtefactStore(root)
        assert (root / "results").is_dir()
        assert (root / "artefacts").is_dir()
        assert (root / "quarantine").is_dir()


class TestAtomicity:
    def test_no_temporary_files_survive_a_write(self, store):
        key = _populate(store)
        leftovers = [p for p in (store.root / "results").iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []
        assert store.get_result("check", key) is not None

    def test_abandoned_tmp_file_is_invisible_to_readers(self, store):
        # A crash between mkstemp and os.replace leaves a .tmp file; it must
        # never be read as an entry.
        key = SCENARIO.canonical_json()
        path = store.result_path("check", key)
        (path.parent / (path.name + ".abandoned.tmp")).write_text("{garbage")
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 0


class TestQuarantine:
    def _entry_path(self, store, key):
        return store.result_path("check", key)

    def test_corrupt_json_is_quarantined_not_raised(self, store, caplog):
        key = _populate(store)
        self._entry_path(store, key).write_text("{not json at all")
        with caplog.at_level("WARNING"):
            assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1
        assert "quarantined" in caplog.text
        # The bad file moved aside; the slot is clean and writable again.
        assert not self._entry_path(store, key).exists()
        assert len(list((store.root / "quarantine").iterdir())) == 1
        _populate(store)
        assert store.get_result("check", key) is not None

    def test_truncated_record_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        path.write_bytes(path.read_bytes()[:25])  # torn mid-record
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_wrong_store_format_version_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        record = json.loads(path.read_text())
        record["format"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(record))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_wrong_schema_version_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        record = json.loads(path.read_text())
        record["schema_version"] = SCHEMA_VERSION + 10
        path.write_text(json.dumps(record))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_wrong_payload_schema_version_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        record = json.loads(path.read_text())
        record["result"]["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_renamed_entry_never_answers_the_wrong_query(self, store):
        # Copy a valid record onto another query's slot: the embedded
        # identity no longer matches and the file is quarantined.
        key = _populate(store)
        other = Scenario(exchange="floodset", num_agents=3, max_faulty=2)
        other_key = other.canonical_json()
        source = self._entry_path(store, key)
        target = store.result_path("check", other_key)
        target.write_bytes(source.read_bytes())
        assert store.get_result("check", other_key) is None
        assert store.stats()["quarantined"] == 1
        # The original entry is untouched.
        assert store.get_result("check", key) is not None

    def test_non_object_record_is_quarantined(self, store):
        key = SCENARIO.canonical_json()
        store.result_path("check", key).write_text(json.dumps([1, 2, 3]))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_quarantined_generations_do_not_clobber_each_other(self, store):
        key = _populate(store)
        for _ in range(3):
            self._entry_path(store, key).write_text("{broken")
            assert store.get_result("check", key) is None
        assert len(list((store.root / "quarantine").iterdir())) == 3


def _quarantine_worker(root, source, barrier):
    """Race helper: quarantine ``source`` from a forked process."""
    store = ArtefactStore(root)
    barrier.wait()  # both processes release together, targeting one name
    store.quarantine(Path(source), "race test")


def _reader_worker(root, keys, duration, queue):
    """Race helper: hammer ``get_result`` while another process compacts.

    Reports (reads, wrong_payloads); wrong_payloads must stay zero — a
    compacted-away entry is a miss, never an error or a wrong answer.
    """
    store = ArtefactStore(root)
    deadline = time.time() + duration
    reads = wrong = 0
    try:
        while time.time() < deadline:
            for key in keys:
                payload = store.get_result("check", key)
                if payload is not None and payload != RESULT.to_json():
                    wrong += 1
                reads += 1
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(("error", repr(exc)))
        return
    queue.put(("ok", reads, wrong))


class TestQuarantineRace:
    """The quarantine name claim must be exclusive-create, never clobber.

    Regression: the old probe-then-``os.replace`` dance let a second
    quarantine (another process, or a later corrupt generation) land on a
    name the probe had just reported free, silently destroying the
    evidence the quarantine directory exists to preserve.
    """

    def test_pre_existing_quarantine_target_is_preserved(self, store):
        key = _populate(store)
        path = store.result_path("check", key)
        target = store.root / "quarantine" / path.name
        target.write_text("first generation")
        path.write_text("{broken")
        assert store.get_result("check", key) is None
        # The old generation is untouched; the new one took the next name.
        assert target.read_text() == "first generation"
        assert (store.root / "quarantine" / (path.name + ".1")).read_text() \
            == "{broken"

    def test_vanished_entry_is_tolerated(self, store):
        # A racing process quarantined (or removed) the file first: the
        # loser counts the quarantine and moves on, no exception.
        key = _populate(store)
        path = store.result_path("check", key)
        path.unlink()
        store.quarantine(path, "already gone")
        assert store.stats()["quarantined"] == 1

    def test_two_processes_quarantining_one_name_never_clobber(self, tmp_path):
        # Two processes race to quarantine distinct corrupt generations
        # that share a file name (the exact shape of the old lost-update):
        # afterwards *both* generations must exist under quarantine/.
        ctx = multiprocessing.get_context("fork")
        root = tmp_path / "store"
        ArtefactStore(root)  # create the directory layout up front
        sources = []
        for index in range(2):
            side = tmp_path / f"gen{index}"
            side.mkdir()
            source = side / "entry.json"
            source.write_text(f"generation-{index}")
            sources.append(source)
        barrier = ctx.Barrier(2)
        processes = [
            ctx.Process(target=_quarantine_worker,
                        args=(str(root), str(source), barrier))
            for source in sources
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
        assert all(process.exitcode == 0 for process in processes)
        survivors = sorted(
            item.read_text() for item in (root / "quarantine").iterdir())
        assert survivors == ["generation-0", "generation-1"]


class TestCompaction:
    def _fill(self, store, count, base_agents=2):
        keys = []
        for offset in range(count):
            scenario = Scenario(exchange="floodset",
                                num_agents=base_agents + offset, max_faulty=1)
            key = scenario.canonical_json()
            assert store.put_result("check", key, RESULT.to_json())
            keys.append(key)
        return keys

    def test_bounds_are_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ArtefactStore(tmp_path / "s", max_bytes=0)
        with pytest.raises(ValueError):
            ArtefactStore(tmp_path / "s", max_entries=0)
        with pytest.raises(ValueError):
            ArtefactStore(tmp_path / "s", compact_interval=0)

    def test_disk_stats_report_entries_and_bytes(self, store):
        self._fill(store, 2)
        stats = store.disk_stats()
        assert stats["results"]["entries"] == 2
        assert stats["total"]["entries"] == 2
        assert stats["total"]["bytes"] == stats["results"]["bytes"] > 0
        assert stats["quarantine"] == {"entries": 0, "bytes": 0}

    def test_compact_drops_the_oldest_entries_first(self, store):
        keys = self._fill(store, 5)
        for position, key in enumerate(keys):
            path = store.result_path("check", key)
            os.utime(path, (1000.0 + position, 1000.0 + position))
        summary = store.compact(max_entries=2)
        assert summary["examined"] == 5
        assert summary["kept"] == 2
        assert summary["removed"] == 3
        # The two newest survive; the three oldest are gone (as misses).
        assert store.get_result("check", keys[4]) is not None
        assert store.get_result("check", keys[3]) is not None
        assert store.get_result("check", keys[0]) is None
        assert store.stats()["compacted"] == 3

    def test_read_hits_refresh_recency(self, store):
        keys = self._fill(store, 3)
        for key in keys:
            path = store.result_path("check", key)
            os.utime(path, (1000.0, 1000.0))
        # A hit touches the entry, so LRU keeps the read one, not the
        # most recently written one.
        assert store.get_result("check", keys[0]) is not None
        store.compact(max_entries=1)
        assert store.get_result("check", keys[0]) is not None
        assert store.get_result("check", keys[2]) is None

    def test_compact_enforces_a_byte_bound(self, store):
        keys = self._fill(store, 4)
        sizes = [store.result_path("check", key).stat().st_size for key in keys]
        bound = sizes[-1] + sizes[-2]  # room for roughly two entries
        summary = store.compact(max_bytes=bound)
        assert summary["kept_bytes"] <= bound
        assert summary["removed"] >= 2
        assert store.disk_stats()["total"]["bytes"] <= bound

    def test_quarantine_never_counts_towards_the_bounds(self, store):
        keys = self._fill(store, 2)
        path = store.result_path("check", keys[0])
        path.write_text("{broken")
        assert store.get_result("check", keys[0]) is None  # quarantined
        summary = store.compact(max_entries=1)
        assert summary["examined"] == 1  # only the surviving live entry
        assert len(list((store.root / "quarantine").iterdir())) == 1

    def test_stale_tmp_files_are_swept_fresh_ones_kept(self, store):
        stale = store.root / "results" / "crashed-writer.tmp"
        stale.write_text("debris")
        os.utime(stale, (time.time() - 7200,) * 2)
        fresh = store.root / "results" / "live-writer.tmp"
        fresh.write_text("in flight")
        store.compact(max_entries=10)
        assert not stale.exists()
        assert fresh.exists()

    def test_store_compacts_itself_every_interval(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", max_entries=2,
                              compact_interval=2)
        self._fill(store, 6)
        # Six writes at interval two: the store ran its own passes and the
        # directory never strayed more than one interval past the bound.
        assert store.stats()["compactions"] >= 3  # init pass + every 2 writes
        assert store.disk_stats()["total"]["entries"] <= 3
        store.compact()
        assert store.disk_stats()["total"]["entries"] <= 2

    def test_restart_compacts_an_over_bound_directory(self, tmp_path):
        unbounded = ArtefactStore(tmp_path / "store")
        self._fill(unbounded, 5)
        assert unbounded.disk_stats()["total"]["entries"] == 5
        bounded = ArtefactStore(tmp_path / "store", max_entries=2)
        assert bounded.disk_stats()["total"]["entries"] <= 2

    def test_byte_bound_holds_under_a_concurrent_reader_process(self, tmp_path):
        # The acceptance scenario: one process writes and compacts under a
        # byte bound while a second process keeps reading the same store.
        # The reader must only ever see hits or misses — no exceptions, no
        # wrong payloads — and the writer must end within its bound.
        ctx = multiprocessing.get_context("fork")
        root = tmp_path / "store"
        seed = ArtefactStore(root)
        hot_keys = self._fill(seed, 4)
        entry_size = max(
            seed.result_path("check", key).stat().st_size for key in hot_keys)
        bound = entry_size * 6
        queue = ctx.Queue()
        reader = ctx.Process(target=_reader_worker,
                             args=(str(root), hot_keys, 2.0, queue))
        reader.start()
        try:
            writer = ArtefactStore(root, max_bytes=bound, compact_interval=4)
            for offset in range(40):
                scenario = Scenario(exchange="floodset",
                                    num_agents=50 + offset, max_faulty=1)
                writer.put_result("check", scenario.canonical_json(),
                                  RESULT.to_json())
                # Between self-compactions the store may run at most one
                # interval of writes past the bound, never unbounded.
                assert writer.disk_stats()["total"]["bytes"] \
                    <= bound + entry_size * writer._compact_interval
            writer.compact()
            assert writer.disk_stats()["total"]["bytes"] <= bound
            report = queue.get(timeout=30)
        finally:
            reader.join(timeout=30)
        assert reader.exitcode == 0
        assert report[0] == "ok", report
        _, reads, wrong = report
        assert reads > 0
        assert wrong == 0


class TestWriteFailures:
    def test_enospc_is_counted_and_degrades_to_no_write(self, store, monkeypatch, caplog):
        def full_disk(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.api.artefact_store.os.replace", full_disk)
        with caplog.at_level("WARNING"):
            assert store.put_result(
                "check", SCENARIO.canonical_json(), RESULT.to_json()) is False
        assert store.stats()["write_errors"] == 1
        assert "ENOSPC" in caplog.text
        # No temp-file debris left behind by the failed publish.
        assert list((store.root / "results").iterdir()) == []

    def test_enospc_at_write_time_is_also_safe(self, store, monkeypatch):
        real_write = os.write

        def full_disk(fd, data):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.api.artefact_store.os.write", full_disk)
        assert store.put_result(
            "check", SCENARIO.canonical_json(), RESULT.to_json()) is False
        monkeypatch.setattr("repro.api.artefact_store.os.write", real_write)
        # The store recovers as soon as the disk does.
        assert store.put_result(
            "check", SCENARIO.canonical_json(), RESULT.to_json()) is True

    def test_session_queries_survive_a_dead_store(self, tmp_path, monkeypatch):
        store = ArtefactStore(tmp_path / "store")

        def full_disk(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.api.artefact_store.os.replace", full_disk)
        session = Session(store=store)
        result = session.check(SCENARIO)
        assert result.spec_ok
        assert session.stats().store["write_errors"] >= 1
        # And the answer is cached in memory despite the dead store.
        assert session.check(SCENARIO) is result


class TestPickledArtefacts:
    def test_pickle_is_off_by_default(self, store):
        assert store.put_artefact("space", "k", object()) is False
        assert store.get_artefact("space", "k") is None
        assert list((store.root / "artefacts").iterdir()) == []

    def test_opt_in_round_trip(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "k", {"levels": [1, 2, 3]})
        assert store.get_artefact("space", "k") == {"levels": [1, 2, 3]}

    def test_unpicklable_artefact_degrades(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "k", lambda: None) is False
        assert store.stats()["write_errors"] == 1

    def test_corrupt_pickle_is_quarantined(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "k", [1, 2])
        (path,) = (store.root / "artefacts").iterdir()
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        assert store.get_artefact("space", "k") is None
        assert store.stats()["quarantined"] == 1

    def test_identity_mismatch_is_quarantined(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "a", [1])
        assert store.put_artefact("space", "b", [2])
        paths = sorted((store.root / "artefacts").iterdir())
        paths[0].write_bytes(paths[1].read_bytes())
        values = [store.get_artefact("space", "a"), store.get_artefact("space", "b")]
        # One of the two lookups hit the copied-over file and rejected it.
        assert store.stats()["quarantined"] == 1
        assert None in values

    def test_sessions_share_spaces_through_a_pickling_store(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        first = Session(store=store)
        space = first.space(SCENARIO)
        writes_after_build = store.stats()["writes"]
        assert writes_after_build >= 1
        second = Session(store=ArtefactStore(tmp_path / "store", allow_pickle=True))
        warm = second.space(SCENARIO)
        assert warm.num_states() == space.num_states()
        # The second session loaded, not rebuilt: no new space write.
        assert second.store.stats()["writes"] == 0


class TestKeySchema:
    def test_identity_includes_op_scenario_and_schema_version(self):
        identity = ArtefactStore.result_identity("check", SCENARIO.canonical_json())
        parsed = json.loads(identity)
        assert parsed["op"] == "check"
        assert parsed["schema_version"] == SCHEMA_VERSION
        assert json.loads(parsed["scenario"])["exchange"] == "floodset"

    def test_engine_is_part_of_the_key(self, store):
        key = _populate(store)
        symbolic = SCENARIO.with_engine("symbolic").canonical_json()
        assert key != symbolic
        assert store.get_result("check", symbolic) is None
