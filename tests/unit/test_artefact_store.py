"""Unit and fault-injection tests for the persistent artefact store.

The store is the crash-consistency boundary of the serving stack, so the
battery leans on fault injection: torn and corrupt files, wrong versions,
renamed entries, and a full disk (ENOSPC simulated by monkeypatching the
atomic-write plumbing) must all degrade to cold queries with a warning —
never an exception, never a wrong answer.
"""

import errno
import json
import os

import pytest

from repro.api import ArtefactStore, Scenario, Session
from repro.api.artefact_store import STORE_FORMAT_VERSION
from repro.api.results import SCHEMA_VERSION, CheckResult

SCENARIO = Scenario(exchange="floodset", num_agents=2, max_faulty=1)

RESULT = CheckResult(
    task="sba-model-check", engine="bitset", exchange="floodset",
    failures="crash", num_agents=2, max_faulty=1, states=7,
    spec={"validity": True},
)


@pytest.fixture
def store(tmp_path):
    return ArtefactStore(tmp_path / "store")


def _populate(store, op="check"):
    key = SCENARIO.canonical_json()
    assert store.put_result(op, key, RESULT.to_json())
    return key


class TestRoundTrip:
    def test_put_then_get_returns_the_payload(self, store):
        key = _populate(store)
        payload = store.get_result("check", key)
        assert payload == RESULT.to_json()
        assert CheckResult.from_json(payload) == RESULT

    def test_missing_entry_is_a_counted_miss(self, store):
        assert store.get_result("check", SCENARIO.canonical_json()) is None
        assert store.stats()["misses"] == 1

    def test_hits_misses_and_writes_are_counted(self, store):
        key = _populate(store)
        store.get_result("check", key)
        store.get_result("synthesize", key)
        stats = store.stats()
        assert stats["writes"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_distinct_ops_and_scenarios_are_distinct_entries(self, store):
        key = _populate(store, op="check")
        assert store.get_result("synthesize", key) is None
        other = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        assert store.get_result("check", other.canonical_json()) is None

    def test_rewrite_replaces_the_entry(self, store):
        key = _populate(store)
        newer = json.loads(json.dumps(RESULT.to_json()))
        newer["states"] = 99
        assert store.put_result("check", key, newer)
        assert store.get_result("check", key)["states"] == 99

    def test_store_directory_layout_is_created(self, tmp_path):
        root = tmp_path / "deep" / "store"
        ArtefactStore(root)
        assert (root / "results").is_dir()
        assert (root / "artefacts").is_dir()
        assert (root / "quarantine").is_dir()


class TestAtomicity:
    def test_no_temporary_files_survive_a_write(self, store):
        key = _populate(store)
        leftovers = [p for p in (store.root / "results").iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []
        assert store.get_result("check", key) is not None

    def test_abandoned_tmp_file_is_invisible_to_readers(self, store):
        # A crash between mkstemp and os.replace leaves a .tmp file; it must
        # never be read as an entry.
        key = SCENARIO.canonical_json()
        path = store.result_path("check", key)
        (path.parent / (path.name + ".abandoned.tmp")).write_text("{garbage")
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 0


class TestQuarantine:
    def _entry_path(self, store, key):
        return store.result_path("check", key)

    def test_corrupt_json_is_quarantined_not_raised(self, store, caplog):
        key = _populate(store)
        self._entry_path(store, key).write_text("{not json at all")
        with caplog.at_level("WARNING"):
            assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1
        assert "quarantined" in caplog.text
        # The bad file moved aside; the slot is clean and writable again.
        assert not self._entry_path(store, key).exists()
        assert len(list((store.root / "quarantine").iterdir())) == 1
        _populate(store)
        assert store.get_result("check", key) is not None

    def test_truncated_record_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        path.write_bytes(path.read_bytes()[:25])  # torn mid-record
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_wrong_store_format_version_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        record = json.loads(path.read_text())
        record["format"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(record))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_wrong_schema_version_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        record = json.loads(path.read_text())
        record["schema_version"] = SCHEMA_VERSION + 10
        path.write_text(json.dumps(record))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_wrong_payload_schema_version_is_quarantined(self, store):
        key = _populate(store)
        path = self._entry_path(store, key)
        record = json.loads(path.read_text())
        record["result"]["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_renamed_entry_never_answers_the_wrong_query(self, store):
        # Copy a valid record onto another query's slot: the embedded
        # identity no longer matches and the file is quarantined.
        key = _populate(store)
        other = Scenario(exchange="floodset", num_agents=3, max_faulty=2)
        other_key = other.canonical_json()
        source = self._entry_path(store, key)
        target = store.result_path("check", other_key)
        target.write_bytes(source.read_bytes())
        assert store.get_result("check", other_key) is None
        assert store.stats()["quarantined"] == 1
        # The original entry is untouched.
        assert store.get_result("check", key) is not None

    def test_non_object_record_is_quarantined(self, store):
        key = SCENARIO.canonical_json()
        store.result_path("check", key).write_text(json.dumps([1, 2, 3]))
        assert store.get_result("check", key) is None
        assert store.stats()["quarantined"] == 1

    def test_quarantined_generations_do_not_clobber_each_other(self, store):
        key = _populate(store)
        for _ in range(3):
            self._entry_path(store, key).write_text("{broken")
            assert store.get_result("check", key) is None
        assert len(list((store.root / "quarantine").iterdir())) == 3


class TestWriteFailures:
    def test_enospc_is_counted_and_degrades_to_no_write(self, store, monkeypatch, caplog):
        def full_disk(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.api.artefact_store.os.replace", full_disk)
        with caplog.at_level("WARNING"):
            assert store.put_result(
                "check", SCENARIO.canonical_json(), RESULT.to_json()) is False
        assert store.stats()["write_errors"] == 1
        assert "ENOSPC" in caplog.text
        # No temp-file debris left behind by the failed publish.
        assert list((store.root / "results").iterdir()) == []

    def test_enospc_at_write_time_is_also_safe(self, store, monkeypatch):
        real_write = os.write

        def full_disk(fd, data):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.api.artefact_store.os.write", full_disk)
        assert store.put_result(
            "check", SCENARIO.canonical_json(), RESULT.to_json()) is False
        monkeypatch.setattr("repro.api.artefact_store.os.write", real_write)
        # The store recovers as soon as the disk does.
        assert store.put_result(
            "check", SCENARIO.canonical_json(), RESULT.to_json()) is True

    def test_session_queries_survive_a_dead_store(self, tmp_path, monkeypatch):
        store = ArtefactStore(tmp_path / "store")

        def full_disk(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.api.artefact_store.os.replace", full_disk)
        session = Session(store=store)
        result = session.check(SCENARIO)
        assert result.spec_ok
        assert session.stats().store["write_errors"] >= 1
        # And the answer is cached in memory despite the dead store.
        assert session.check(SCENARIO) is result


class TestPickledArtefacts:
    def test_pickle_is_off_by_default(self, store):
        assert store.put_artefact("space", "k", object()) is False
        assert store.get_artefact("space", "k") is None
        assert list((store.root / "artefacts").iterdir()) == []

    def test_opt_in_round_trip(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "k", {"levels": [1, 2, 3]})
        assert store.get_artefact("space", "k") == {"levels": [1, 2, 3]}

    def test_unpicklable_artefact_degrades(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "k", lambda: None) is False
        assert store.stats()["write_errors"] == 1

    def test_corrupt_pickle_is_quarantined(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "k", [1, 2])
        (path,) = (store.root / "artefacts").iterdir()
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        assert store.get_artefact("space", "k") is None
        assert store.stats()["quarantined"] == 1

    def test_identity_mismatch_is_quarantined(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        assert store.put_artefact("space", "a", [1])
        assert store.put_artefact("space", "b", [2])
        paths = sorted((store.root / "artefacts").iterdir())
        paths[0].write_bytes(paths[1].read_bytes())
        values = [store.get_artefact("space", "a"), store.get_artefact("space", "b")]
        # One of the two lookups hit the copied-over file and rejected it.
        assert store.stats()["quarantined"] == 1
        assert None in values

    def test_sessions_share_spaces_through_a_pickling_store(self, tmp_path):
        store = ArtefactStore(tmp_path / "store", allow_pickle=True)
        first = Session(store=store)
        space = first.space(SCENARIO)
        writes_after_build = store.stats()["writes"]
        assert writes_after_build >= 1
        second = Session(store=ArtefactStore(tmp_path / "store", allow_pickle=True))
        warm = second.space(SCENARIO)
        assert warm.num_states() == space.num_states()
        # The second session loaded, not rebuilt: no new space write.
        assert second.store.stats()["writes"] == 0


class TestKeySchema:
    def test_identity_includes_op_scenario_and_schema_version(self):
        identity = ArtefactStore.result_identity("check", SCENARIO.canonical_json())
        parsed = json.loads(identity)
        assert parsed["op"] == "check"
        assert parsed["schema_version"] == SCHEMA_VERSION
        assert json.loads(parsed["scenario"])["exchange"] == "floodset"

    def test_engine_is_part_of_the_key(self, store):
        key = _populate(store)
        symbolic = SCENARIO.with_engine("symbolic").canonical_json()
        assert key != symbolic
        assert store.get_result("check", symbolic) is None
