"""Engine selection, the factored space encoding, and the checker adapters."""

from __future__ import annotations

import pytest

from repro.core.bitset import from_level_sets
from repro.core.checker import ModelChecker
from repro.core.reference import SetChecker
from repro.engines import ENGINES, check_bits, checker_for, validate_engine
from repro.api import Scenario, build_model
from repro.factory import build_checker
from repro.logic.atoms import exists_value, nonfaulty
from repro.logic.formula import Knows
from repro.protocols.sba import FloodSetStandardProtocol
from repro.symbolic.checker import SymbolicChecker
from repro.symbolic.encode import SpaceEncoder
from repro.systems.space import build_space


@pytest.fixture(scope="module")
def space():
    model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=1))
    return build_space(model, FloodSetStandardProtocol(3, 1))


def test_validate_engine_accepts_known_names():
    for engine in ENGINES:
        assert validate_engine(engine) == engine


def test_validate_engine_rejects_unknown_names():
    with pytest.raises(ValueError, match="bitset"):
        validate_engine("cudd")


def test_checker_for_dispatches(space):
    assert isinstance(checker_for(space, "bitset"), ModelChecker)
    assert isinstance(checker_for(space, "symbolic"), SymbolicChecker)
    assert isinstance(checker_for(space, "set"), SetChecker)
    assert isinstance(checker_for(space), ModelChecker)
    with pytest.raises(ValueError):
        checker_for(space, "sat")


def test_build_checker_is_the_factory_front_door(space):
    assert isinstance(build_checker(space, "symbolic"), SymbolicChecker)
    with pytest.raises(ValueError):
        build_checker(space, "z3")


def test_check_bits_adapter_covers_all_engines(space):
    formula = Knows(0, exists_value(1))
    reference = ModelChecker(space).check_bits(formula)
    for engine in ENGINES:
        assert check_bits(checker_for(space, engine), formula) == reference, engine


def test_set_checker_adapter_equals_native_packing(space):
    formula = nonfaulty(0)
    checker = SetChecker(space)
    assert check_bits(checker, formula) == from_level_sets(checker.check(formula))


# ---------------------------------------------------------------------------
# The factored encoding
# ---------------------------------------------------------------------------


def test_reach_counts_every_state(space):
    encoder = SpaceEncoder(space)
    for level in range(len(space.levels)):
        encoding = encoder.encoding(level)
        count = encoder.bdd.sat_count(
            encoder.reach(level), encoding.variables()
        )
        assert count == len(space.levels[level])


def test_codes_are_unique_and_invertible(space):
    encoder = SpaceEncoder(space)
    for level in range(len(space.levels)):
        codes = encoder.codes(level)
        assert len(set(codes)) == len(codes)
        encoding = encoder.encoding(level)
        for index, code in enumerate(codes):
            assert encoding.state_of_code[code] == index


def test_observation_relation_is_an_equivalence(space):
    """Reflexive on reachable locals, symmetric, and blocks match the space."""
    encoder = SpaceEncoder(space)
    bdd = encoder.bdd
    for level in range(len(space.levels)):
        encoding = encoder.encoding(level)
        for agent in space.model.agents():
            relation = encoder.observation_relation(level, agent)
            groups = space.observation_groups(level, agent)
            codes = encoder.codes(level)
            for observation, members in groups.items():
                for first in members:
                    for second in members:
                        assignment = encoding.assignment_of_code(codes[first])
                        assignment.update(
                            encoding.assignment_of_code(codes[second], primed=True)
                        )
                        assert bdd.evaluate(relation, assignment)
            # States in different blocks are unrelated.
            flat = [(obs, index) for obs, members in groups.items() for index in members]
            for obs_a, first in flat[:6]:
                for obs_b, second in flat[:6]:
                    if obs_a == obs_b:
                        continue
                    assignment = encoding.assignment_of_code(codes[first])
                    assignment.update(
                        encoding.assignment_of_code(codes[second], primed=True)
                    )
                    assert not bdd.evaluate(relation, assignment)


def test_atom_bdds_match_masks(space):
    encoder = SpaceEncoder(space)
    bdd = encoder.bdd
    keys = [
        ("exists", 0),
        ("init", 0, 1),
        ("decided", 1),
        ("some_decided", 0),
        ("nonfaulty", 2),
        ("time", 1),
        ("decides_now", 0, 0),  # per-state fallback path
    ]
    for level in range(len(space.levels)):
        reach = encoder.reach(level)
        for key in keys:
            node = bdd.apply_and(reach, encoder.atom_bdd(level, key))
            assert encoder.to_mask(level, node) == space.atom_mask(level, key), key


def test_mask_roundtrip(space):
    encoder = SpaceEncoder(space)
    level = 1
    mask = space.atom_mask(level, ("exists", 0))
    node = encoder.from_mask(level, mask)
    assert encoder.to_mask(level, node) == mask


def test_transition_matches_edges(space):
    encoder = SpaceEncoder(space)
    bdd = encoder.bdd
    level = 0
    relation = encoder.transition(level)
    encoding = encoder.encoding(level)
    successor_encoding = encoder.encoding(level + 1)
    codes = encoder.codes(level)
    successor_codes = encoder.codes(level + 1)
    edges = {
        (index, target)
        for index, targets in enumerate(space.successors[level])
        for target in targets
    }
    for index in range(min(len(codes), 8)):
        for target in range(min(len(successor_codes), 8)):
            assignment = encoding.assignment_of_code(codes[index])
            assignment.update(
                successor_encoding.assignment_of_code(
                    successor_codes[target], primed=True
                )
            )
            assert bdd.evaluate(relation, assignment) == ((index, target) in edges)
