"""Unit tests for formula builders and structured atoms."""

import pytest

from repro.logic.atoms import (
    decided,
    decides_now,
    decision_is,
    exists_value,
    init_is,
    nonfaulty,
    obs_feature,
    some_decided_value,
    time_is,
)
from repro.logic.builders import (
    AX_power,
    belief_n,
    big_and,
    big_or,
    common_belief_exists,
    iff,
    implies,
    knows,
    neg,
)
from repro.logic.formula import (
    And,
    Atom,
    Bottom,
    CommonBelief,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Or,
    Top,
)


def test_atom_constructors_produce_expected_keys():
    assert init_is(1, 0).key == ("init", 1, 0)
    assert exists_value(1).key == ("exists", 1)
    assert decided(2).key == ("decided", 2)
    assert decision_is(0, 1).key == ("decision", 0, 1)
    assert some_decided_value(0).key == ("some_decided", 0)
    assert decides_now(1, 0).key == ("decides_now", 1, 0)
    assert nonfaulty(0).key == ("nonfaulty", 0)
    assert time_is(3).key == ("time", 3)
    assert obs_feature(0, "count", 2).key == ("obs", 0, "count", 2)


def test_neg_collapses_double_negation():
    atom = Atom("p")
    assert neg(atom) == Not(atom)
    assert neg(neg(atom)) == atom


def test_big_and_flattens_and_handles_edge_cases():
    assert isinstance(big_and([]), Top)
    single = big_and([Atom("p")])
    assert single == Atom("p")
    nested = big_and([And((Atom("a"), Atom("b"))), Atom("c")])
    assert isinstance(nested, And)
    assert len(nested.operands) == 3


def test_big_or_flattens_and_handles_edge_cases():
    assert isinstance(big_or([]), Bottom)
    assert big_or([Atom("p")]) == Atom("p")
    nested = big_or([Or((Atom("a"), Atom("b"))), Atom("c")])
    assert isinstance(nested, Or)
    assert len(nested.operands) == 3


def test_implies_and_iff_and_knowledge_builders():
    assert isinstance(implies(Atom("a"), Atom("b")), Implies)
    assert isinstance(iff(Atom("a"), Atom("b")), Iff)
    assert knows(1, Atom("p")) == Knows(1, Atom("p"))
    assert belief_n(1, Atom("p")) == KnowsNonfaulty(1, Atom("p"))


def test_common_belief_exists_matches_paper_shape():
    condition = common_belief_exists(2, 1)
    assert isinstance(condition, KnowsNonfaulty)
    assert condition.agent == 2
    assert isinstance(condition.operand, CommonBelief)
    assert condition.operand.operand == exists_value(1)


def test_ax_power_iterates_next():
    base = Atom("p")
    assert AX_power(0, base) == base
    twice = AX_power(2, base)
    assert isinstance(twice, Next)
    assert isinstance(twice.operand, Next)
    assert twice.operand.operand == base


def test_ax_power_rejects_negative():
    with pytest.raises(ValueError):
        AX_power(-1, Atom("p"))
