"""Smoke tests: every example script runs headlessly against the public API.

Each example under ``examples/`` is executed in-process as ``__main__`` with
its stdout captured, so a drifted import or API change in any example fails
the suite rather than the first user who copies it.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_headlessly(example, capsys):
    runpy.run_path(str(example), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{example.name} produced no output"


def test_quickstart_reports_synthesis(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Synthesized decision conditions" in out
    assert "SBA specification on the synthesized protocol" in out
    # The synthesized protocol satisfies the specification.
    assert "False" not in out.split("SBA specification")[1].split("Textbook")[0]
