"""Unit tests for the persistent result store (journal, resume, report)."""

import json

import pytest

import repro.harness.tables as tables_module
from repro.harness.runner import CaseOutcome
from repro.harness.store import (
    ResultStore,
    canonical_key,
    outcome_from_record,
    outcome_to_record,
)
from repro.harness.tables import (
    TableSpec,
    render_table,
    run_table,
    table1_spec,
)


def _outcome(**overrides) -> CaseOutcome:
    base = dict(
        task="sba-synthesis",
        params={"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
        seconds=0.25,
        timed_out=False,
        error=None,
        result={"n": 2, "t": 1},
    )
    base.update(overrides)
    return CaseOutcome(**base)


class TestCanonicalKey:
    def test_key_ignores_parameter_order(self):
        a = canonical_key("t", {"x": 1, "y": "s"})
        b = canonical_key("t", {"y": "s", "x": 1})
        assert a == b

    def test_key_distinguishes_task_and_params(self):
        base = canonical_key("t", {"x": 1})
        assert canonical_key("u", {"x": 1}) != base
        assert canonical_key("t", {"x": 2}) != base


class TestOutcomeRecords:
    @pytest.mark.parametrize(
        "outcome",
        [
            _outcome(),
            _outcome(seconds=None, timed_out=True, result=None),
            _outcome(seconds=None, error="boom", result=None),
            _outcome(build_seconds=0.15, check_seconds=0.1),
        ],
    )
    def test_round_trip(self, outcome):
        assert outcome_from_record(outcome_to_record(outcome)) == outcome

    def test_pre_split_records_load_with_no_timing(self):
        # Journals written before the build/check timing split have no
        # timing keys: they must load cleanly and report an absent split.
        record = outcome_to_record(_outcome())
        del record["build_seconds"]
        del record["check_seconds"]
        loaded = outcome_from_record(record)
        assert loaded.build_seconds is None
        assert loaded.check_seconds is None
        assert loaded.result == {"n": 2, "t": 1}


class TestResultStore:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        outcome = _outcome()
        store.record(outcome)
        store.record(_outcome(params={"exchange": "floodset", "num_agents": 3,
                                      "max_faulty": 1}, result={"n": 3}))
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.get(outcome.task, outcome.params) == outcome

    def test_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.record(_outcome(seconds=1.0))
        store.record(_outcome(seconds=2.0))
        reloaded = ResultStore(store.path)
        assert len(reloaded) == 1
        assert reloaded.get(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
        ).seconds == 2.0

    def test_corrupt_journal_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('not json\n' + json.dumps(
            outcome_to_record(_outcome())) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            ResultStore(path)

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        # A kill mid-append leaves a torn last line; the journal must still
        # load every complete record (that is the whole point of the store).
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.record(_outcome())
        with path.open("a") as handle:
            handle.write('{"kind": "outcome", "task": "sba-syn')
        reloaded = ResultStore(path)
        assert len(reloaded) == 1

    def test_budget_is_journalled_with_the_outcome(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        outcome = _outcome()
        store.record(outcome, timeout=30.0)
        reloaded = ResultStore(store.path)
        assert reloaded.budget_for(outcome.task, outcome.params) == 30.0

    def test_load_result_requires_spec_record(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.record(_outcome())
        with pytest.raises(ValueError, match="no spec record"):
            store.load_result()


class TestRunTableWithStore:
    SPEC_KWARGS = dict(max_n=2, include_count=False)

    def test_store_round_trip_rerenders_identically(self, tmp_path):
        spec = table1_spec(**self.SPEC_KWARGS)
        store = ResultStore(tmp_path / "t1.jsonl")
        result = run_table(spec, timeout=60.0, store=store, verbose=False)
        reloaded = ResultStore(store.path).load_result()
        assert render_table(reloaded) == render_table(result)
        # The journal is line-oriented JSON: one spec record + one per cell.
        records = [json.loads(line)
                   for line in store.path.read_text().splitlines()]
        assert [r["kind"] for r in records].count("spec") == 1
        assert [r["kind"] for r in records].count("outcome") == len(
            result.outcomes
        )

    def test_resume_skips_completed_cells(self, tmp_path, monkeypatch):
        full_spec = table1_spec(**self.SPEC_KWARGS)
        # Simulate a sweep killed midway: only the first row completed.
        partial_spec = TableSpec(
            name=full_spec.name,
            title=full_spec.title,
            row_header=full_spec.row_header,
            rows=full_spec.rows[:1],
        )
        store = ResultStore(tmp_path / "t1.jsonl")
        run_table(partial_spec, timeout=60.0, store=store, verbose=False)
        completed = set(store.outcomes)

        executed = []
        real_run_case = tables_module.run_case

        def counting_run_case(task, params, **kwargs):
            executed.append(canonical_key(task, params))
            return real_run_case(task, params, **kwargs)

        monkeypatch.setattr(tables_module, "run_case", counting_run_case)
        resumed = run_table(
            full_spec,
            timeout=60.0,
            store=ResultStore(store.path),
            resume=True,
            verbose=False,
        )
        # Every cell is present, but only the second row was executed.
        assert len(resumed.outcomes) == 2 * len(full_spec.columns())
        assert len(executed) == len(full_spec.columns())
        assert not completed.intersection(executed)

    def test_resume_skips_in_parallel_mode_too(self, tmp_path, monkeypatch):
        spec = table1_spec(**self.SPEC_KWARGS)
        store = ResultStore(tmp_path / "t1.jsonl")
        first = run_table(spec, timeout=60.0, workers=2, store=store,
                          verbose=False)

        def exploding_handle(*args, **kwargs):
            raise AssertionError("resume re-ran a completed cell")

        monkeypatch.setattr(tables_module, "CaseHandle", exploding_handle)
        resumed = run_table(
            spec,
            timeout=60.0,
            workers=2,
            store=ResultStore(store.path),
            resume=True,
            verbose=False,
        )
        assert set(resumed.outcomes) == set(first.outcomes)

    def test_resume_retries_to_cells_under_a_larger_budget(self, tmp_path):
        spec = TableSpec(
            name="mini",
            title="Mini",
            row_header=("i",),
            rows=[
                ((0,), [(
                    "synth",
                    "sba-synthesis",
                    {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
                )])
            ],
        )
        # The params must match the resolved cell exactly — the engine is part
        # of the canonical key, so a TO recorded under another backend would
        # (correctly) not be reused.
        to_outcome = CaseOutcome(
            task="sba-synthesis",
            params={"exchange": "floodset", "num_agents": 2, "max_faulty": 1,
                    "max_states": 2_000_000, "engine": "bitset"},
            seconds=None,
            timed_out=True,
        )
        store = ResultStore(tmp_path / "results.jsonl")
        store.record(to_outcome, timeout=0.5)

        # Same (or smaller) budget: the TO is conclusive and is reused.
        reused = run_table(spec, timeout=0.5, store=ResultStore(store.path),
                           resume=True, verbose=False)
        assert reused.cell((0,), "synth") == "TO"

        # Larger budget: the TO must be retried (and now completes).
        retried = run_table(spec, timeout=60.0, store=ResultStore(store.path),
                            resume=True, verbose=False)
        assert retried.cell((0,), "synth") != "TO"

    def test_resume_never_mixes_engines(self, tmp_path):
        """Outcomes journalled under one engine are not reused by another."""
        from repro.harness.tables import table3_spec

        kwargs = dict(max_n=2, )
        store_path = tmp_path / "t3.jsonl"
        first = run_table(
            table3_spec(**kwargs, engine="bitset"), timeout=60.0,
            store=ResultStore(store_path), verbose=False,
        )
        bitset_records = len(ResultStore(store_path))

        # Resuming under the symbolic engine finds no reusable cells: every
        # canonical key differs in the engine parameter, so the grid re-runs
        # and the journal doubles.
        resumed = run_table(
            table3_spec(**kwargs, engine="symbolic"), timeout=60.0,
            store=ResultStore(store_path), resume=True, verbose=False,
        )
        reloaded = ResultStore(store_path)
        assert len(reloaded) == 2 * bitset_records
        for (row_key, column), outcome in resumed.outcomes.items():
            assert outcome.params["engine"] == "symbolic", (row_key, column)
        # Both engines agree cell for cell on the qualitative results.
        for key, outcome in first.outcomes.items():
            mirror = resumed.outcomes[key]
            for field_name in ("states", "iterations", "converged"):
                assert outcome.result[field_name] == mirror.result[field_name]

        # Resuming again under the original engine reuses its own cells.
        rerun = run_table(
            table3_spec(**kwargs, engine="bitset"), timeout=60.0,
            store=ResultStore(store_path), resume=True, verbose=False,
        )
        assert len(ResultStore(store_path)) == 2 * bitset_records
        for key, outcome in rerun.outcomes.items():
            assert outcome.seconds == first.outcomes[key].seconds

    def test_pre_engine_journals_resume_under_bitset_only(self, tmp_path):
        """Old journals (no engine in cell params) stay resumable — but only
        by the bitset engine, which is what they were recorded under."""
        from repro.harness.tables import table3_spec

        legacy_params = {"exchange": "emin", "num_agents": 2, "max_faulty": 1,
                         "failures": "crash", "max_states": 2_000_000}
        legacy = CaseOutcome(
            task="eba-synthesis", params=legacy_params, seconds=1.25,
            timed_out=False,
            result={"task": "eba-synthesis", "states": 1, "iterations": 1,
                    "converged": True},
        )
        store = ResultStore(tmp_path / "legacy.jsonl")
        store.record(legacy, timeout=60.0)

        modern_params = dict(legacy_params, engine="bitset")
        reloaded = ResultStore(store.path)
        assert reloaded.get("eba-synthesis", modern_params) is legacy or (
            reloaded.get("eba-synthesis", modern_params).seconds == 1.25
        )
        assert reloaded.budget_for("eba-synthesis", modern_params) == 60.0
        assert reloaded.get(
            "eba-synthesis", dict(legacy_params, engine="symbolic")
        ) is None

        # End to end: resuming the bitset grid reuses the legacy cell...
        resumed = run_table(
            table3_spec(max_n=2, engine="bitset"), timeout=60.0,
            store=ResultStore(store.path), resume=True, verbose=False,
        )
        assert resumed.outcomes[((2, 1), "emin-crash")].seconds == 1.25
        # ...while a symbolic resume re-runs it.
        symbolic = run_table(
            table3_spec(max_n=2, engine="symbolic"), timeout=60.0,
            store=ResultStore(store.path), resume=True, verbose=False,
        )
        assert symbolic.outcomes[((2, 1), "emin-crash")].seconds != 1.25

    def test_spec_record_carries_the_engine(self, tmp_path):
        from repro.harness.tables import render_json, table3_spec

        store = ResultStore(tmp_path / "t3.jsonl")
        run_table(table3_spec(max_n=2, engine="symbolic"), timeout=60.0,
                  store=store, verbose=False)
        reloaded = ResultStore(store.path)
        result = reloaded.load_result()
        assert result.spec.engine == "symbolic"
        assert '"engine": "symbolic"' in render_json(result)

    def test_rerun_without_resume_overwrites(self, tmp_path):
        spec = table1_spec(**self.SPEC_KWARGS)
        store = ResultStore(tmp_path / "t1.jsonl")
        run_table(spec, timeout=60.0, store=store, verbose=False)
        run_table(spec, timeout=60.0, store=ResultStore(store.path),
                  verbose=False)
        reloaded = ResultStore(store.path)
        # Duplicate keys collapse on reload; the rendered table is complete
        # (no "-" cells in the paper-style grid, which ends at the blank line
        # before the timing-split grid).
        assert len(reloaded) == sum(len(cells) for _, cells in spec.rows)
        main_grid = render_table(reloaded.load_result()).split("\n\n")[0]
        assert "-" not in main_grid.split("\n", 3)[3]


class TestScenarioKeyNormalisation:
    """Store keys normalise through Scenario: same configuration, same key."""

    def test_spelled_out_defaults_share_a_key(self):
        terse = {"exchange": "floodset", "num_agents": 2, "max_faulty": 1,
                 "engine": "bitset"}
        spelled = dict(terse, num_values=2, failures="crash",
                       optimal_protocol=False)
        assert canonical_key("sba-model-check", terse) == \
            canonical_key("sba-model-check", spelled)

    def test_engineless_legacy_params_normalise_to_bitset(self):
        modern = {"exchange": "emin", "num_agents": 2, "max_faulty": 1,
                  "engine": "bitset"}
        legacy = {"exchange": "emin", "num_agents": 2, "max_faulty": 1}
        assert canonical_key("eba-synthesis", legacy) == \
            canonical_key("eba-synthesis", modern)

    def test_unknown_tasks_fall_back_to_raw_json(self):
        key = canonical_key("custom-task", {"y": 2, "x": 1})
        assert key == '["custom-task",{"x":1,"y":2}]'

    def test_pre_redesign_journal_loads_and_reports(self, tmp_path, capsys):
        """A journal written by the pre-Scenario harness (explicit default
        params, pre-normalisation key strings) still resumes and re-renders
        via ``repro report`` — keys are migrated on read."""
        from repro.cli import main

        path = tmp_path / "legacy.jsonl"
        # Key and params exactly as the pre-redesign store wrote them:
        # failures spelled out even at its default, key not normalised.
        legacy_params = {"exchange": "emin", "num_agents": 2, "max_faulty": 1,
                         "failures": "sending", "max_states": 2_000_000,
                         "engine": "bitset"}
        raw_key = json.dumps(["eba-synthesis", legacy_params],
                             sort_keys=True, separators=(",", ":"))
        spec_record = {
            "kind": "spec", "name": "table3", "title": "Table 3 (legacy)",
            "row_header": ["n", "t"], "engine": "bitset",
            "rows": [{"key": [2, 1], "cells": [
                {"column": "emin-sending", "task": "eba-synthesis",
                 "params": legacy_params}]}],
        }
        outcome_record = {
            "kind": "outcome", "key": raw_key, "task": "eba-synthesis",
            "params": legacy_params, "seconds": 1.5, "timed_out": False,
            "error": None, "timeout": 60.0,
            "result": {"task": "eba-synthesis", "states": 56, "iterations": 3,
                       "converged": True},
        }
        path.write_text(json.dumps(spec_record) + "\n"
                        + json.dumps(outcome_record) + "\n")

        store = ResultStore(path)
        assert len(store) == 1
        # Lookup with the modern minimal params (failures omitted) hits.
        modern = {"exchange": "emin", "num_agents": 2, "max_faulty": 1,
                  "max_states": 2_000_000, "engine": "bitset"}
        assert store.get("eba-synthesis", modern).seconds == 1.5
        assert store.budget_for("eba-synthesis", modern) == 60.0

        # The CLI report renders the legacy journal without re-running.
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Table 3 (legacy)" in out
        assert "emin-sending" in out
        assert "1m" not in out.splitlines()[1]  # header row, sanity

    def test_pre_redesign_journal_resumes_against_a_new_sweep(self, tmp_path):
        """run_table --resume reuses a legacy cell journalled with
        spelled-out default params under the new Scenario keys."""
        legacy_params = {"exchange": "emin", "num_agents": 2, "max_faulty": 1,
                         "failures": "sending", "max_states": 2_000_000,
                         "engine": "bitset"}
        legacy = CaseOutcome(
            task="eba-synthesis", params=legacy_params, seconds=7.25,
            timed_out=False,
            result={"task": "eba-synthesis", "states": 56, "iterations": 3,
                    "converged": True},
        )
        store = ResultStore(tmp_path / "legacy.jsonl")
        store.record(legacy, timeout=60.0)

        from repro.harness.tables import table3_spec

        resumed = run_table(
            table3_spec(max_n=2, engine="bitset"), timeout=60.0,
            store=ResultStore(store.path), resume=True, verbose=False,
        )
        assert resumed.outcomes[((2, 1), "emin-sending")].seconds == 7.25
