"""Unit tests for the formula AST."""

import pytest

from repro.logic.formula import (
    And,
    Atom,
    Bottom,
    CommonBelief,
    EvEventually,
    EveryoneBelieves,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Nu,
    Or,
    PositivityError,
    Top,
    Var,
    check_positive,
)


def test_operator_overloads_build_expected_nodes():
    a = Atom("a")
    b = Atom("b")
    assert isinstance(a & b, And)
    assert isinstance(a | b, Or)
    assert isinstance(~a, Not)
    assert isinstance(a >> b, Implies)


def test_formulas_are_hashable_and_structurally_equal():
    left = Knows(0, And((Atom("p"), Atom("q"))))
    right = Knows(0, And((Atom("p"), Atom("q"))))
    assert left == right
    assert hash(left) == hash(right)
    assert len({left, right}) == 1


def test_children_and_subformulas():
    formula = Implies(Atom("p"), Knows(1, Or((Atom("q"), Atom("r")))))
    subs = list(formula.subformulas())
    assert formula in subs
    assert Atom("q") in subs
    assert formula.size() == 6


def test_agents_collects_knowledge_operators():
    formula = And((Knows(0, Atom("p")), KnowsNonfaulty(2, Atom("q"))))
    assert formula.agents() == frozenset({0, 2})


def test_free_variables_and_closedness():
    open_formula = And((Var("X"), Atom("p")))
    closed = Nu("X", And((Var("X"), Atom("p"))))
    assert open_formula.free_variables() == frozenset({"X"})
    assert not open_formula.is_closed()
    assert closed.free_variables() == frozenset()
    assert closed.is_closed()


def test_nested_fixpoint_free_variables():
    formula = Nu("X", And((Var("X"), Var("Y"))))
    assert formula.free_variables() == frozenset({"Y"})


def test_has_temporal_and_has_knowledge():
    epistemic = CommonBelief(Atom("p"))
    temporal = Next(Atom("p"))
    both = And((Knows(0, Atom("p")), EvEventually(Atom("q"))))
    assert epistemic.has_knowledge() and not epistemic.has_temporal()
    assert temporal.has_temporal() and not temporal.has_knowledge()
    assert both.has_temporal() and both.has_knowledge()


def test_check_positive_accepts_positive_occurrences():
    formula = Nu("X", EveryoneBelieves(And((Atom("p"), Var("X")))))
    check_positive(formula)  # should not raise


def test_check_positive_rejects_negative_occurrence():
    bad = Nu("X", Not(Var("X")))
    with pytest.raises(PositivityError):
        check_positive(bad)


def test_check_positive_rejects_negative_via_implication():
    bad = Nu("X", Implies(Var("X"), Atom("p")))
    with pytest.raises(PositivityError):
        check_positive(bad)


def test_check_positive_rejects_variable_under_iff():
    bad = Nu("X", Iff(Var("X"), Atom("p")))
    with pytest.raises(PositivityError):
        check_positive(bad)


def test_check_positive_ignores_unbound_variables():
    # A free variable may occur negatively; only bound ones are restricted.
    check_positive(Not(Var("Y")))


def test_str_renderings_are_informative():
    assert "K_1" in str(Knows(1, Atom("p")))
    assert "B^N_0" in str(KnowsNonfaulty(0, Atom("p")))
    assert "CB_N" in str(CommonBelief(Atom("p")))
    assert "nu X" in str(Nu("X", Var("X")))
    assert str(Top()) == "true"
    assert str(Bottom()) == "false"
    assert "init" in str(Atom(("init", 0, 1)))
