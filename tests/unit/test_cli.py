"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_commands_have_budget_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--max-n", "3", "--timeout", "5"])
        assert args.command == "table1"
        assert args.max_n == 3
        assert args.timeout == 5.0

    def test_synthesize_command_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["synthesize", "--exchange", "floodset", "--agents", "3", "--faulty", "1"]
        )
        assert args.exchange == "floodset"
        assert args.agents == 3
        assert args.minimise == "auto"

    def test_synthesize_minimise_backend_flag(self):
        parser = build_parser()
        args = parser.parse_args(
            ["synthesize", "--exchange", "floodset", "--agents", "3",
             "--faulty", "1", "--minimise", "espresso"]
        )
        assert args.minimise == "espresso"
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["synthesize", "--exchange", "floodset", "--agents", "3",
                 "--faulty", "1", "--minimise", "bogus"]
            )

    def test_missing_command_errors(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])


class TestCommands:
    def test_synthesize_sba_prints_conditions(self, capsys):
        code = main(
            ["synthesize", "--exchange", "floodset", "--agents", "3", "--faulty", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "values_received[0]" in captured.out

    def test_synthesize_eba_prints_conditions(self, capsys):
        code = main(
            [
                "synthesize",
                "--exchange",
                "emin",
                "--agents",
                "2",
                "--faulty",
                "1",
                "--failures",
                "sending",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "decide0" in captured.out or "decide" in captured.out

    def test_synthesize_forced_backends_agree(self, capsys):
        # The same configuration rendered with both backends: covers may
        # differ, but the reported condition structure must stay recognisable
        # and the exact backend's known rendering must be unchanged.
        argv = ["synthesize", "--exchange", "floodset", "--agents", "3",
                "--faulty", "1"]
        assert main(argv + ["--minimise", "qm"]) == 0
        qm_out = capsys.readouterr().out
        assert main(argv + ["--minimise", "espresso"]) == 0
        espresso_out = capsys.readouterr().out
        assert "values_received[0]" in qm_out
        assert "values_received[0]" in espresso_out

    def test_synthesize_unknown_exchange_fails(self, capsys):
        code = main(
            ["synthesize", "--exchange", "bogus", "--agents", "2", "--faulty", "1"]
        )
        assert code == 2

    def test_check_command_reports_result(self, capsys):
        code = main(
            [
                "check",
                "--exchange",
                "floodset",
                "--agents",
                "3",
                "--faulty",
                "2",
                "--timeout",
                "120",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "optimal" in captured.out
        assert "False" in captured.out  # the standard protocol is not optimal

    def test_table_command_small_grid(self, capsys):
        code = main(["table1", "--max-n", "2", "--timeout", "60", "--quiet"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Table 1" in captured.out
        assert "floodset-synth" in captured.out
