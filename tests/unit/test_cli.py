"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_commands_have_budget_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--max-n", "3", "--timeout", "5"])
        assert args.command == "table1"
        assert args.max_n == 3
        assert args.timeout == 5.0

    def test_synthesize_command_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["synthesize", "--exchange", "floodset", "--agents", "3", "--faulty", "1"]
        )
        assert args.exchange == "floodset"
        assert args.agents == 3
        assert args.minimise == "auto"

    def test_synthesize_minimise_backend_flag(self):
        parser = build_parser()
        args = parser.parse_args(
            ["synthesize", "--exchange", "floodset", "--agents", "3",
             "--faulty", "1", "--minimise", "espresso"]
        )
        assert args.minimise == "espresso"
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["synthesize", "--exchange", "floodset", "--agents", "3",
                 "--faulty", "1", "--minimise", "bogus"]
            )

    def test_missing_command_errors(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_table_commands_have_grid_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table3", "--workers", "4", "--output", "out.jsonl", "--resume",
             "--format", "csv"]
        )
        assert args.workers == 4
        assert args.output == "out.jsonl"
        assert args.resume is True
        assert args.format == "csv"

    def test_workers_defaults_to_cpu_count(self):
        from repro.cli import default_workers

        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.workers == default_workers() >= 1

    def test_failures_flag_is_validated(self):
        parser = build_parser()
        args = parser.parse_args(
            ["synthesize", "--exchange", "emin", "--agents", "2", "--faulty",
             "1", "--failures", "general"]
        )
        assert args.failures == "general"
        for command in (["synthesize"], ["check"]):
            with pytest.raises(SystemExit):
                parser.parse_args(
                    command
                    + ["--exchange", "emin", "--agents", "2", "--faulty", "1",
                       "--failures", "byzantine"]
                )

    def test_engine_flag_defaults_to_bitset(self):
        parser = build_parser()
        for arguments in (
            ["table1"],
            ["synthesize", "--exchange", "floodset", "--agents", "2",
             "--faulty", "1"],
            ["check", "--exchange", "floodset", "--agents", "2", "--faulty", "1"],
        ):
            assert parser.parse_args(arguments).engine == "bitset"

    def test_engine_flag_accepts_every_backend(self):
        from repro.engines import ENGINES

        parser = build_parser()
        for engine in ENGINES:
            args = parser.parse_args(["table3", "--engine", engine])
            assert args.engine == engine

    def test_engine_flag_is_validated(self):
        parser = build_parser()
        for command in (
            ["table1"],
            ["table2"],
            ["table3"],
            ["ablation-temporal"],
            ["ablation-failures"],
            ["synthesize", "--exchange", "floodset", "--agents", "2",
             "--faulty", "1"],
            ["check", "--exchange", "floodset", "--agents", "2", "--faulty", "1"],
        ):
            with pytest.raises(SystemExit):
                parser.parse_args(command + ["--engine", "cudd"])

    def test_engine_flag_rejection_names_the_backends(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["table1", "--engine", "cudd"])
        assert excinfo.value.code == 2
        message = capsys.readouterr().err
        for engine in ("bitset", "symbolic", "set"):
            assert engine in message


class TestCommands:
    def test_synthesize_sba_prints_conditions(self, capsys):
        code = main(
            ["synthesize", "--exchange", "floodset", "--agents", "3", "--faulty", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "values_received[0]" in captured.out

    def test_synthesize_eba_prints_conditions(self, capsys):
        code = main(
            [
                "synthesize",
                "--exchange",
                "emin",
                "--agents",
                "2",
                "--faulty",
                "1",
                "--failures",
                "sending",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "decide0" in captured.out or "decide" in captured.out

    def test_synthesize_forced_backends_agree(self, capsys):
        # The same configuration rendered with both backends: covers may
        # differ, but the reported condition structure must stay recognisable
        # and the exact backend's known rendering must be unchanged.
        argv = ["synthesize", "--exchange", "floodset", "--agents", "3",
                "--faulty", "1"]
        assert main(argv + ["--minimise", "qm"]) == 0
        qm_out = capsys.readouterr().out
        assert main(argv + ["--minimise", "espresso"]) == 0
        espresso_out = capsys.readouterr().out
        assert "values_received[0]" in qm_out
        assert "values_received[0]" in espresso_out

    def test_synthesize_unknown_exchange_fails(self, capsys):
        code = main(
            ["synthesize", "--exchange", "bogus", "--agents", "2", "--faulty", "1"]
        )
        assert code == 2

    def test_check_command_reports_result(self, capsys):
        code = main(
            [
                "check",
                "--exchange",
                "floodset",
                "--agents",
                "3",
                "--faulty",
                "2",
                "--timeout",
                "120",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "optimal" in captured.out
        assert "False" in captured.out  # the standard protocol is not optimal

    def test_table_command_small_grid(self, capsys):
        code = main(["table1", "--max-n", "2", "--timeout", "60", "--quiet"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Table 1" in captured.out
        assert "floodset-synth" in captured.out

    def test_synthesize_eba_defaults_to_sending_omissions(self, capsys):
        # Table 3's EBA experiments and the task defaults use sending
        # omissions; the CLI must agree when --failures is not given.
        code = main(["synthesize", "--exchange", "emin", "--agents", "2",
                     "--faulty", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "sending failures" in captured.out

    def test_synthesize_sba_defaults_to_crash(self, capsys):
        code = main(["synthesize", "--exchange", "floodset", "--agents", "2",
                     "--faulty", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "crash failures" in captured.out

    def test_check_eba_defaults_to_sending_omissions(self, capsys):
        code = main(["check", "--exchange", "emin", "--agents", "2",
                     "--faulty", "1", "--timeout", "120"])
        captured = capsys.readouterr()
        assert code == 0
        assert "failures: sending" in captured.out

    def test_table_command_with_output_and_report(self, capsys, tmp_path):
        results = tmp_path / "t1.jsonl"
        code = main(["table1", "--max-n", "2", "--timeout", "60", "--quiet",
                     "--workers", "2", "--output", str(results)])
        table_out = capsys.readouterr().out
        assert code == 0
        assert results.exists()

        code = main(["report", str(results)])
        report_out = capsys.readouterr().out
        assert code == 0
        assert report_out.strip() == table_out.strip()

        code = main(["report", str(results), "--format", "csv"])
        csv_out = capsys.readouterr().out
        assert code == 0
        assert csv_out.splitlines()[0] == (
            "n,t,floodset-mc,floodset-mc build_s,floodset-mc check_s,"
            "floodset-synth,floodset-synth build_s,floodset-synth check_s,"
            "count-mc,count-mc build_s,count-mc check_s,"
            "count-synth,count-synth build_s,count-synth check_s"
        )

        code = main(["report", str(results), "--format", "json"])
        json_out = capsys.readouterr().out
        assert code == 0
        assert '"table": "table1"' in json_out

    def test_engine_threads_into_journal_and_report(self, capsys, tmp_path):
        """--engine lands in the spec record, every cell key, and the report."""
        import json

        results = tmp_path / "t3.jsonl"
        code = main(["table3", "--max-n", "2", "--timeout", "60", "--quiet",
                     "--engine", "symbolic", "--output", str(results)])
        capsys.readouterr()
        assert code == 0
        records = [json.loads(line) for line in results.read_text().splitlines()]
        spec_records = [r for r in records if r["kind"] == "spec"]
        assert spec_records and all(r["engine"] == "symbolic" for r in spec_records)
        outcome_records = [r for r in records if r["kind"] == "outcome"]
        assert outcome_records
        for record in outcome_records:
            assert record["params"]["engine"] == "symbolic"
            assert '"engine":"symbolic"' in record["key"]

        code = main(["report", str(results), "--format", "json"])
        report_out = capsys.readouterr().out
        assert code == 0
        assert '"engine": "symbolic"' in report_out

    def test_check_command_runs_under_symbolic_engine(self, capsys):
        code = main(["check", "--exchange", "floodset", "--agents", "2",
                     "--faulty", "1", "--engine", "symbolic", "--timeout", "120"])
        captured = capsys.readouterr()
        assert code == 0
        assert "engine: symbolic" in captured.out

    def test_resume_requires_output(self, capsys):
        code = main(["table1", "--max-n", "2", "--resume", "--quiet"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--output" in captured.err

    def test_report_missing_file_fails(self, capsys):
        code = main(["report", "/nonexistent/results.jsonl"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no results file" in captured.err

    def test_corrupt_journal_exits_cleanly(self, capsys, tmp_path):
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('not json\n{"also": "not a record"}\n')
        code = main(["report", str(corrupt)])
        assert code == 2
        assert "corrupt" in capsys.readouterr().err
        code = main(["table1", "--max-n", "2", "--quiet",
                     "--output", str(corrupt)])
        assert code == 2
        assert "corrupt" in capsys.readouterr().err


class TestServeParser:
    def test_serve_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.cache_size == 64
        assert args.quiet is False

    def test_serve_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000",
             "--cache-size", "8", "--quiet"]
        )
        assert (args.host, args.port, args.cache_size, args.quiet) == \
            ("0.0.0.0", 9000, 8, True)

    def test_serve_rejects_a_nonpositive_cache(self, capsys):
        code = main(["serve", "--cache-size", "0"])
        assert code == 2
        assert "--cache-size" in capsys.readouterr().err

    def test_serve_worker_and_store_bound_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--workers", "4", "--store", "/tmp/store",
             "--store-max-bytes", "1048576", "--store-max-entries", "500"]
        )
        assert args.workers == 4
        assert args.store == "/tmp/store"
        assert args.store_max_bytes == 1048576
        assert args.store_max_entries == 500

    def test_serve_defaults_to_one_worker_and_unbounded_store(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 1
        assert args.store_max_bytes is None
        assert args.store_max_entries is None

    def test_serve_rejects_nonpositive_workers(self, capsys):
        code = main(["serve", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_store_bounds_require_a_store(self, capsys):
        code = main(["serve", "--store-max-bytes", "1024"])
        assert code == 2
        assert "--store" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_store_bounds(self, capsys):
        code = main(["serve", "--store", "/tmp/store",
                     "--store-max-entries", "0"])
        assert code == 2
        assert "--store-max-entries" in capsys.readouterr().err


class TestStoreCommand:
    @staticmethod
    def _populated_store(tmp_path):
        from repro.api import ArtefactStore, Scenario
        from repro.api.results import CheckResult

        store = ArtefactStore(tmp_path / "store")
        result = CheckResult(
            task="sba-model-check", engine="bitset", exchange="floodset",
            failures="crash", num_agents=2, max_faulty=1, states=7,
            spec={"validity": True},
        )
        for agents in (2, 3, 4):
            scenario = Scenario(exchange="floodset", num_agents=agents,
                                max_faulty=1)
            store.put_result("check", scenario.canonical_json(),
                             result.to_json())
        return store

    def test_store_stats_prints_disk_usage(self, capsys, tmp_path):
        self._populated_store(tmp_path)
        code = main(["store", "stats", str(tmp_path / "store")])
        assert code == 0
        import json

        stats = json.loads(capsys.readouterr().out)
        assert stats["total"]["entries"] == 3
        assert stats["total"]["bytes"] > 0

    def test_store_compact_trims_to_the_bound(self, capsys, tmp_path):
        self._populated_store(tmp_path)
        code = main(["store", "compact", str(tmp_path / "store"),
                     "--max-entries", "1"])
        assert code == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["kept"] == 1
        assert summary["removed"] == 2

    def test_store_compact_requires_a_bound(self, capsys, tmp_path):
        self._populated_store(tmp_path)
        code = main(["store", "compact", str(tmp_path / "store")])
        assert code == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_store_commands_reject_a_missing_directory(self, capsys, tmp_path):
        code = main(["store", "stats", str(tmp_path / "nope")])
        assert code == 2
        assert "no store directory" in capsys.readouterr().err

    def test_store_compact_rejects_a_nonpositive_bound(self, capsys, tmp_path):
        self._populated_store(tmp_path)
        code = main(["store", "compact", str(tmp_path / "store"),
                     "--max-bytes", "0"])
        assert code == 2
        assert "--max-bytes" in capsys.readouterr().err


class TestSharedComputePlaneFlags:
    def test_share_spaces_defaults_on_with_an_off_switch(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).share_spaces is True
        assert parser.parse_args(
            ["table1", "--share-spaces"]).share_spaces is True
        assert parser.parse_args(
            ["table2", "--no-share-spaces"]).share_spaces is False

    def test_serve_accepts_a_preload_frontier(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--preload", "table1:max-n=4"])
        assert args.preload == "table1:max-n=4"
        assert parser.parse_args(["serve"]).preload is None

    def test_serve_rejects_a_bad_preload_spec_before_binding(self, capsys):
        code = main(["serve", "--preload", "table9"])
        assert code == 2
        captured = capsys.readouterr()
        assert "unknown preload frontier" in captured.err + captured.out

    def test_table_grid_runs_with_sharing_disabled(self, capsys):
        code = main(["table1", "--max-n", "2", "--timeout", "60", "--quiet",
                     "--no-share-spaces"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
