"""Unit tests for the BA model and the levelled state space."""

import pytest

from repro.api import Scenario, build_model
from repro.systems.actions import NOOP
from repro.systems.model import BAModel, GlobalState
from repro.systems.space import (
    LevelledSpace,
    SpaceBudgetExceeded,
    build_space,
    joint_actions_for_level,
    noop_rule,
)
from repro.exchanges import FloodSetExchange
from repro.failures import CrashFailures


@pytest.fixture
def small_model():
    return build_model(Scenario(exchange="floodset", num_agents=2, max_faulty=1))


class TestBAModel:
    def test_mismatched_parameters_are_rejected(self):
        exchange = FloodSetExchange(num_agents=3, num_values=2, max_faulty=1)
        with pytest.raises(ValueError):
            BAModel(exchange, CrashFailures(2, 1))
        with pytest.raises(ValueError):
            BAModel(exchange, CrashFailures(3, 2))

    def test_initial_states_cover_all_vote_assignments(self, small_model):
        states = list(small_model.initial_states())
        assert len(states) == 4  # 2 values ^ 2 agents, single crash env
        votes = {tuple(local.init for local in state.locals) for state in states}
        assert votes == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_initial_states_include_faulty_sets_for_omissions(self):
        model = build_model(
            Scenario(exchange="floodset", num_agents=2, max_faulty=1, failures="sending")
        )
        states = list(model.initial_states())
        envs = {state.env for state in states}
        assert envs == {frozenset(), frozenset({0}), frozenset({1})}

    def test_successors_without_failures_merge_all_values(self, small_model):
        state = next(
            s for s in small_model.initial_states()
            if tuple(local.init for local in s.locals) == (0, 1)
        )
        successors = list(small_model.successors(state, (NOOP, NOOP), 0))
        # At least one successor has both agents with the full seen set
        # (nobody crashed), and successors where one agent crashed exist too.
        full = [
            s for s in successors
            if all(local.seen == (True, True) for local in s.locals)
            and s.env == (False, False)
        ]
        assert full
        crashed_envs = {s.env for s in successors}
        assert (True, False) in crashed_envs and (False, True) in crashed_envs

    def test_decided_flag_is_set_centrally(self, small_model):
        state = list(small_model.initial_states())[0]
        successors = list(small_model.successors(state, (0, NOOP), 0))
        assert all(s.locals[0].decided and s.locals[0].decision == 0 for s in successors)
        assert all(not s.locals[1].decided for s in successors)

    def test_eval_atom_kinds(self, small_model):
        state = next(
            s for s in small_model.initial_states()
            if tuple(local.init for local in s.locals) == (0, 1)
        )
        assert small_model.eval_atom(state, 0, ("init", 0, 0))
        assert not small_model.eval_atom(state, 0, ("init", 0, 1))
        assert small_model.eval_atom(state, 0, ("exists", 1))
        assert not small_model.eval_atom(state, 0, ("decided", 0))
        assert not small_model.eval_atom(state, 0, ("decision", 0, 0))
        assert not small_model.eval_atom(state, 0, ("some_decided", 0))
        assert small_model.eval_atom(state, 0, ("nonfaulty", 0))
        assert small_model.eval_atom(state, 0, ("time", 0))
        assert not small_model.eval_atom(state, 0, ("time", 1))
        assert small_model.eval_atom(state, 0, ("obs", 0, "values_received[0]", True))
        assert small_model.eval_atom(
            state, 0, ("decides_now", 0, 1), joint_action=(1, NOOP)
        )

    def test_eval_atom_unknown_key_raises(self, small_model):
        state = list(small_model.initial_states())[0]
        with pytest.raises(KeyError):
            small_model.eval_atom(state, 0, ("mystery", 1))
        with pytest.raises(KeyError):
            small_model.eval_atom(state, 0, ("obs", 0, "unknown_feature", 1))

    def test_decides_now_requires_joint_action(self, small_model):
        state = list(small_model.initial_states())[0]
        with pytest.raises(ValueError):
            small_model.eval_atom(state, 0, ("decides_now", 0, 0))


class TestLevelledSpace:
    def test_build_space_has_expected_shape(self, small_model):
        space = build_space(small_model, None)
        assert space.horizon == small_model.default_horizon() == 3
        assert len(space.levels) == 4
        assert len(space.actions) == 4
        assert len(space.successors) == 3
        assert space.num_states() == sum(len(level) for level in space.levels)

    def test_states_are_deduplicated_within_levels(self, small_model):
        space = build_space(small_model, None)
        for level in space.levels:
            assert len(level) == len(set(level))

    def test_successor_indices_are_valid(self, small_model):
        space = build_space(small_model, None)
        for time, edges in enumerate(space.successors):
            for targets in edges:
                assert targets, "every state must have at least one successor"
                assert all(0 <= t < len(space.levels[time + 1]) for t in targets)

    def test_points_accessors(self, small_model):
        space = build_space(small_model, None)
        points = list(space.points())
        assert len(points) == space.num_points()
        point = points[0]
        assert isinstance(space.state_at(point), GlobalState)
        assert space.action_at(point) == (NOOP, NOOP)
        assert space.successors_of((space.horizon, 0)) == []

    def test_observation_groups_partition_each_level(self, small_model):
        space = build_space(small_model, None)
        for time in range(len(space.levels)):
            groups = space.observation_groups(time, 0)
            members = sorted(index for group in groups.values() for index in group)
            assert members == list(range(len(space.levels[time])))

    def test_extend_requires_actions(self, small_model):
        space = LevelledSpace.initial(small_model)
        with pytest.raises(ValueError):
            space.extend()

    def test_set_actions_validates_level_and_length(self, small_model):
        space = LevelledSpace.initial(small_model)
        with pytest.raises(ValueError):
            space.set_actions(1, [])
        with pytest.raises(ValueError):
            space.set_actions(0, [])

    def test_state_budget_is_enforced(self, small_model):
        with pytest.raises(SpaceBudgetExceeded):
            build_space(small_model, None, max_states=10)

    def test_joint_actions_respect_decided_and_crashed(self, small_model):
        space = LevelledSpace.initial(small_model)
        actions = joint_actions_for_level(space, 0, lambda agent, local, time: 1)
        assert all(action == (1, 1) for action in actions)
        # After everyone decides at time 0, nobody decides again at time 1.
        space.set_actions(0, actions)
        space.extend()
        next_actions = joint_actions_for_level(space, 1, lambda agent, local, time: 0)
        assert all(action == (NOOP, NOOP) for action in next_actions)

    def test_custom_horizon(self, small_model):
        space = build_space(small_model, None, horizon=1)
        assert len(space.levels) == 2

    def test_noop_rule(self):
        assert noop_rule(0, None, 0) is NOOP
