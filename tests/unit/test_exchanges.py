"""Unit tests for the information-exchange protocols."""

import pytest

from repro.exchanges import (
    CountFloodSetExchange,
    DiffFloodSetExchange,
    DworkMosesExchange,
    EBasicExchange,
    EMinExchange,
    FloodSetExchange,
    exchange_by_name,
)
from repro.exchanges.eba_min import just_decided_value
from repro.systems.actions import NOOP


class TestFloodSet:
    def setup_method(self):
        self.exchange = FloodSetExchange(num_agents=3, num_values=2, max_faulty=1)

    def test_initial_local_marks_own_value(self):
        local = self.exchange.initial_local(0, 1)
        assert local.init == 1
        assert local.seen == (False, True)
        assert not local.decided and local.decision is None

    def test_message_is_seen_array(self):
        local = self.exchange.initial_local(0, 0)
        assert self.exchange.message(0, local, NOOP, 0) == (True, False)

    def test_update_unions_received_sets(self):
        local = self.exchange.initial_local(0, 0)
        received = {0: (True, False), 1: (False, True)}
        updated = self.exchange.update(0, local, NOOP, received, 0)
        assert updated.seen == (True, True)

    def test_update_without_messages_keeps_state(self):
        local = self.exchange.initial_local(0, 0)
        updated = self.exchange.update(0, local, NOOP, {}, 0)
        assert updated.seen == local.seen

    def test_observation_and_features(self):
        local = self.exchange.initial_local(1, 1)
        assert self.exchange.observation(1, local) == ((False, True),)
        features = self.exchange.observation_features(1, local)
        assert features == {"values_received[0]": False, "values_received[1]": True}

    def test_default_horizon_is_t_plus_2(self):
        assert self.exchange.default_horizon() == 3


class TestCountAndDiff:
    def test_count_starts_at_n_and_tracks_received(self):
        exchange = CountFloodSetExchange(num_agents=4, num_values=2, max_faulty=2)
        local = exchange.initial_local(0, 0)
        assert local.count == 4
        updated = exchange.update(0, local, NOOP, {0: (True, False), 2: (False, True)}, 0)
        assert updated.count == 2
        assert updated.seen == (True, True)

    def test_count_observation_includes_count(self):
        exchange = CountFloodSetExchange(num_agents=3, num_values=2, max_faulty=1)
        local = exchange.initial_local(0, 1)
        assert exchange.observation(0, local) == ((False, True), 3)
        assert exchange.observation_features(0, local)["count"] == 3

    def test_diff_remembers_previous_count(self):
        exchange = DiffFloodSetExchange(num_agents=3, num_values=2, max_faulty=1)
        local = exchange.initial_local(0, 0)
        assert local.count == 3 and local.prev_count == 3
        first = exchange.update(0, local, NOOP, {0: (True, False), 1: (True, False)}, 0)
        assert first.count == 2 and first.prev_count == 3
        second = exchange.update(0, first, NOOP, {0: (True, False)}, 1)
        assert second.count == 1 and second.prev_count == 2

    def test_diff_features_expose_both_counts(self):
        exchange = DiffFloodSetExchange(num_agents=3, num_values=2, max_faulty=1)
        local = exchange.initial_local(0, 0)
        features = exchange.observation_features(0, local)
        assert features["count"] == 3 and features["prev_count"] == 3


class TestDworkMoses:
    def setup_method(self):
        self.exchange = DworkMosesExchange(num_agents=3, num_values=2, max_faulty=2)

    def test_requires_binary_values(self):
        with pytest.raises(ValueError):
            DworkMosesExchange(num_agents=3, num_values=3, max_faulty=1)

    def test_initial_exists0_tracks_vote(self):
        assert self.exchange.initial_local(0, 0).exists0
        assert not self.exchange.initial_local(0, 1).exists0

    def test_message_carries_newly_faulty_and_exists0(self):
        local = self.exchange.initial_local(0, 0)
        assert self.exchange.message(0, local, NOOP, 0) == (frozenset(), True)

    def test_silent_agents_are_detected_as_faulty(self):
        local = self.exchange.initial_local(0, 1)
        received = {
            0: (frozenset(), False),
            1: (frozenset(), False),
        }  # nothing from agent 2
        updated = self.exchange.update(0, local, NOOP, received, 0)
        assert updated.known_faulty == frozenset({2})
        assert updated.newly_faulty == frozenset({2})
        assert updated.waste == 0  # one failure in round 1: 1 - 1 = 0

    def test_reported_faults_are_merged(self):
        local = self.exchange.initial_local(0, 1)
        received = {
            0: (frozenset(), False),
            1: (frozenset({2}), False),
            2: (frozenset(), False),
        }
        updated = self.exchange.update(0, local, NOOP, received, 0)
        assert updated.known_faulty == frozenset({2})

    def test_exists0_propagates_through_messages(self):
        local = self.exchange.initial_local(0, 1)
        received = {0: (frozenset(), False), 1: (frozenset(), True), 2: (frozenset(), False)}
        updated = self.exchange.update(0, local, NOOP, received, 0)
        assert updated.exists0

    def test_waste_counts_failures_beyond_rounds(self):
        local = self.exchange.initial_local(0, 1)
        received = {0: (frozenset(), False)}  # two silent agents in round 1
        updated = self.exchange.update(0, local, NOOP, received, 0)
        assert updated.known_faulty == frozenset({1, 2})
        assert updated.waste == 1  # 2 failures known by end of round 1


class TestEBAExchanges:
    def test_emin_requires_binary_values(self):
        with pytest.raises(ValueError):
            EMinExchange(num_agents=2, num_values=3, max_faulty=1)

    def test_emin_sends_only_on_decision(self):
        exchange = EMinExchange(num_agents=3, num_values=2, max_faulty=1)
        local = exchange.initial_local(0, 1)
        assert exchange.message(0, local, NOOP, 0) is None
        assert exchange.message(0, local, 0, 0) == ("decide", 0)

    def test_emin_jd_prefers_zero(self):
        assert just_decided_value([("decide", 1), ("decide", 0)]) == 0
        assert just_decided_value([("decide", 1)]) == 1
        assert just_decided_value([]) is None

    def test_emin_update_sets_jd(self):
        exchange = EMinExchange(num_agents=3, num_values=2, max_faulty=1)
        local = exchange.initial_local(0, 1)
        updated = exchange.update(0, local, NOOP, {1: ("decide", 0)}, 0)
        assert updated.jd == 0
        cleared = exchange.update(0, updated, NOOP, {}, 1)
        assert cleared.jd is None

    def test_ebasic_messages_depend_on_init_and_action(self):
        exchange = EBasicExchange(num_agents=3, num_values=2, max_faulty=1)
        one = exchange.initial_local(0, 1)
        zero = exchange.initial_local(1, 0)
        assert exchange.message(0, one, NOOP, 0) == ("init", 1)
        assert exchange.message(1, zero, NOOP, 0) is None
        assert exchange.message(1, zero, 0, 0) == ("decide", 0)

    def test_ebasic_update_counts_init_one_messages(self):
        exchange = EBasicExchange(num_agents=4, num_values=2, max_faulty=1)
        local = exchange.initial_local(0, 1)
        received = {0: ("init", 1), 1: ("init", 1), 2: ("decide", 0)}
        updated = exchange.update(0, local, NOOP, received, 0)
        assert updated.num1 == 2
        assert updated.jd == 0


class TestRegistry:
    def test_exchange_by_name_builds_each_exchange(self):
        for name, cls in [
            ("floodset", FloodSetExchange),
            ("count", CountFloodSetExchange),
            ("diff", DiffFloodSetExchange),
            ("dwork-moses", DworkMosesExchange),
            ("emin", EMinExchange),
            ("ebasic", EBasicExchange),
        ]:
            assert isinstance(exchange_by_name(name, 3, 2, 1), cls)

    def test_unknown_exchange_raises(self):
        with pytest.raises(ValueError):
            exchange_by_name("full-information", 3, 2, 1)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            FloodSetExchange(num_agents=0, num_values=2, max_faulty=0)
        with pytest.raises(ValueError):
            FloodSetExchange(num_agents=3, num_values=0, max_faulty=1)
        with pytest.raises(ValueError):
            FloodSetExchange(num_agents=3, num_values=2, max_faulty=5)
