"""Unit tests for the observability package (repro.obs).

The registry, tracer, profiler and logging setup are stdlib-only and fully
deterministic, so these tests exercise them directly: metric math and
Prometheus text exposition, trace-id propagation and span emission,
profiler on/off semantics, and the byte-compatibility contract of the text
log format.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace


# ---------------------------------------------------------------------------
# metrics


def test_counter_and_gauge_math():
    registry = obs_metrics.MetricsRegistry()
    counter = registry.counter("hits_total", "hits")
    counter.inc()
    counter.inc(2, kind="space")
    gauge = registry.gauge("depth", "depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    snap = registry.snapshot()
    series = {tuple(sorted(s["labels"].items())): s["value"]
              for s in snap["hits_total"]["series"]}
    assert series[()] == 1
    assert series[(("kind", "space"),)] == 2
    assert snap["depth"]["series"][0]["value"] == 6


def test_histogram_buckets_are_cumulative_in_exposition():
    registry = obs_metrics.MetricsRegistry()
    hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    text = registry.exposition()
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="1"} 2' in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_count 3" in text
    assert "lat_sum 5.55" in text


def test_kind_mismatch_rejected():
    registry = obs_metrics.MetricsRegistry()
    registry.counter("x_total", "x")
    with pytest.raises(TypeError):
        registry.gauge("x_total", "x")


def test_reset_keeps_definitions_but_drops_series():
    registry = obs_metrics.MetricsRegistry()
    counter = registry.counter("x_total", "x")
    counter.inc(3)
    registry.reset()
    assert registry.snapshot()["x_total"]["series"] == []
    counter.inc()  # the same metric object keeps working after reset
    assert registry.snapshot()["x_total"]["series"][0]["value"] == 1


def test_render_exposition_adds_worker_label():
    registry = obs_metrics.MetricsRegistry()
    registry.counter("r_total", "r").inc(2, endpoint="/check")
    snapshot = registry.snapshot()
    text = obs_metrics.render_exposition(
        [("worker-0", snapshot), ("worker-1", snapshot)]
    )
    assert 'r_total{endpoint="/check",worker="worker-0"} 2' in text
    assert 'r_total{endpoint="/check",worker="worker-1"} 2' in text
    # HELP/TYPE headers appear once per metric, not once per worker.
    assert text.count("# TYPE r_total counter") == 1


def test_null_registry_is_inert():
    counter = obs_metrics.NULL.counter("x_total", "x")
    counter.inc(5, kind="anything")
    obs_metrics.NULL.histogram("h", "h").observe(1.0)
    assert obs_metrics.NULL.snapshot() == {}
    assert obs_metrics.NULL.exposition() == ""


def test_escaped_label_values():
    registry = obs_metrics.MetricsRegistry()
    registry.counter("e_total", "e").inc(path='a"b\\c\nd')
    text = registry.exposition()
    assert '{path="a\\"b\\\\c\\nd"}' in text


# ---------------------------------------------------------------------------
# trace


def test_trace_honours_wellformed_incoming_id():
    token, trace_id = obs_trace.begin("abc-123.X_z")
    try:
        assert trace_id == "abc-123.X_z"
        assert obs_trace.current_trace_id() == trace_id
    finally:
        obs_trace.end(token)
    assert obs_trace.current_trace_id() is None


@pytest.mark.parametrize("bad", ["", "spaces here", "x" * 65, 'inj"ect', None])
def test_trace_generates_id_for_missing_or_malformed(bad):
    token, trace_id = obs_trace.begin(bad)
    try:
        assert trace_id != bad
        assert len(trace_id) == 32  # uuid4 hex
    finally:
        obs_trace.end(token)


def test_spans_emit_nested_json_records():
    records = []

    class Capture(logging.Handler):
        def emit(self, record):
            records.append(json.loads(record.getMessage()))

    logger = logging.getLogger("repro.trace")
    handler = Capture(level=logging.DEBUG)
    previous = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    try:
        with obs_trace.request_trace("req-1") as trace_id:
            with obs_trace.span("outer"):
                with obs_trace.span("inner", cells=3):
                    pass
    finally:
        logger.removeHandler(handler)
        logger.setLevel(previous)
    assert trace_id == "req-1"
    inner, outer = records  # inner span closes (and logs) first
    assert inner["span"] == "inner" and inner["parent"] == "outer"
    # Field values are coerced to strings so arbitrary objects stay JSON-safe.
    assert inner["fields"] == {"cells": "3"}
    assert outer["span"] == "outer" and outer["parent"] is None
    assert all(r["trace_id"] == "req-1" for r in records)
    assert all(r["seconds"] >= 0 for r in records)


def test_span_is_noop_without_active_trace():
    logger = logging.getLogger("repro.trace")
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    try:
        with obs_trace.span("orphan"):
            pass
    finally:
        logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
    assert stream.getvalue() == ""


# ---------------------------------------------------------------------------
# profile


@pytest.fixture
def clean_profile():
    obs_profile.disable()
    yield
    obs_profile.disable()


def test_kernel_decorator_passthrough_when_off(clean_profile):
    @obs_profile.kernel("test.op")
    def op(x):
        return x * 2

    assert op(21) == 42
    assert obs_profile.summary() is None


def test_kernel_decorator_records_when_on(clean_profile):
    @obs_profile.kernel("test.op")
    def op(x):
        return x * 2

    obs_profile.enable()
    for value in range(5):
        op(value)
    summary = obs_profile.summary()
    stats = summary["kernels"]["test.op"]
    assert stats["calls"] == 5
    assert stats["total_seconds"] >= stats["max_seconds"] >= 0
    assert stats["median_seconds"] >= 0


def test_consume_summary_resets_but_stays_active(clean_profile):
    @obs_profile.kernel("test.op")
    def op():
        return None

    obs_profile.enable()
    op()
    first = obs_profile.consume_summary()
    assert first["kernels"]["test.op"]["calls"] == 1
    op()
    second = obs_profile.consume_summary()
    assert second["kernels"]["test.op"]["calls"] == 1


def test_maybe_enable_from_env(clean_profile, monkeypatch):
    monkeypatch.setenv(obs_profile.ENV_VAR, "0")
    obs_profile.maybe_enable_from_env()
    assert not obs_profile.active()
    monkeypatch.setenv(obs_profile.ENV_VAR, "1")
    obs_profile.maybe_enable_from_env()
    assert obs_profile.active()


def test_render_table_is_aligned(clean_profile):
    summary = {
        "kernels": {
            "bdd.ite": {"calls": 10, "total_seconds": 0.5,
                        "median_seconds": 0.04, "max_seconds": 0.1},
        }
    }
    table = obs_profile.render_table(summary)
    lines = table.splitlines()
    assert lines[0].split() == ["kernel", "calls", "total_s", "median_s", "max_s"]
    assert "bdd.ite" in table and "0.500000" in table


# ---------------------------------------------------------------------------
# log


def test_log_setup_text_routes_info_to_stdout_and_warnings_to_stderr(capsys):
    obs_log.setup("text", logger_name="repro-obs-test")
    logger = logging.getLogger("repro-obs-test")
    logger.info("hello %s", "world")
    logger.warning("uh oh")
    captured = capsys.readouterr()
    assert captured.out == "hello world\n"  # bare message: byte-compatible
    assert captured.err == "uh oh\n"


def test_log_setup_json_emits_parseable_records(capsys):
    obs_log.setup("json", logger_name="repro-obs-test")
    logger = logging.getLogger("repro-obs-test")
    token, trace_id = obs_trace.begin(None)
    try:
        logger.info("listening on %s", "port 1")
    finally:
        obs_trace.end(token)
    record = json.loads(capsys.readouterr().out)
    assert record["message"] == "listening on port 1"
    assert record["level"] == "info"
    assert record["trace_id"] == trace_id
    assert "ts" in record


def test_log_setup_is_idempotent(capsys):
    obs_log.setup("text", logger_name="repro-obs-test")
    obs_log.setup("text", logger_name="repro-obs-test")
    logging.getLogger("repro-obs-test").info("once")
    assert capsys.readouterr().out == "once\n"


def test_log_setup_rejects_unknown_format():
    with pytest.raises(ValueError):
        obs_log.setup("xml", logger_name="repro-obs-test")


def test_active_format_tracks_setup():
    # The HTTP access log bypasses logging in text mode (byte-compatible
    # stock lines) and must be able to detect JSON mode to reroute.
    obs_log.setup("json", logger_name="repro-obs-test")
    assert obs_log.active_format() == "json"
    obs_log.setup("text", logger_name="repro-obs-test")
    assert obs_log.active_format() == "text"
