"""Unit tests for observation predicates and condition tables."""

import pytest

from repro.core.predicates import (
    ConditionTable,
    ObservationPredicate,
    build_predicate,
)


def _predicate(positive, reachable, features, agent=0, time=1):
    return build_predicate(agent, time, positive, reachable, features)


@pytest.fixture
def boolean_predicate():
    reachable = {(True,), (False,)}
    features = {(True,): {"seen": True}, (False,): {"seen": False}}
    return _predicate({(True,)}, reachable, features)


@pytest.fixture
def count_predicate():
    reachable = {(True, 1), (True, 2), (False, 2)}
    features = {
        (True, 1): {"seen": True, "count": 1},
        (True, 2): {"seen": True, "count": 2},
        (False, 2): {"seen": False, "count": 2},
    }
    return _predicate({(True, 1)}, reachable, features)


class TestObservationPredicate:
    def test_holds_and_reachability(self, boolean_predicate):
        assert boolean_predicate.holds((True,))
        assert not boolean_predicate.holds((False,))
        assert boolean_predicate.is_reachable((False,))
        assert not boolean_predicate.is_reachable((True, True))

    def test_always_true_and_false(self):
        reachable = {(1,), (2,)}
        features = {(1,): {"x": 1}, (2,): {"x": 2}}
        empty = _predicate(set(), reachable, features)
        full = _predicate(reachable, reachable, features)
        assert empty.always_false() and not empty.always_true()
        assert full.always_true() and not full.always_false()
        assert empty.describe() == "False"
        assert full.describe() == "True"

    def test_describe_boolean_feature(self, boolean_predicate):
        assert boolean_predicate.describe() == "seen"

    def test_describe_expands_non_boolean_features(self, count_predicate):
        # The integer-valued count feature is expanded into equality literals;
        # the predicate holds only at the count=1 observation, so the
        # minimised description must mention the count (either positively as
        # count=1 or negatively as ~count=2) and must not be constant.
        description = count_predicate.describe()
        assert description not in ("True", "False")
        assert "count=" in description

    def test_positive_must_be_reachable(self):
        with pytest.raises(ValueError):
            _predicate({(True,)}, {(False,)}, {(False,): {"seen": False}})

    def test_describe_backends_agree_semantically(self, count_predicate):
        # Forced backends may pick different covers but must classify every
        # reachable observation identically.
        for method in ("auto", "qm", "espresso"):
            names, cover = count_predicate.minimised_cover(method=method)
            for observation in count_predicate.reachable:
                features = count_predicate.features_of[observation]
                assignment = []
                for name in names:
                    if "=" in name:
                        feature, value = name.split("=")
                        assignment.append(str(features[feature]) == value)
                    else:
                        assignment.append(bool(features[name]))
                assert cover.evaluate(assignment) == count_predicate.holds(
                    observation
                ), method

    def test_describe_rejects_unknown_method(self, count_predicate):
        with pytest.raises(ValueError):
            count_predicate.describe(method="bogus")

    def test_describe_rejects_unknown_method_on_constant_predicates(self):
        # Constant predicates short-circuit before minimising; a typo'd
        # backend must still fail on them, not just on the non-constant ones.
        reachable = {(1,), (2,)}
        features = {(1,): {"x": 1}, (2,): {"x": 2}}
        for predicate in (
            _predicate(set(), reachable, features),
            _predicate(reachable, reachable, features),
        ):
            with pytest.raises(ValueError):
                predicate.describe(method="bogus")

    def test_minimised_cover_matches_positive_set(self, count_predicate):
        names, cover = count_predicate.minimised_cover()
        assert len(names) >= 2
        # Evaluate the cover on every reachable observation and compare.
        for observation in count_predicate.reachable:
            features = count_predicate.features_of[observation]
            assignment = []
            for name in names:
                if "=" in name:
                    feature, value = name.split("=")
                    assignment.append(str(features[feature]) == value)
                else:
                    assignment.append(bool(features[name]))
            assert cover.evaluate(assignment) == count_predicate.holds(observation)


class TestConditionTable:
    def _table(self):
        table = ConditionTable()
        reachable = {(True,), (False,)}
        features = {(True,): {"seen": True}, (False,): {"seen": False}}
        table.add(_predicate({(True,)}, reachable, features, agent=0, time=1), label=0)
        table.add(_predicate(set(), reachable, features, agent=0, time=0), label=0)
        table.add(_predicate({(True,)}, reachable, features, agent=1, time=1), label=0)
        return table

    def test_accessors(self):
        table = self._table()
        assert table.get(0, 1, 0) is not None
        assert table.get(0, 2, 0) is None
        assert table.labels() == [0]
        assert table.times() == [0, 1]
        assert table.agents() == [0, 1]

    def test_describe_lists_every_entry(self):
        description = self._table().describe()
        assert description.count("agent") == 3
        assert "seen" in description

    def test_check_hypothesis_confirmed(self):
        table = self._table()
        report = table.check_hypothesis(
            0, lambda agent, time, features: time >= 1 and features["seen"]
        )
        assert report.confirmed
        assert report.checked == 6
        assert "confirmed" in report.summary()

    def test_check_hypothesis_mismatch(self):
        table = self._table()
        report = table.check_hypothesis(0, lambda agent, time, features: True)
        assert not report.confirmed
        assert report.mismatches
        assert "mismatch" in report.summary()

    def test_check_hypothesis_ignores_other_labels(self):
        table = self._table()
        report = table.check_hypothesis(
            1, lambda agent, time, features: False
        )
        assert report.checked == 0
        assert report.confirmed
