"""Unit tests for the SBA/EBA specifications and the optimality order."""

import pytest

from repro.core.checker import ModelChecker
from repro.api import Scenario, build_model
from repro.protocols import (
    EMinProtocol,
    FloodSetRevisedProtocol,
    FloodSetStandardProtocol,
    FunctionProtocol,
    NeverDecide,
)
from repro.spec import (
    check_eba_run,
    check_sba_run,
    compare_protocols,
    eba_spec_formulas,
    never_later,
    sba_knowledge_condition,
    sba_spec_formulas,
    strictly_earlier_somewhere,
)
from repro.systems.runs import CrashAdversary, enumerate_crash_adversaries, simulate_run
from repro.systems.space import build_space


@pytest.fixture(scope="module")
def floodset_model():
    return build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=1))


class TestSBAFormulas:
    def test_spec_formula_names(self, floodset_model):
        formulas = sba_spec_formulas(floodset_model, horizon=3)
        assert set(formulas) == {
            "agreement",
            "uniform_agreement",
            "validity",
            "simultaneity",
            "termination",
        }

    def test_standard_protocol_satisfies_spec(self, floodset_model):
        space = build_space(floodset_model, FloodSetStandardProtocol(3, 1))
        checker = ModelChecker(space)
        for name, formula in sba_spec_formulas(floodset_model, space.horizon).items():
            assert checker.holds_initially(formula), name

    def test_never_decide_violates_termination_only(self, floodset_model):
        space = build_space(floodset_model, NeverDecide())
        checker = ModelChecker(space)
        formulas = sba_spec_formulas(floodset_model, space.horizon)
        assert checker.holds_initially(formulas["agreement"])
        assert checker.holds_initially(formulas["validity"])
        assert checker.holds_initially(formulas["simultaneity"])
        assert not checker.holds_initially(formulas["termination"])

    def test_premature_protocol_violates_agreement_or_simultaneity(self, floodset_model):
        # Deciding one's own value immediately cannot be an SBA protocol.
        rash = FunctionProtocol(lambda agent, local, time: local.init, name="rash")
        space = build_space(floodset_model, rash)
        checker = ModelChecker(space)
        formulas = sba_spec_formulas(floodset_model, space.horizon)
        assert not checker.holds_initially(formulas["agreement"])

    def test_knowledge_condition_shape(self):
        condition = sba_knowledge_condition(1, 0)
        assert condition.agent == 1
        assert condition.has_knowledge()


class TestSBARunChecks:
    def test_good_run_has_no_violations(self, floodset_model):
        protocol = FloodSetStandardProtocol(3, 1)
        run = simulate_run(floodset_model, protocol, (0, 1, 0), CrashAdversary())
        report = check_sba_run(run, floodset_model, floodset_model.default_horizon())
        assert report.ok

    def test_never_decide_run_fails_termination(self, floodset_model):
        run = simulate_run(floodset_model, NeverDecide(), (0, 1, 0), CrashAdversary())
        report = check_sba_run(run, floodset_model, floodset_model.default_horizon())
        assert not report.ok
        assert {violation.property_name for violation in report.violations} == {
            "termination"
        }

    def test_rash_protocol_fails_agreement_on_mixed_votes(self, floodset_model):
        rash = FunctionProtocol(lambda agent, local, time: local.init, name="rash")
        run = simulate_run(floodset_model, rash, (0, 1, 1), CrashAdversary())
        report = check_sba_run(run, floodset_model, floodset_model.default_horizon())
        names = {violation.property_name for violation in report.violations}
        assert "agreement" in names

    def test_exhaustive_small_instance_is_clean(self, floodset_model):
        protocol = FloodSetStandardProtocol(3, 1)
        horizon = floodset_model.default_horizon()
        for adversary in enumerate_crash_adversaries(3, 1, horizon):
            for votes in [(0, 0, 1), (1, 0, 1)]:
                run = simulate_run(floodset_model, protocol, votes, adversary, horizon)
                assert check_sba_run(run, floodset_model, horizon).ok


class TestEBASpec:
    def test_emin_satisfies_eba_spec(self):
        model = build_model(Scenario(exchange="emin", num_agents=2, max_faulty=1, failures="sending"))
        space = build_space(model, EMinProtocol(2, 1))
        checker = ModelChecker(space)
        for name, formula in eba_spec_formulas(model, space.horizon).items():
            assert checker.holds_initially(formula), name

    def test_eba_run_check_reports_agreement_violation(self):
        model = build_model(Scenario(exchange="emin", num_agents=2, max_faulty=1, failures="sending"))
        stubborn = FunctionProtocol(
            lambda agent, local, time: local.init, name="stubborn"
        )
        from repro.systems.runs import OmissionAdversary

        run = simulate_run(
            model, stubborn, (0, 1), OmissionAdversary(), model.default_horizon()
        )
        report = check_eba_run(run, model, model.default_horizon())
        assert not report.ok


class TestOptimalityOrder:
    def test_revised_floodset_dominates_standard(self):
        model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=2))
        revised = FloodSetRevisedProtocol(3, 2)
        standard = FloodSetStandardProtocol(3, 2)
        adversaries = list(
            enumerate_crash_adversaries(3, 2, model.default_horizon(), limit=200)
        )
        report = compare_protocols(model, revised, standard, adversaries)
        assert never_later(report)
        assert strictly_earlier_somewhere(report)
        assert not report.violations()

    def test_standard_does_not_dominate_revised(self):
        model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=2))
        revised = FloodSetRevisedProtocol(3, 2)
        standard = FloodSetStandardProtocol(3, 2)
        adversaries = list(
            enumerate_crash_adversaries(3, 2, model.default_horizon(), limit=200)
        )
        report = compare_protocols(model, standard, revised, adversaries)
        assert not never_later(report)
        assert report.violations(limit=3)

    def test_comparison_against_itself_is_reflexive(self):
        model = build_model(Scenario(exchange="floodset", num_agents=2, max_faulty=1))
        protocol = FloodSetStandardProtocol(2, 1)
        adversaries = enumerate_crash_adversaries(2, 1, model.default_horizon())
        report = compare_protocols(model, protocol, protocol, adversaries)
        assert never_later(report)
        assert not strictly_earlier_somewhere(report)
