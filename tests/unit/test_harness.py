"""Unit tests for the benchmark harness (runner and tables)."""

import pytest

from repro.harness.runner import CaseOutcome, run_case
from repro.harness.tables import (
    TableSpec,
    ablation_failure_models,
    ablation_temporal_only,
    render_table,
    run_table,
    table1_spec,
    table2_spec,
    table3_spec,
)


class TestRunCase:
    def test_in_process_execution_returns_result(self):
        outcome = run_case(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
            in_process=True,
        )
        assert outcome.ok
        assert outcome.result["n"] == 2
        assert outcome.seconds is not None and outcome.seconds > 0
        assert outcome.cell().startswith("0m")

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            run_case("not-a-task", {})

    def test_error_in_task_is_reported(self):
        outcome = run_case(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 5},
            in_process=True,
        )
        assert not outcome.ok
        assert outcome.error is not None
        assert outcome.cell() == "ERR"

    def test_subprocess_execution_and_timeout(self):
        quick = run_case(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
            timeout=60.0,
        )
        assert quick.ok and quick.result is not None

        slow = run_case(
            "sba-synthesis",
            {"exchange": "count", "num_agents": 5, "max_faulty": 5},
            timeout=0.2,
        )
        assert slow.timed_out
        assert slow.cell() == "TO"

    def test_state_budget_is_reported_as_timeout(self):
        outcome = run_case(
            "sba-synthesis",
            {
                "exchange": "floodset",
                "num_agents": 3,
                "max_faulty": 2,
                "max_states": 10,
            },
            timeout=30.0,
        )
        assert outcome.timed_out
        assert outcome.cell() == "TO"

    def test_cell_formatting(self):
        outcome = CaseOutcome(task="x", params={}, seconds=75.5, timed_out=False)
        assert outcome.cell() == "1m15.500"


class TestTableSpecs:
    def test_table1_spec_structure(self):
        spec = table1_spec(max_n=3)
        assert spec.name == "table1"
        row_keys = [key for key, _ in spec.rows]
        assert (2, 1) in row_keys and (3, 3) in row_keys
        assert (4, 1) not in row_keys
        assert spec.columns() == [
            "floodset-mc",
            "floodset-synth",
            "count-mc",
            "count-synth",
        ]

    def test_table1_without_count(self):
        spec = table1_spec(max_n=2, include_count=False)
        assert spec.columns() == ["floodset-mc", "floodset-synth"]

    def test_table2_spec_round_grid(self):
        spec = table2_spec(max_n=2)
        row_keys = [key for key, _ in spec.rows]
        assert (2, 1, 1) in row_keys and (2, 2, 3) in row_keys
        assert all(rounds <= t + 1 for (_, t, rounds) in row_keys)
        assert spec.columns() == ["diff-mc", "dwork-moses-mc"]

    def test_table3_spec_columns(self):
        spec = table3_spec(max_n=2)
        assert spec.columns() == [
            "emin-crash",
            "emin-sending",
            "ebasic-crash",
            "ebasic-sending",
        ]

    def test_ablation_specs(self):
        assert ablation_temporal_only(max_n=3).rows
        assert ablation_failure_models(max_n=2).rows


class TestRunAndRenderTable:
    def test_small_table_runs_and_renders(self):
        spec = TableSpec(
            name="mini",
            title="Mini table",
            row_header=("n", "t"),
            rows=[
                (
                    (2, 1),
                    [
                        (
                            "floodset-synth",
                            "sba-synthesis",
                            {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
                        )
                    ],
                )
            ],
        )
        result = run_table(spec, timeout=60.0, verbose=False)
        rendered = render_table(result)
        assert "Mini table" in rendered
        assert "floodset-synth" in rendered
        assert "TO" not in rendered

    def test_missing_cell_renders_dash(self):
        spec = table1_spec(max_n=2)
        from repro.harness.tables import TableResult

        empty = TableResult(spec=spec)
        rendered = render_table(empty)
        assert "-" in rendered
