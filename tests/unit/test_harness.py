"""Unit tests for the benchmark harness (runner and tables)."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.harness.runner import CaseOutcome, run_case
from repro.harness.tasks import TASKS
from repro.harness.tables import (
    TableSpec,
    ablation_failure_models,
    ablation_temporal_only,
    render_csv,
    render_json,
    render_table,
    run_table,
    table1_spec,
    table2_spec,
    table3_spec,
)

QUICK_CASE = {"exchange": "floodset", "num_agents": 2, "max_faulty": 1}


def _stubborn_sleep(seconds: float = 30.0, engine: str = "bitset") -> dict:
    """A task that ignores SIGTERM — only SIGKILL can stop it early.

    Accepts ``engine`` because the grid engine resolves the table's
    satisfaction engine into every cell's parameters.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(0.05)
    return {}


class TestRunCase:
    def test_in_process_execution_returns_result(self):
        outcome = run_case(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
            in_process=True,
        )
        assert outcome.ok
        assert outcome.result["n"] == 2
        assert outcome.seconds is not None and outcome.seconds > 0
        assert outcome.cell().startswith("0m")

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            run_case("not-a-task", {})

    def test_error_in_task_is_reported(self):
        outcome = run_case(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 5},
            in_process=True,
        )
        assert not outcome.ok
        assert outcome.error is not None
        assert outcome.cell() == "ERR"

    def test_subprocess_execution_and_timeout(self):
        quick = run_case(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
            timeout=60.0,
        )
        assert quick.ok and quick.result is not None

        slow = run_case(
            "sba-synthesis",
            {"exchange": "count", "num_agents": 5, "max_faulty": 5},
            timeout=0.2,
        )
        assert slow.timed_out
        assert slow.cell() == "TO"

    def test_state_budget_is_reported_as_timeout(self):
        outcome = run_case(
            "sba-synthesis",
            {
                "exchange": "floodset",
                "num_agents": 3,
                "max_faulty": 2,
                "max_states": 10,
            },
            timeout=30.0,
        )
        assert outcome.timed_out
        assert outcome.cell() == "TO"

    def test_cell_formatting(self):
        outcome = CaseOutcome(task="x", params={}, seconds=75.5, timed_out=False)
        assert outcome.cell() == "1m15.500"

    def test_cell_formatting_zero_pads_seconds(self):
        # The paper's MmSS.mmm rendering: seconds below ten keep two digits.
        cases = {5.123: "0m05.123", 0.007: "0m00.007", 61.05: "1m01.050",
                 600.0: "10m00.000"}
        for seconds, expected in cases.items():
            outcome = CaseOutcome(task="x", params={}, seconds=seconds,
                                  timed_out=False)
            assert outcome.cell() == expected, seconds


class TestInProcessWallClock:
    """Satellite: ``in_process=True`` must honour the wall-clock budget."""

    def test_in_process_timeout_is_enforced(self, monkeypatch):
        def _sleepy(seconds: float = 30.0, engine: str = "bitset") -> dict:
            time.sleep(seconds)
            return {}

        monkeypatch.setitem(TASKS, "sleepy", _sleepy)
        start = time.monotonic()
        outcome = run_case("sleepy", {"seconds": 30.0}, timeout=0.2,
                           in_process=True)
        assert outcome.timed_out
        assert outcome.cell() == "TO"
        assert time.monotonic() - start < 10.0

    def test_in_process_within_budget_is_untouched(self):
        outcome = run_case("sba-synthesis", dict(QUICK_CASE), timeout=60.0,
                           in_process=True)
        assert outcome.ok and not outcome.timed_out

    def test_off_main_thread_degrades_with_warning(self, monkeypatch):
        import threading
        import warnings

        def _nap(engine: str = "bitset") -> dict:
            time.sleep(0.3)
            return {}

        monkeypatch.setitem(TASKS, "nap", _nap)
        observed = {}

        def _run():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                observed["outcome"] = run_case(
                    "nap", {}, timeout=0.05, in_process=True)
                observed["warnings"] = [str(w.message) for w in caught]

        thread = threading.Thread(target=_run)
        thread.start()
        thread.join()
        # Signals only work on the main thread: the task runs to completion
        # and the degraded enforcement is called out loudly.
        assert observed["outcome"].ok
        assert any("not enforced" in msg for msg in observed["warnings"])


class TestTimingSplit:
    def test_in_process_outcome_carries_build_check_split(self):
        outcome = run_case("sba-model-check", dict(QUICK_CASE),
                           in_process=True)
        assert outcome.ok
        assert outcome.build_seconds is not None
        assert outcome.check_seconds is not None
        assert outcome.build_seconds + outcome.check_seconds \
            <= outcome.seconds + 0.05

    def test_forked_outcome_carries_build_check_split(self):
        outcome = run_case("sba-model-check", dict(QUICK_CASE), timeout=60.0)
        assert outcome.ok
        assert outcome.build_seconds is not None
        assert outcome.check_seconds is not None

    def test_failed_outcomes_have_no_split(self):
        outcome = run_case(
            "sba-synthesis",
            {"exchange": "floodset", "num_agents": 2, "max_faulty": 5},
            in_process=True,
        )
        assert not outcome.ok
        assert outcome.build_seconds is None
        assert outcome.check_seconds is None


class TestRunnerResourceHandling:
    @pytest.mark.skipif(
        not os.path.isdir("/proc/self/fd"), reason="needs /proc fd accounting"
    )
    def test_many_cases_do_not_leak_fds(self):
        # Warm up lazy multiprocessing machinery (resource tracker etc.)
        # before taking the baseline.
        run_case("sba-synthesis", QUICK_CASE, timeout=30.0)
        run_case("sba-synthesis", dict(QUICK_CASE, max_states=1), timeout=30.0)
        baseline = len(os.listdir("/proc/self/fd"))
        for _ in range(20):
            outcome = run_case("sba-synthesis", QUICK_CASE, timeout=30.0)
            assert outcome.ok
        # A timed-out cell must release its pipe and process too.
        slow = run_case(
            "sba-synthesis",
            {"exchange": "count", "num_agents": 5, "max_faulty": 5},
            timeout=0.2,
        )
        assert slow.timed_out
        # 21 leaky cells would show as ~40 extra fds; allow slack of two for
        # unrelated interpreter jitter.
        assert len(os.listdir("/proc/self/fd")) <= baseline + 2
        assert multiprocessing.active_children() == []

    def test_seconds_measured_in_child_not_at_harvest(self):
        # The scheduler may harvest long after the child exits (e.g. while
        # escalating a sibling's kill); the reported time must be the
        # child's own measurement, not the harvest delay.
        from repro.harness.runner import CaseHandle

        handle = CaseHandle("sba-synthesis", dict(QUICK_CASE), timeout=60.0)
        handle.join(30.0)
        time.sleep(1.0)  # simulate a busy scheduler
        outcome = handle.harvest()
        assert outcome.ok
        assert outcome.seconds < 0.9

    def test_timeout_escalates_to_kill_on_sigterm_ignoring_child(
        self, monkeypatch
    ):
        # The fork context lets the child inherit the patched registry.
        monkeypatch.setitem(TASKS, "stubborn-sleep", _stubborn_sleep)
        start = time.monotonic()
        outcome = run_case(
            "stubborn-sleep", {"seconds": 30.0}, timeout=0.2, term_grace=0.5
        )
        elapsed = time.monotonic() - start
        assert outcome.timed_out
        assert outcome.cell() == "TO"
        assert elapsed < 10.0, f"kill escalation took {elapsed:.1f}s"
        assert multiprocessing.active_children() == []


class TestTableSpecs:
    def test_table1_spec_structure(self):
        spec = table1_spec(max_n=3)
        assert spec.name == "table1"
        row_keys = [key for key, _ in spec.rows]
        assert (2, 1) in row_keys and (3, 3) in row_keys
        assert (4, 1) not in row_keys
        assert spec.columns() == [
            "floodset-mc",
            "floodset-synth",
            "count-mc",
            "count-synth",
        ]

    def test_table1_without_count(self):
        spec = table1_spec(max_n=2, include_count=False)
        assert spec.columns() == ["floodset-mc", "floodset-synth"]

    def test_table2_spec_round_grid(self):
        spec = table2_spec(max_n=2)
        row_keys = [key for key, _ in spec.rows]
        assert (2, 1, 1) in row_keys and (2, 2, 3) in row_keys
        assert all(rounds <= t + 1 for (_, t, rounds) in row_keys)
        assert spec.columns() == ["diff-mc", "dwork-moses-mc"]

    def test_table3_spec_columns(self):
        spec = table3_spec(max_n=2)
        assert spec.columns() == [
            "emin-crash",
            "emin-sending",
            "ebasic-crash",
            "ebasic-sending",
        ]

    def test_ablation_specs(self):
        assert ablation_temporal_only(max_n=3).rows
        assert ablation_failure_models(max_n=2).rows


class TestRunAndRenderTable:
    def test_small_table_runs_and_renders(self):
        spec = TableSpec(
            name="mini",
            title="Mini table",
            row_header=("n", "t"),
            rows=[
                (
                    (2, 1),
                    [
                        (
                            "floodset-synth",
                            "sba-synthesis",
                            {"exchange": "floodset", "num_agents": 2, "max_faulty": 1},
                        )
                    ],
                )
            ],
        )
        result = run_table(spec, timeout=60.0, verbose=False)
        rendered = render_table(result)
        assert "Mini table" in rendered
        assert "floodset-synth" in rendered
        assert "TO" not in rendered

    def test_missing_cell_renders_dash(self):
        spec = table1_spec(max_n=2)
        from repro.harness.tables import TableResult

        empty = TableResult(spec=spec)
        rendered = render_table(empty)
        assert "-" in rendered

    def test_structured_exporters(self):
        import json

        spec = table1_spec(max_n=2, include_count=False)
        result = run_table(spec, timeout=60.0, verbose=False)
        payload = json.loads(render_json(result))
        assert payload["table"] == "table1"
        assert payload["columns"] == ["floodset-mc", "floodset-synth"]
        assert all(
            cell["seconds"] is not None
            for row in payload["rows"]
            for cell in row["cells"].values()
        )
        csv_lines = render_csv(result).strip().splitlines()
        assert csv_lines[0] == (
            "n,t,floodset-mc,floodset-mc build_s,floodset-mc check_s,"
            "floodset-synth,floodset-synth build_s,floodset-synth check_s"
        )
        assert len(csv_lines) == 1 + len(spec.rows)


class TestParallelRunTable:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_table(table1_spec(max_n=2), workers=0)

    def test_parallel_matches_sequential_cell_for_cell(self):
        spec = table1_spec(max_n=2)
        sequential = run_table(spec, timeout=120.0, workers=1, verbose=False)
        parallel = run_table(spec, timeout=120.0, workers=4, verbose=False)
        assert set(sequential.outcomes) == set(parallel.outcomes)
        for key, seq_outcome in sequential.outcomes.items():
            par_outcome = parallel.outcomes[key]
            assert par_outcome.result == seq_outcome.result, key
            assert par_outcome.timed_out == seq_outcome.timed_out, key
            assert par_outcome.error == seq_outcome.error, key

    def test_parallel_timeout_cells_render_to(self, monkeypatch):
        monkeypatch.setitem(TASKS, "stubborn-sleep", _stubborn_sleep)
        spec = TableSpec(
            name="mini-to",
            title="Timeout mini table",
            row_header=("i",),
            rows=[
                ((i,), [("sleep", "stubborn-sleep", {"seconds": 30.0 + i})])
                for i in range(3)
            ],
        )
        start = time.monotonic()
        result = run_table(
            spec, timeout=0.2, max_states=None, workers=3, term_grace=0.5
        )
        elapsed = time.monotonic() - start
        assert [result.cell((i,), "sleep") for i in range(3)] == ["TO"] * 3
        assert elapsed < 15.0
        assert multiprocessing.active_children() == []
