"""Unit tests for the Quine-McCluskey minimiser and the backend front door."""

from itertools import product

import pytest

import repro.core.minimize as minimize_module
from repro.core.minimize import (
    ESPRESSO_VARIABLE_THRESHOLD,
    Cover,
    minimise,
    prime_implicants,
    truth_table_minimise,
)


def _brute_force_equivalent(cover: Cover, num_variables: int, on_set, dont_cares=()):
    """The cover must match the on-set exactly outside the don't-care set."""
    dont_cares = set(dont_cares)
    for index in range(2 ** num_variables):
        if index in dont_cares:
            continue
        assignment = [
            bool((index >> (num_variables - 1 - position)) & 1)
            for position in range(num_variables)
        ]
        expected = index in set(on_set)
        assert cover.evaluate(assignment) == expected, f"mismatch at {assignment}"


def test_minimise_empty_function_is_false():
    cover = minimise(3, [])
    assert cover.implicants == ()
    assert not cover.evaluate([True, True, True])
    assert cover.render(["a", "b", "c"]) == "False"


def test_minimise_tautology_collapses_to_single_term():
    cover = minimise(2, [0, 1, 2, 3])
    assert len(cover.implicants) == 1
    assert cover.implicants[0] == (None, None)
    assert cover.render(["a", "b"]) == "True"


def test_minimise_classic_example():
    # f(a,b,c,d) = sum of minterms 4,8,10,11,12,15 with DC 9,14 — a classic
    # Quine-McCluskey textbook exercise.
    on_set = [4, 8, 10, 11, 12, 15]
    dont_cares = [9, 14]
    cover = minimise(4, on_set, dont_cares)
    _brute_force_equivalent(cover, 4, on_set, dont_cares)
    # The minimal cover has at most 3 implicants for this function.
    assert len(cover.implicants) <= 3


def test_minimise_xor_cannot_be_reduced():
    on_set = [1, 2]  # a xor b
    cover = minimise(2, on_set)
    _brute_force_equivalent(cover, 2, on_set)
    assert len(cover.implicants) == 2


def test_minimise_single_variable_projection():
    # f(a, b) = a: minterms 2 and 3.
    cover = minimise(2, [2, 3])
    assert cover.implicants == ((True, None),)
    assert cover.render(["a", "b"]) == "a"


def test_prime_implicants_of_adjacent_minterms_merge():
    primes = prime_implicants(3, [0, 1])
    assert (False, False, None) in primes


def test_truth_table_minimise_uses_unspecified_rows_as_dont_cares():
    # Only three of the four rows are reachable; the unreachable row may be
    # classified arbitrarily, allowing a single-literal answer.
    table = {
        (True, True): True,
        (True, False): True,
        (False, False): False,
    }
    cover = truth_table_minimise(table)
    names = ["a", "b"]
    assert cover.render(names) == "a"


def test_truth_table_minimise_respects_reachable_only_flag():
    table = {
        (True, True): True,
        (True, False): True,
        (False, False): False,
    }
    cover = truth_table_minimise(table, reachable_only=False)
    # Without don't-cares the cover must not include the unreachable (F, T) row.
    assert not cover.evaluate([False, True])


def test_render_uses_negative_literals():
    # f(a, b) = ~a & b
    cover = minimise(2, [1])
    assert cover.render(["a", "b"]) == "~a & b"


def test_cover_evaluate_agrees_with_render_semantics():
    on_set = [1, 3, 5, 7]  # f = d (last variable) over 3 variables
    cover = minimise(3, on_set)
    for assignment in product([False, True], repeat=3):
        assert cover.evaluate(list(assignment)) == assignment[2]


# ---------------------------------------------------------------------------
# Cover edge cases
# ---------------------------------------------------------------------------


def test_empty_cover_is_constant_false():
    cover = Cover(num_variables=2, implicants=())
    assert not cover.evaluate([True, True])
    assert not cover.evaluate_index(3)
    assert cover.render(["a", "b"]) == "False"
    assert cover.literal_count() == 0


def test_tautology_cover_is_constant_true():
    cover = Cover(num_variables=2, implicants=((None, None),))
    for assignment in product([False, True], repeat=2):
        assert cover.evaluate(list(assignment))
    assert cover.render(["a", "b"]) == "True"
    assert cover.literal_count() == 0


def test_zero_variable_functions():
    assert minimise(0, [0]).implicants == ((),)
    assert minimise(0, []).implicants == ()
    assert Cover(0, ((),)).evaluate([]) is True
    assert Cover(0, ()).evaluate([]) is False
    assert Cover(0, ((),)).render([]) == "True"
    assert truth_table_minimise({(): True}).render([]) == "True"
    assert truth_table_minimise({(): False}).render([]) == "False"
    assert truth_table_minimise({}).implicants == ()


def test_render_orders_literals_by_variable_position():
    cover = Cover(num_variables=3, implicants=((False, None, True),))
    # Literals appear in names order regardless of polarity: ~a before c.
    assert cover.render(["a", "b", "c"]) == "~a & c"


def test_greedy_cover_no_progress_guard_terminates(monkeypatch):
    """A prime set that cannot cover the on-set must not loop forever.

    ``prime_implicants`` can never legitimately return such a set, but the
    greedy loop guards against it; simulate the impossible input and check
    ``minimise`` terminates with the partial cover instead of spinning.
    """

    def broken_primes(num_variables, minterms, dont_cares=()):
        return {(True, True)}  # covers minterm 3 only, never 0

    monkeypatch.setattr(minimize_module, "prime_implicants", broken_primes)
    cover = minimize_module.minimise(2, [0, 3])
    assert cover.implicants == ((True, True),)
    assert not cover.evaluate_index(0)


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


def _sparse_table(num_variables):
    def assignment(index):
        return tuple(
            bool((index >> (num_variables - 1 - position)) & 1)
            for position in range(num_variables)
        )

    return {assignment(0): False, assignment(1): True, assignment(3): True}


def test_truth_table_minimise_rejects_unknown_method():
    with pytest.raises(ValueError):
        truth_table_minimise(_sparse_table(2), method="exactly")


def test_explicit_methods_agree_on_specified_rows():
    table = _sparse_table(4)
    qm = truth_table_minimise(table, method="qm")
    es = truth_table_minimise(table, method="espresso")
    for assignment, value in table.items():
        assert qm.evaluate(assignment) == value
        assert es.evaluate(assignment) == value


def test_auto_switches_to_espresso_above_threshold():
    wide = _sparse_table(ESPRESSO_VARIABLE_THRESHOLD + 1)
    called = {}
    original = minimize_module.espresso_minimise

    def spy(*args, **kwargs):
        called["espresso"] = True
        return original(*args, **kwargs)

    minimize_module.espresso_minimise = spy
    try:
        cover = truth_table_minimise(wide)
    finally:
        minimize_module.espresso_minimise = original
    assert called.get("espresso")
    for assignment, value in wide.items():
        assert cover.evaluate(assignment) == value


def test_auto_uses_exact_backend_below_threshold():
    table = _sparse_table(3)
    auto = truth_table_minimise(table)
    qm = truth_table_minimise(table, method="qm")
    assert auto == qm
