"""Unit tests for the session's cache primitives.

:class:`WeightedLRU` and :class:`KeyedLocks` carry the concurrency story of
the serving stack, so their edge cases get explicit pins here; the
randomised cross-model battery lives in
``tests/property/test_session_cache.py``.
"""

import threading

import pytest

from repro.api import Scenario, Session
from repro.api.cache import KeyedLocks, WeightedLRU, estimate_weight


class TestWeightedLRU:
    def test_bounds_are_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            WeightedLRU(0, 100)
        with pytest.raises(ValueError, match="max_weight"):
            WeightedLRU(4, 0)

    def test_get_marks_most_recently_used(self):
        cache = WeightedLRU(2, 1000)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        assert cache.get("a") == 1
        evicted = cache.put("c", 3, 10)
        # "b" was least recently used once "a" was touched.
        assert [key for key, _ in evicted] == ["b"]
        assert cache.keys() == ["a", "c"]

    def test_eviction_by_total_weight(self):
        cache = WeightedLRU(10, 100)
        cache.put("small", "s", 10)
        cache.put("big", "b", 80)
        evicted = cache.put("huge", "h", 60)
        # Entry count is far under bound; weight forced both older entries out.
        assert [key for key, _ in evicted] == ["small", "big"]
        assert cache.total_weight == 60

    def test_replacing_an_entry_replaces_its_weight(self):
        cache = WeightedLRU(10, 100)
        cache.put("a", 1, 90)
        cache.put("a", 2, 10)
        assert cache.total_weight == 10
        assert cache.get("a") == 2

    def test_pinned_keys_are_never_evicted(self):
        cache = WeightedLRU(2, 1000)
        cache.put("pinned", 1, 10)
        cache.put("victim", 2, 10)
        evicted = cache.put("new", 3, 10, pinned={"pinned"})
        assert [key for key, _ in evicted] == ["victim"]
        assert "pinned" in cache

    def test_all_pinned_leaves_cache_over_budget(self):
        cache = WeightedLRU(1, 10)
        cache.put("a", 1, 10, pinned={"a"})
        evicted = cache.put("b", 2, 10, pinned={"a", "b"})
        assert evicted == []
        assert len(cache) == 2
        assert cache.total_weight == 20
        # Pressure resolves as soon as the pins lift.
        evicted = cache.put("c", 3, 10)
        assert {key for key, _ in evicted} == {"a", "b"}

    def test_pop_and_clear_keep_weight_accounting(self):
        cache = WeightedLRU(10, 1000)
        cache.put("a", 1, 30)
        cache.put("b", 2, 20)
        assert cache.pop("a") == 1
        assert cache.total_weight == 20
        cache.clear()
        assert cache.total_weight == 0 and len(cache) == 0

    def test_oversized_single_entry_is_kept(self):
        # An entry larger than the whole budget still caches (evicting it
        # immediately would thrash); it just evicts everything else.
        cache = WeightedLRU(10, 50)
        cache.put("a", 1, 10)
        cache.put("big", 2, 500)
        assert "big" in cache and "a" not in cache


class TestKeyedLocks:
    def test_entries_are_reference_counted_away(self):
        locks = KeyedLocks()
        with locks.holding("k"):
            assert locks.active_keys() == frozenset({"k"})
            assert len(locks) == 1
        assert len(locks) == 0
        assert locks.active_keys() == frozenset()

    def test_waiters_keep_the_key_active(self):
        locks = KeyedLocks()
        entered = threading.Event()
        release = threading.Event()
        observed = []

        def holder():
            with locks.holding("k"):
                entered.set()
                release.wait(timeout=10)

        def waiter():
            with locks.holding("k"):
                observed.append("ran")

        hold_thread = threading.Thread(target=holder)
        wait_thread = threading.Thread(target=waiter)
        hold_thread.start()
        assert entered.wait(timeout=10)
        wait_thread.start()
        # Both the holder and the queued waiter pin the key.
        for _ in range(100):
            if len(locks) == 1:
                break
        assert locks.active_keys() == frozenset({"k"})
        release.set()
        hold_thread.join(timeout=10)
        wait_thread.join(timeout=10)
        assert observed == ["ran"]
        assert len(locks) == 0

    def test_distinct_keys_do_not_block_each_other(self):
        locks = KeyedLocks()
        first_in = threading.Event()
        second_in = threading.Event()

        def hold(key, mine, other):
            with locks.holding(key):
                mine.set()
                assert other.wait(timeout=10), "peer never entered its lock"

        threads = [
            threading.Thread(target=hold, args=("a", first_in, second_in)),
            threading.Thread(target=hold, args=("b", second_in, first_in)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive()

    def test_exceptions_release_the_lock(self):
        locks = KeyedLocks()
        with pytest.raises(RuntimeError):
            with locks.holding("k"):
                raise RuntimeError("build failed")
        assert len(locks) == 0
        with locks.holding("k"):  # not deadlocked
            pass


class TestEstimateWeight:
    def test_spaces_outweigh_results(self):
        session = Session()
        scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        space = session.space(scenario)
        result = session.check(scenario)
        space_weight = estimate_weight(("space",), space)
        result_weight = estimate_weight(("result",), result)
        assert space_weight > 10 * result_weight
        # State-bearing artefacts scale with the state count.
        assert space_weight > space.num_states() * 100

    def test_synthesis_artifacts_carry_their_space(self):
        session = Session()
        scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        artifact = session.synthesis_artifact(scenario)
        weight = estimate_weight(("synthesis",), artifact)
        assert weight > artifact.space.num_states() * 100

    def test_result_weight_tracks_wire_size(self):
        from repro.api.results import CheckResult

        small = CheckResult(task="sba-model-check", engine="bitset",
                            exchange="floodset", failures="crash",
                            num_agents=2, max_faulty=1, states=1)
        big = CheckResult(task="sba-model-check", engine="bitset",
                          exchange="floodset", failures="crash",
                          num_agents=2, max_faulty=1, states=1,
                          spec={f"formula_{i}": True for i in range(100)})
        assert estimate_weight(("result",), big) > estimate_weight(("result",), small)

    def test_unknown_kinds_get_a_positive_default(self):
        assert estimate_weight(("mystery",), object()) > 0
