"""Unit tests for the compute plane: plan, guard and preloader."""

import threading
import warnings

import pytest

from repro.api.build import build_model, literature_protocol
from repro.api.scenario import Scenario
from repro.runtime.guard import WallClockExceeded, wall_clock_limit
from repro.runtime.plan import (
    SHARED_SPACE_TASKS,
    SpaceKey,
    build_space_artefacts,
    cell_space_plan,
    model_cache_key,
    space_cache_key,
    space_plan,
)
from repro.runtime.preload import Preloader, parse_frontier
from repro.systems.space import SpaceBudgetExceeded, build_space

FLOODSET_3_1 = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
FLOODSET_4_2 = Scenario(exchange="floodset", num_agents=4, max_faulty=2)


def _space_fingerprint(space):
    """Everything observable about a space's structure, per level."""
    return (
        space.horizon,
        [sorted(map(str, level)) for level in space.levels],
        [sorted(map(str, acts)) for acts in space.actions],
        [len(succ) for succ in space.successors],
    )


class TestKeys:
    def test_space_key_excludes_engine_and_horizon(self):
        bitset = Scenario(exchange="floodset", num_agents=3, max_faulty=1,
                          engine="bitset")
        symbolic = Scenario(exchange="floodset", num_agents=3, max_faulty=1,
                            engine="symbolic", rounds=2)
        assert SpaceKey.from_scenario(bitset) == SpaceKey.from_scenario(symbolic)

    def test_space_key_separates_configurations(self):
        assert SpaceKey.from_scenario(FLOODSET_3_1) != \
            SpaceKey.from_scenario(FLOODSET_4_2)
        other_failures = Scenario(exchange="floodset", num_agents=3,
                                  max_faulty=1, failures="sending")
        assert SpaceKey.from_scenario(FLOODSET_3_1) != \
            SpaceKey.from_scenario(other_failures)

    def test_cache_keys_reproduce_session_tuples(self):
        # The persisted cache keys must be byte-identical to the tuples the
        # pre-refactor Session built, or persistent stores silently go cold.
        scenario = FLOODSET_3_1
        assert model_cache_key(scenario) == (
            "model", "floodset", 3, 1, 2, "crash",
        )
        protocol = literature_protocol(scenario)
        assert space_cache_key(scenario, protocol.name, 3) == (
            "space", "floodset", 3, 1, 2, "crash",
            protocol.name, 3, None,
        )

    def test_cell_space_plan_only_for_shared_tasks(self):
        params = {"exchange": "floodset", "num_agents": 3, "max_faulty": 1}
        for task in SHARED_SPACE_TASKS:
            if task.startswith("sba"):
                assert cell_space_plan(task, params) is not None
        assert cell_space_plan("sba-synthesis", params) is None
        assert cell_space_plan("eba-synthesis", params) is None
        assert cell_space_plan("ad-hoc-task", {"seconds": 1}) is None
        # Malformed parameters: no plan rather than an exception.
        assert cell_space_plan("sba-model-check", {"bogus": True}) is None


class TestBuildSpaceArtefacts:
    def test_full_horizon_build_matches_build_space(self):
        scenario = FLOODSET_3_1
        artefacts = build_space_artefacts(scenario)
        model = build_model(scenario)
        protocol = literature_protocol(scenario)
        fresh = build_space(model, protocol, horizon=model.default_horizon())
        assert not artefacts.budget_exceeded
        assert _space_fingerprint(artefacts.space_for(artefacts.target_horizon)) \
            == _space_fingerprint(fresh)

    def test_prefix_equals_fresh_smaller_build(self):
        scenario = FLOODSET_4_2
        artefacts = build_space_artefacts(scenario)  # horizon 4
        model = build_model(scenario)
        protocol = literature_protocol(scenario)
        for horizon in range(artefacts.target_horizon + 1):
            serves = artefacts.space_for(horizon)
            fresh = build_space(model, protocol, horizon=horizon)
            assert _space_fingerprint(serves) == _space_fingerprint(fresh), horizon

    def test_prefix_shares_levels_but_not_caches(self):
        artefacts = build_space_artefacts(FLOODSET_4_2)
        prefix = artefacts.space_for(2)
        source = artefacts.space
        assert prefix is not source
        assert prefix.levels[1] is source.levels[1]  # shared by reference
        # Warming a formula-specific mask on the prefix must not leak into
        # the shared source space: the caches are fresh containers.
        prefix._cache("_atom_mask_cache")[(0, "sentinel")] = 1
        assert (0, "sentinel") not in getattr(source, "_atom_mask_cache", {})

    def test_masks_are_warm_after_build(self):
        artefacts = build_space_artefacts(FLOODSET_3_1)
        space = artefacts.space
        assert len(space._level_mask_cache) == artefacts.built_horizon + 1
        assert len(space._pred_mask_cache) == artefacts.built_horizon

    def test_budget_bust_keeps_within_budget_prefix(self):
        scenario = Scenario(exchange="floodset", num_agents=4, max_faulty=2,
                            max_states=200)
        artefacts = build_space_artefacts(scenario)
        assert artefacts.budget_exceeded
        assert 0 <= artefacts.built_horizon < artefacts.target_horizon
        # Levels within budget serve exactly what a fresh build would give.
        model = build_model(scenario)
        protocol = literature_protocol(scenario)
        for horizon in range(artefacts.built_horizon + 1):
            fresh = build_space(model, protocol, horizon=horizon,
                                max_states=scenario.max_states)
            assert _space_fingerprint(artefacts.space_for(horizon)) == \
                _space_fingerprint(fresh)
        # Levels beyond the bust raise exactly like a fresh build would.
        with pytest.raises(SpaceBudgetExceeded):
            artefacts.space_for(artefacts.target_horizon)

    def test_short_build_serves_none_beyond_horizon(self):
        artefacts = build_space_artefacts(FLOODSET_3_1, horizon=2)
        assert artefacts.space_for(3) is None  # caller builds fresh


class TestPreloader:
    def test_ensure_builds_once_and_serves_prefixes(self):
        preloader = Preloader()
        first = preloader.ensure(FLOODSET_4_2)
        again = preloader.ensure(FLOODSET_4_2)
        assert first is again
        smaller = Scenario(exchange="floodset", num_agents=4, max_faulty=2,
                           rounds=2)
        assert preloader.space_for(smaller, 2) is not None
        assert preloader.model_for(FLOODSET_4_2) is first.model

    def test_ensure_rebuilds_for_taller_horizon(self):
        preloader = Preloader()
        short = preloader.ensure(FLOODSET_4_2, horizon=2)
        tall = preloader.ensure(FLOODSET_4_2, horizon=4)
        assert tall is not short
        assert tall.target_horizon == 4

    def test_release_drops_artefacts_keeps_model(self):
        preloader = Preloader()
        artefacts = preloader.ensure(FLOODSET_3_1)
        preloader.release(artefacts.key)
        assert len(preloader) == 0
        assert preloader.space_for(FLOODSET_3_1, 3) is None
        assert preloader.model_for(FLOODSET_3_1) is artefacts.model

    def test_preload_cells_groups_and_skips_synthesis(self):
        cells = [
            ("sba-model-check", FLOODSET_3_1),
            ("sba-temporal-only", FLOODSET_3_1),
            ("sba-synthesis", FLOODSET_3_1),
            ("sba-model-check", FLOODSET_4_2),
        ]
        preloader = Preloader()
        summary = preloader.preload_cells(cells)
        assert summary["spaces"] == 2
        assert summary["skipped_cells"] == 1
        assert len(preloader) == 2


class TestParseFrontier:
    def test_known_names_resolve_to_cells(self):
        cells = parse_frontier("table1:max-n=2")
        assert cells
        assert all(isinstance(scenario, Scenario) for _, scenario in cells)
        tasks = {task for task, _ in cells}
        assert "sba-model-check" in tasks

    def test_options_are_applied(self):
        small = parse_frontier("table1:max-n=2")
        large = parse_frontier("table1:max-n=3")
        assert len(large) > len(small)
        symbolic = parse_frontier("table1:max-n=2,engine=symbolic")
        assert all(s.engine == "symbolic" for _, s in symbolic)

    def test_unknown_name_and_options_are_rejected(self):
        with pytest.raises(ValueError, match="unknown preload frontier"):
            parse_frontier("table9")
        with pytest.raises(ValueError, match="unknown preload option"):
            parse_frontier("table1:workers=2")
        with pytest.raises(ValueError, match="must be an integer"):
            parse_frontier("table1:max-n=lots")
        with pytest.raises(ValueError, match="malformed preload option"):
            parse_frontier("table1:max-n")


class TestWallClockLimit:
    def test_disabled_without_budget(self):
        with wall_clock_limit(None) as enforced:
            assert enforced is False
        with wall_clock_limit(0) as enforced:
            assert enforced is False

    def test_raises_when_budget_busted(self):
        import time

        with pytest.raises(WallClockExceeded):
            with wall_clock_limit(0.05, label="test block"):
                time.sleep(5.0)

    def test_no_raise_within_budget_and_timer_cancelled(self):
        import signal as signal_module
        import time

        with wall_clock_limit(5.0) as enforced:
            assert enforced is True
        # The timer must be cancelled on exit: nothing fires afterwards.
        assert signal_module.getitimer(signal_module.ITIMER_REAL) == (0.0, 0.0)
        time.sleep(0.01)

    def test_off_main_thread_degrades_with_warning(self):
        observed = {}

        def _run():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with wall_clock_limit(0.01, label="threaded block") as enforced:
                    observed["enforced"] = enforced
                observed["warnings"] = [str(w.message) for w in caught]

        thread = threading.Thread(target=_run)
        thread.start()
        thread.join()
        assert observed["enforced"] is False
        assert any("not enforced" in message for message in observed["warnings"])
