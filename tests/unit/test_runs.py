"""Unit tests for explicit adversaries and deterministic runs."""

import random

import pytest

from repro.api import Scenario, build_model
from repro.protocols.eba import EMinProtocol
from repro.protocols.sba import FloodSetStandardProtocol
from repro.systems.runs import (
    CrashAdversary,
    OmissionAdversary,
    enumerate_crash_adversaries,
    enumerate_omission_adversaries,
    sample_adversary,
    simulate_run,
)
from repro.failures import SendingOmissions


class TestCrashAdversary:
    def test_failure_free_adversary(self):
        adversary = CrashAdversary()
        assert not adversary.is_faulty(0)
        assert adversary.correct_agents(3) == (0, 1, 2)
        assert adversary.can_act(0, 5)
        assert adversary.delivered(1, 0, 1)
        assert adversary.nonfaulty_at(0, 10)

    def test_crash_round_semantics(self):
        adversary = CrashAdversary(crashes={1: (2, frozenset({0}))})
        assert adversary.is_faulty(1)
        assert adversary.correct_agents(3) == (0, 2)
        # Acting: agent 1 acts at times 0 and 1, not from time 2 on.
        assert adversary.can_act(1, 1)
        assert not adversary.can_act(1, 2)
        # Sending: normal before the crash round, subset during, nothing after.
        assert adversary.delivered(1, 1, 2)
        assert adversary.delivered(2, 1, 0)
        assert not adversary.delivered(2, 1, 2)
        assert not adversary.delivered(3, 1, 0)
        # Self delivery in the crash round always succeeds.
        assert adversary.delivered(2, 1, 1)
        # Nonfaulty set: still in N before the crash takes effect.
        assert adversary.nonfaulty_at(1, 1)
        assert not adversary.nonfaulty_at(1, 2)


class TestOmissionAdversary:
    def test_omissions_only_affect_listed_links(self):
        adversary = OmissionAdversary(
            faulty=frozenset({0}), omitted=frozenset({(1, 0, 1)})
        )
        assert adversary.is_faulty(0)
        assert not adversary.delivered(1, 0, 1)
        assert adversary.delivered(2, 0, 1)
        assert adversary.delivered(1, 0, 2)
        assert adversary.delivered(1, 0, 0)  # self delivery always succeeds
        assert adversary.can_act(0, 99)


class TestSimulateRun:
    def test_failure_free_floodset_run_decides_at_t_plus_one(self):
        model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=1))
        protocol = FloodSetStandardProtocol(3, 1)
        run = simulate_run(model, protocol, (0, 1, 1), CrashAdversary())
        assert all(run.decided(agent) for agent in range(3))
        assert all(run.decision_time(agent) == 2 for agent in range(3))
        assert all(run.decision_value(agent) == 0 for agent in range(3))

    def test_crashed_agent_stops_participating(self):
        model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=1))
        protocol = FloodSetStandardProtocol(3, 1)
        adversary = CrashAdversary(crashes={0: (1, frozenset())})
        run = simulate_run(model, protocol, (0, 1, 1), adversary)
        # Agent 0 crashes in round 1 delivering to nobody: its 0 never spreads.
        assert not run.decided(0)
        assert run.decision_value(1) == 1 and run.decision_value(2) == 1

    def test_emin_run_under_sending_omissions(self):
        model = build_model(Scenario(exchange="emin", num_agents=3, max_faulty=1, failures="sending"))
        protocol = EMinProtocol(3, 1)
        adversary = OmissionAdversary(faulty=frozenset({0}), omitted=frozenset())
        run = simulate_run(model, protocol, (0, 1, 1), adversary)
        # Agent 0 decides 0 immediately; its decision message reaches the others.
        assert run.decision_time(0) == 0 and run.decision_value(0) == 0
        assert run.decision_value(1) == 0 and run.decision_value(2) == 0

    def test_votes_length_is_validated(self):
        model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=1))
        with pytest.raises(ValueError):
            simulate_run(model, None, (0, 1), CrashAdversary())

    def test_run_records_actions_and_states(self):
        model = build_model(Scenario(exchange="floodset", num_agents=2, max_faulty=1))
        protocol = FloodSetStandardProtocol(2, 1)
        run = simulate_run(model, protocol, (1, 1), CrashAdversary())
        assert len(run.states) == model.default_horizon() + 1
        assert len(run.actions) == model.default_horizon() + 1
        assert run.votes == (1, 1)


class TestEnumerationAndSampling:
    def test_enumerate_crash_adversaries_counts(self):
        adversaries = list(enumerate_crash_adversaries(2, 1, horizon=2))
        # faulty set empty (1) + each single agent with 2 rounds x 2 subsets (4) = 9
        assert len(adversaries) == 1 + 2 * 4
        assert any(not a.crashes for a in adversaries)

    def test_enumerate_crash_adversaries_limit(self):
        adversaries = list(enumerate_crash_adversaries(3, 2, horizon=3, limit=10))
        assert len(adversaries) == 10

    def test_enumerate_omission_adversaries(self):
        failures = SendingOmissions(2, 1)
        adversaries = list(enumerate_omission_adversaries(failures, horizon=1))
        # no faulty (1) + one faulty agent (2) each with 1 candidate link -> 2 subsets
        assert len(adversaries) == 1 + 2 * 2
        assert all(len(a.faulty) <= 1 for a in adversaries)

    def test_sample_adversary_is_consistent_with_model(self):
        rng = random.Random(7)
        crash = build_model(Scenario(exchange="floodset", num_agents=4, max_faulty=2))
        for _ in range(20):
            adversary = sample_adversary(crash.failures, horizon=4, rng=rng)
            assert isinstance(adversary, CrashAdversary)
            assert len(adversary.crashes) <= 2
        omission = SendingOmissions(4, 2)
        for _ in range(20):
            adversary = sample_adversary(omission, horizon=4, rng=rng)
            assert isinstance(adversary, OmissionAdversary)
            assert len(adversary.faulty) <= 2
            for (_, sender, _) in adversary.omitted:
                assert sender in adversary.faulty
