"""Unit tests for the epistemic model checker."""

import pytest

from repro.core.checker import ModelChecker
from repro.api import Scenario, build_model
from repro.logic.atoms import (
    decided,
    decides_now,
    exists_value,
    init_is,
    nonfaulty,
    obs_feature,
    time_is,
)
from repro.logic.builders import big_and, big_or, common_belief_exists, implies, neg
from repro.logic.formula import (
    Always,
    Atom,
    Bottom,
    CommonBelief,
    EvAlways,
    EvEventually,
    EvNext,
    EveryoneBelieves,
    Eventually,
    Iff,
    Knows,
    KnowsNonfaulty,
    Next,
    Nu,
    Top,
    Var,
)
from repro.protocols.sba import FloodSetStandardProtocol
from repro.systems.space import build_space


@pytest.fixture(scope="module")
def space():
    """FloodSet n=2, t=1 under the standard protocol (fast, small)."""
    model = build_model(Scenario(exchange="floodset", num_agents=2, max_faulty=1))
    return build_space(model, FloodSetStandardProtocol(2, 1))


@pytest.fixture(scope="module")
def checker(space):
    return ModelChecker(space)


class TestPropositional:
    def test_top_and_bottom(self, checker, space):
        assert checker.holds_everywhere(Top())
        assert checker.counterexamples(Bottom())  # fails everywhere
        assert not checker.holds_initially(Bottom())

    def test_atom_evaluation(self, checker):
        # Exactly half of the four initial states have agent 0 voting 0.
        sat = checker.check(init_is(0, 0))
        assert len(sat[0]) == 2

    def test_negation_partitions_the_level(self, checker, space):
        positive = checker.check(init_is(0, 0))
        negative = checker.check(neg(init_is(0, 0)))
        for time in range(len(space.levels)):
            assert positive[time] | negative[time] == set(range(len(space.levels[time])))
            assert not positive[time] & negative[time]

    def test_conjunction_disjunction_implication(self, checker):
        both_zero = big_and([init_is(0, 0), init_is(1, 0)])
        some_zero = big_or([init_is(0, 0), init_is(1, 0)])
        assert len(checker.check(both_zero)[0]) == 1
        assert len(checker.check(some_zero)[0]) == 3
        assert checker.holds_everywhere(implies(both_zero, some_zero))

    def test_iff_reflexive(self, checker):
        formula = Iff(exists_value(0), exists_value(0))
        assert checker.holds_everywhere(formula)

    def test_exists_value_matches_disjunction_of_inits(self, checker, space):
        explicit = big_or([init_is(0, 1), init_is(1, 1)])
        assert checker.check(exists_value(1)) == checker.check(explicit)

    def test_time_atom(self, checker, space):
        sat = checker.check(time_is(1))
        for time in range(len(space.levels)):
            expected = set(range(len(space.levels[time]))) if time == 1 else set()
            assert sat[time] == expected

    def test_unbound_variable_raises(self, checker):
        with pytest.raises(ValueError):
            checker.check(Var("X"))

    def test_unknown_node_type_rejected(self, checker):
        class Strange(Atom):
            pass

        # Subclasses of known nodes still work; a totally foreign object fails.
        class NotAFormula:
            pass

        with pytest.raises((TypeError, AttributeError)):
            checker._eval_uncached(NotAFormula(), {})


class TestEpistemic:
    def test_knowledge_is_truthful(self, checker, space):
        # K_i(phi) => phi at every point (axiom T under any semantics).
        for formula in (exists_value(0), decided(0), nonfaulty(1)):
            knows = Knows(0, formula)
            sat_k = checker.check(knows)
            sat_phi = checker.check(formula)
            for time in range(len(space.levels)):
                assert sat_k[time] <= sat_phi[time]

    def test_agents_know_their_own_observations(self, checker, space):
        # If agent 0 has seen value 0 it knows it (the observation contains it).
        seen = obs_feature(0, "values_received[0]", True)
        assert checker.check(Knows(0, seen)) == checker.check(seen)

    def test_agents_do_not_know_others_initial_values_at_time_zero(self, checker):
        knows_other = Knows(0, init_is(1, 0))
        assert not checker.check(knows_other)[0]

    def test_belief_is_knowledge_relativised_to_nonfaulty(self, checker, space):
        phi = exists_value(0)
        belief = checker.check(KnowsNonfaulty(0, phi))
        explicit = checker.check(Knows(0, implies(nonfaulty(0), phi)))
        assert belief == explicit

    def test_everyone_believes_implies_individual_belief_for_nonfaulty(
        self, checker, space
    ):
        phi = exists_value(0)
        everyone = checker.check(EveryoneBelieves(phi))
        individual = checker.check(KnowsNonfaulty(0, phi))
        for time in range(len(space.levels)):
            for index in everyone[time]:
                if space.nonfaulty((time, index), 0):
                    assert index in individual[time]

    def test_common_belief_is_a_fixpoint_of_eb(self, checker, space):
        phi = exists_value(0)
        cb = CommonBelief(phi)
        unfolded = EveryoneBelieves(big_and([phi, cb]))
        assert checker.check(cb) == checker.check(unfolded)

    def test_common_belief_implies_everyone_believes(self, checker, space):
        phi = exists_value(0)
        cb = checker.check(CommonBelief(phi))
        eb = checker.check(EveryoneBelieves(phi))
        for time in range(len(space.levels)):
            assert cb[time] <= eb[time]

    def test_common_belief_matches_explicit_nu_formula(self, checker):
        phi = exists_value(0)
        explicit = Nu("X", EveryoneBelieves(big_and([phi, Var("X")])))
        assert checker.check(CommonBelief(phi)) == checker.check(explicit)

    def test_nu_of_identity_is_everything(self, checker, space):
        assert checker.check(Nu("X", Var("X"))) == [
            set(range(len(level))) for level in space.levels
        ]

    def test_satisfying_observations_for_decision_condition(self, checker, space):
        condition = common_belief_exists(0, 0)
        observations = checker.satisfying_observations(condition, 2, 0)
        # At time t+1 = 2 the condition is equivalent to having seen value 0.
        expected = {
            observation
            for observation in space.observation_groups(2, 0)
            if observation[0][0]
        }
        assert observations == expected


class TestTemporal:
    def test_ax_true_everywhere(self, checker):
        assert checker.holds_everywhere(Next(Top()))

    def test_ag_conjunction_of_levels(self, checker, space):
        # AG(exists_value(0) \/ exists_value(1)) holds: votes always exist.
        formula = Always(big_or([exists_value(0), exists_value(1)]))
        assert checker.holds_everywhere(formula)

    def test_ef_decided_holds_initially(self, checker):
        # Under the standard protocol somebody decides on every path.
        someone_decided = big_or([decided(0), decided(1)])
        assert checker.holds_initially(EvEventually(someone_decided))

    def test_af_vs_ef_and_ax_vs_ex(self, checker, space):
        someone_decided = big_or([decided(0), decided(1)])
        af = checker.check(Eventually(someone_decided))
        ef = checker.check(EvEventually(someone_decided))
        ax = checker.check(Next(someone_decided))
        ex = checker.check(EvNext(someone_decided))
        for time in range(len(space.levels)):
            assert af[time] <= ef[time]
            assert ax[time] <= ex[time]

    def test_eg_implies_ef(self, checker, space):
        phi = exists_value(0)
        eg = checker.check(EvAlways(phi))
        ef = checker.check(EvEventually(phi))
        for time in range(len(space.levels)):
            assert eg[time] <= ef[time]

    def test_final_level_is_absorbing(self, checker, space):
        # At the last level AX phi == phi (self loop).
        phi = decided(0)
        ax = checker.check(Next(phi))
        base = checker.check(phi)
        last = len(space.levels) - 1
        assert ax[last] == base[last]

    def test_nobody_decides_before_t_plus_one(self, checker, space):
        # Under the standard protocol, decides_now only at time t+1 = 2.
        someone_decides = big_or(
            [decides_now(0, v) for v in (0, 1)] + [decides_now(1, v) for v in (0, 1)]
        )
        sat = checker.check(someone_decides)
        assert not sat[0] and not sat[1]
        assert sat[2]

    def test_decided_is_monotone_along_paths(self, checker, space):
        # Once decided, always decided: AG(decided -> AG decided).
        formula = Always(implies(decided(0), Always(decided(0))))
        assert checker.holds_everywhere(formula)


class TestCaching:
    def test_check_results_are_cached_and_consistent(self, space):
        local_checker = ModelChecker(space)
        formula = CommonBelief(exists_value(0))
        first = local_checker.check(formula)
        second = local_checker.check(formula)
        assert first is second  # cached object

    def test_holds_at_specific_point(self, checker, space):
        assert checker.holds_at(Top(), (0, 0))
        assert not checker.holds_at(Bottom(), (0, 0))
