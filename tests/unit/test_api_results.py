"""Unit tests for the versioned result schema (satellite: round-trip + version)."""

import pytest

from repro.api import (
    SCHEMA_VERSION,
    CheckResult,
    SchemaVersionError,
    SynthesisResult,
    TableCell,
    result_from_json,
)

RESULTS = [
    CheckResult(
        task="sba-model-check", engine="bitset", exchange="floodset",
        failures="crash", num_agents=3, max_faulty=1, states=158,
        spec={"agreement": True, "validity": True}, rounds=3,
        protocol="floodset-standard", implementation_ok=False, optimal=False,
        sound=True, late_points=4,
    ),
    CheckResult(
        task="sba-temporal-only", engine="symbolic", exchange="diff",
        failures="crash", num_agents=4, max_faulty=2, states=99,
        spec={"termination": True},
    ),
    CheckResult(
        task="eba-model-check", engine="set", exchange="emin",
        failures="sending", num_agents=2, max_faulty=1, states=56,
        spec={"eba_agreement": True}, protocol="emin-literature",
    ),
    SynthesisResult(
        task="sba-synthesis", engine="bitset", exchange="count",
        failures="crash", num_agents=3, max_faulty=2, states=200,
        earliest_condition_time=1,
    ),
    SynthesisResult(
        task="eba-synthesis", engine="bitset", exchange="ebasic",
        failures="sending", num_agents=3, max_faulty=1, states=400,
        iterations=3, converged=True,
    ),
    TableCell(column="floodset-mc", cell="0m01.250", seconds=1.25,
              timed_out=False, result={"n": 3}),
    TableCell(column="count-synth", cell="TO", timed_out=True),
    TableCell(column="diff-mc", cell="ERR", error="boom"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("result", RESULTS, ids=lambda r: type(r).__name__)
    def test_to_json_from_json_round_trips(self, result):
        data = result.to_json()
        assert data["schema_version"] == SCHEMA_VERSION
        assert type(result).from_json(data) == result

    @pytest.mark.parametrize("result", RESULTS, ids=lambda r: type(r).__name__)
    def test_result_from_json_dispatches_on_the_type_tag(self, result):
        rebuilt = result_from_json(result.to_json())
        assert rebuilt == result
        assert type(rebuilt) is type(result)

    def test_json_payload_is_json_serialisable(self):
        import json

        for result in RESULTS:
            json.dumps(result.to_json())


class TestVersioning:
    def test_every_payload_carries_the_schema_version(self):
        for result in RESULTS:
            assert result.to_json()["schema_version"] == SCHEMA_VERSION

    @pytest.mark.parametrize("result", RESULTS, ids=lambda r: type(r).__name__)
    def test_missing_version_is_rejected(self, result):
        data = result.to_json()
        del data["schema_version"]
        with pytest.raises(SchemaVersionError, match="no 'schema_version'"):
            type(result).from_json(data)

    @pytest.mark.parametrize("version", [0, 2, "1", None])
    def test_unknown_version_is_rejected_with_a_clear_error(self, version):
        data = RESULTS[0].to_json()
        data["schema_version"] = version
        with pytest.raises(SchemaVersionError):
            CheckResult.from_json(data)

    def test_wrong_type_tag_is_rejected(self):
        data = RESULTS[0].to_json()
        data["type"] = "synthesis"
        with pytest.raises(ValueError, match="expected a 'check' result"):
            CheckResult.from_json(data)

    def test_unknown_type_tag_is_rejected_by_the_dispatcher(self):
        data = RESULTS[0].to_json()
        data["type"] = "surprise"
        with pytest.raises(ValueError, match="unknown result type"):
            result_from_json(data)


class TestLegacyPayloads:
    def test_sba_check_to_dict_matches_the_pre_redesign_shape(self):
        payload = RESULTS[0].to_dict()
        assert set(payload) == {
            "task", "engine", "exchange", "failures", "n", "t", "rounds",
            "protocol", "states", "spec", "implementation_ok", "optimal",
            "sound", "late_points",
        }
        assert payload["n"] == 3 and payload["t"] == 1

    def test_temporal_only_to_dict_has_no_protocol_fields(self):
        payload = RESULTS[1].to_dict()
        assert set(payload) == {"task", "engine", "exchange", "n", "t",
                                "states", "spec"}

    def test_eba_check_to_dict_matches_the_pre_redesign_shape(self):
        payload = RESULTS[2].to_dict()
        assert set(payload) == {"task", "engine", "exchange", "failures", "n",
                                "t", "protocol", "states", "spec"}

    def test_synthesis_to_dict_matches_the_pre_redesign_shapes(self):
        sba = RESULTS[3].to_dict()
        assert set(sba) == {"task", "engine", "exchange", "failures", "n", "t",
                            "states", "earliest_condition_time"}
        eba = RESULTS[4].to_dict()
        assert set(eba) == {"task", "engine", "exchange", "failures", "n", "t",
                            "states", "iterations", "converged"}

    def test_table_cell_from_outcome(self):
        from repro.harness.runner import CaseOutcome

        outcome = CaseOutcome(task="sba-synthesis", params={}, seconds=62.5,
                              timed_out=False, result={"states": 5})
        cell = TableCell.from_outcome("col", outcome)
        assert cell.cell == "1m02.500"
        assert cell.seconds == 62.5
        assert cell.result == {"states": 5}
