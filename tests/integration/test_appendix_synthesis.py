"""Integration test: the paper's appendix synthesis example (E9).

The appendix shows the MCK synthesis result for the FloodSet exchange with
``n = 3`` agents, ``t = 1`` failures and two values: there is no common
knowledge of either value at time 1, and at time 2 the decision condition for
value ``v`` is exactly ``values_received[v]``.
"""

from repro.core.checker import ModelChecker
from repro.kbp import verify_sba_implementation
from repro.logic.builders import AX_power, common_belief_exists, neg
from repro.spec.sba import sba_spec_formulas


class TestAppendixSynthesis:
    def test_no_common_knowledge_at_time_one(self, floodset_3_1_synthesis):
        result = floodset_3_1_synthesis
        for agent in range(3):
            for value in range(2):
                predicate = result.conditions.get(agent, 1, value)
                assert predicate.always_false()

    def test_conditions_at_time_zero_are_false(self, floodset_3_1_synthesis):
        for agent in range(3):
            for value in range(2):
                assert floodset_3_1_synthesis.conditions.get(agent, 0, value).always_false()

    def test_time_two_condition_is_values_received(self, floodset_3_1_synthesis):
        result = floodset_3_1_synthesis
        for agent in range(3):
            for value in range(2):
                predicate = result.conditions.get(agent, 2, value)
                for observation in predicate.reachable:
                    seen = predicate.features_of[observation][f"values_received[{value}]"]
                    assert predicate.holds(observation) == seen
                assert predicate.describe() == f"values_received[{value}]"

    def test_condition_is_symmetric_across_agents(self, floodset_3_1_synthesis):
        result = floodset_3_1_synthesis
        for value in range(2):
            descriptions = {
                result.conditions.get(agent, 2, value).describe() for agent in range(3)
            }
            assert len(descriptions) == 1

    def test_appendix_spec_formulas_hold_after_synthesis(self, floodset_3_1_synthesis):
        """The AX^1 / AX^2 epistemic checks from the appendix script."""
        checker = ModelChecker(floodset_3_1_synthesis.space)
        condition = common_belief_exists(0, 0)
        # "agent D0's knowledge test for deciding 0 never holds at time 1"
        assert checker.holds_initially(AX_power(1, neg(condition)))
        # At time 2 the knowledge test is equivalent to values_received[0].
        from repro.logic.atoms import obs_feature
        from repro.logic.formula import Iff

        equivalence = Iff(obs_feature(0, "values_received[0]", True), condition)
        assert checker.holds_initially(AX_power(2, equivalence))

    def test_synthesized_space_satisfies_sba_spec(self, floodset_3_1_synthesis):
        space = floodset_3_1_synthesis.space
        checker = ModelChecker(space)
        formulas = sba_spec_formulas(floodset_3_1_synthesis.model, space.horizon)
        for name, formula in formulas.items():
            assert checker.holds_initially(formula), name

    def test_synthesized_rule_is_an_implementation(self, floodset_3_1_synthesis):
        model = floodset_3_1_synthesis.model
        report = verify_sba_implementation(model, floodset_3_1_synthesis.rule)
        assert report.ok, report.summary()

    def test_synthesized_rule_decides_least_value(self, floodset_3_1_synthesis):
        result = floodset_3_1_synthesis
        table = result.rule.table[(0, 2)]
        both_seen = ((True, True),)
        assert table[both_seen] == 0
        only_one = ((False, True),)
        assert table[only_one] == 1
