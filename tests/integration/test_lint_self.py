"""Self-check: the shipped tree passes its own static analysis.

This is the tentpole's enforcement loop — ``repro lint`` runs inside
tier-1, so a PR that introduces an unsorted rendering iteration, an
unguarded attribute access, a thread-before-fork ordering, an fd leak,
or a serving-side lazy import fails ``pytest`` before it fails a
reviewer.  Findings must be fixed, pragma'd with a justification, or
baselined (with a justification) in ``lint-baseline.json``.
"""

import functools
import json
import time
from pathlib import Path

import repro
from repro.cli import main
from repro.devtools import Baseline, LintEngine, all_rules, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"
PACKAGE_ROOT = Path(repro.__file__).resolve().parent


@functools.lru_cache(maxsize=1)
def _run_suite():
    baseline = (
        Baseline.load(BASELINE_PATH) if BASELINE_PATH.is_file() else None
    )
    engine = LintEngine(all_rules(), baseline=baseline)
    return engine.run([PACKAGE_ROOT], rel_to=PACKAGE_ROOT.parent)


def test_shipped_tree_has_no_findings():
    started = time.monotonic()
    report = _run_suite()
    elapsed = time.monotonic() - started
    assert report.errors == [], render_text(report)
    assert report.findings == [], (
        "repro lint found non-baselined findings:\n" + render_text(report)
    )
    # The acceptance bar is <10s over src/repro; leave slack for slow CI.
    assert elapsed < 30.0, f"lint took {elapsed:.1f}s"


def test_suite_actually_covered_the_tree():
    report = _run_suite()
    assert report.files_scanned > 50
    assert report.rules == ("DET01", "FORK01", "IMP01", "LOCK01", "RES01")


def test_engine_never_crashes_on_any_shipped_file():
    """Property: parse → analyze → render → rehydrate for every file."""
    from repro.devtools import report_from_json

    engine = LintEngine(all_rules())
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        report = engine.run([path], rel_to=PACKAGE_ROOT.parent)
        crashes = [e for e in report.errors if "crashed" in e.message]
        assert crashes == [], f"{path}: {crashes}"
        from repro.devtools import render_json

        rebuilt = report_from_json(json.loads(render_json(report)))
        assert rebuilt.findings == report.findings


def test_cli_lint_exits_zero_on_shipped_tree(capsys):
    exit_code = main(["lint", "--baseline", str(BASELINE_PATH)])
    out = capsys.readouterr().out
    assert exit_code == 0, out
    assert "finding(s)" in out


def test_cli_lint_json_is_schema_versioned(capsys):
    exit_code = main(
        ["lint", "--baseline", str(BASELINE_PATH), "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["schema_version"] == 1
    assert payload["findings"] == []


def test_committed_baseline_is_loadable_and_justified():
    baseline = Baseline.load(BASELINE_PATH)
    for entry in baseline.entries:
        assert entry.justification.strip()
