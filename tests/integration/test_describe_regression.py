"""Regression pin for the ROADMAP describe() performance bug.

The seed's exact Quine–McCluskey path turned every unreachable assignment
into a don't-care, so ``ObservationPredicate.describe()`` on the E_basic
n=3/t=1 sending-omissions synthesis (10–11 feature variables, 7–13 reachable
rows) enumerated primes of a near-complete function: ~113 s for a *single*
condition, measured on the seed commit.  With the espresso backend selected
automatically above the variable threshold, the *entire* condition table
renders in well under a second.

The budget below is deliberately generous (10 s for every condition of every
agent) so the test is robust on slow CI machines while still failing loudly
if the exponential path ever silently returns — the bug was three orders of
magnitude over budget.
"""

from __future__ import annotations

import time

import pytest

from repro.core.cover import assignment_to_index, certify_cover
from repro.core.minimize import ESPRESSO_VARIABLE_THRESHOLD

#: Wall-clock budget for rendering the full condition table (seconds).
DESCRIBE_BUDGET_SECONDS = 10.0


@pytest.mark.perf_regression
def test_ebasic_sending_describe_completes_within_budget(ebasic_3_1_synthesis):
    """All E_basic n=3/t=1 sending-omissions conditions render in time."""
    conditions = ebasic_3_1_synthesis.conditions

    # The scenario must actually exercise the wide-alphabet path, otherwise
    # this regression test pins nothing.
    widths = [
        len(predicate._boolean_table()[0])
        for predicate in conditions.conditions.values()
    ]
    assert max(widths) > ESPRESSO_VARIABLE_THRESHOLD

    start = time.perf_counter()
    rendering = conditions.describe()
    elapsed = time.perf_counter() - start
    assert elapsed < DESCRIBE_BUDGET_SECONDS, (
        f"describe() took {elapsed:.1f}s (budget {DESCRIBE_BUDGET_SECONDS}s): "
        f"the ROADMAP minimisation blow-up is back"
    )
    assert rendering.count("agent") == len(conditions.conditions)


@pytest.mark.perf_regression
def test_ebasic_sending_wide_covers_are_certified(ebasic_3_1_synthesis):
    """The fast covers are still exact on every reachable observation."""
    for predicate in ebasic_3_1_synthesis.conditions.conditions.values():
        names, cover = predicate.minimised_cover()
        table = predicate._boolean_table()[1]
        on_set = []
        off_set = []
        for assignment, value in table.items():
            (on_set if value else off_set).append(assignment_to_index(assignment))
        certificate = certify_cover(cover, on_set, off_set)
        assert certificate.ok, (predicate.agent, predicate.time, certificate)
