"""Integration tests: Count-FloodSet and Diff results (E5 and E6).

Section 7.2: adding a count of the messages received in the last round gives
agents extra knowledge — ``count <= 1`` is an immediate early exit — while
``count <= 2`` does not suffice.  Section 7.3: additionally remembering the
previous count gives no stronger SBA condition.
"""

import pytest

from repro.analysis import (
    check_count_le_two_insufficient,
    check_diff_no_improvement,
    count_condition_hypothesis,
)
from repro.core.synthesis import synthesize_sba
from repro.api import Scenario, build_model
from repro.kbp import verify_sba_implementation
from repro.protocols import CountConditionProtocol, FloodSetStandardProtocol


class TestCountEarlyExit:
    def test_count_le_one_enables_decision_at_time_one(self, count_3_2_synthesis):
        predicate = count_3_2_synthesis.conditions.get(0, 1, 0)
        positives = {
            predicate.features_of[obs]["count"]
            for obs in predicate.positive
        }
        assert positives  # the condition holds somewhere at time 1
        assert positives <= {0, 1}  # ... and only where count <= 1

    def test_count_le_two_is_not_sufficient(self, count_3_2_synthesis):
        assert check_count_le_two_insufficient(count_3_2_synthesis)

    def test_condition_three_hypothesis_confirmed(self, count_3_2_synthesis):
        for value in range(2):
            hypothesis = count_condition_hypothesis(3, 2, value)
            report = count_3_2_synthesis.conditions.check_hypothesis(value, hypothesis)
            assert report.confirmed, report.summary()

    @pytest.mark.parametrize("num_agents,max_faulty", [(2, 1), (3, 1), (3, 2), (3, 3)])
    def test_condition_three_across_instances(self, num_agents, max_faulty):
        model = build_model(Scenario(exchange="count", num_agents=num_agents, max_faulty=max_faulty))
        result = synthesize_sba(model)
        for value in range(2):
            hypothesis = count_condition_hypothesis(num_agents, max_faulty, value)
            report = result.conditions.check_hypothesis(value, hypothesis)
            assert report.confirmed, (num_agents, max_faulty, report.summary())

    def test_count_protocol_is_an_optimal_implementation(self, count_3_2_model):
        report = verify_sba_implementation(count_3_2_model, CountConditionProtocol(3, 2))
        assert report.ok, report.summary()

    def test_plain_t_plus_one_rule_is_late_for_count_exchange(self, count_3_2_model):
        report = verify_sba_implementation(
            count_3_2_model, FloodSetStandardProtocol(3, 2)
        )
        assert report.is_sound
        assert not report.is_optimal


class TestDiffNoImprovement:
    @pytest.mark.parametrize("num_agents,max_faulty", [(2, 1), (2, 2), (3, 1), (3, 2)])
    def test_diff_condition_projects_onto_count_condition(self, num_agents, max_faulty):
        diff_model = build_model(Scenario(exchange="diff", num_agents=num_agents, max_faulty=max_faulty))
        count_model = build_model(
            Scenario(exchange="count", num_agents=num_agents, max_faulty=max_faulty)
        )
        diff_result = synthesize_sba(diff_model)
        count_result = synthesize_sba(count_model)
        assert check_diff_no_improvement(diff_result, count_result)

    def test_diff_early_exit_protocol_remains_optimal(self):
        model = build_model(Scenario(exchange="diff", num_agents=3, max_faulty=2))
        report = verify_sba_implementation(model, CountConditionProtocol(3, 2))
        assert report.ok, report.summary()
