"""Integration tests: EBA protocols and synthesis (E8).

Section 9 of the paper: the implementations of the knowledge-based program
``P0`` for the exchanges ``E_min`` and ``E_basic`` are correct EBA protocols
for the sending-omissions model (which subsumes crash failures), and the
``num1`` counter of ``E_basic`` enables earlier decisions on 1.
"""

import pytest

from repro.core.checker import ModelChecker
from repro.api import Scenario, build_model
from repro.kbp import verify_eba_implementation
from repro.protocols import EBasicProtocol, EMinProtocol
from repro.spec.eba import check_eba_run, eba_spec_formulas
from repro.spec.optimality import compare_protocols, never_later
from repro.systems.runs import (
    OmissionAdversary,
    enumerate_omission_adversaries,
    simulate_run,
)
from repro.systems.space import build_space


def _protocol_for(exchange: str, num_agents: int, max_faulty: int):
    if exchange == "emin":
        return EMinProtocol(num_agents, max_faulty)
    return EBasicProtocol(num_agents, max_faulty)


@pytest.mark.parametrize("exchange", ["emin", "ebasic"])
@pytest.mark.parametrize("failures", ["crash", "sending"])
@pytest.mark.parametrize("num_agents,max_faulty", [(2, 1), (3, 1), (3, 2)])
class TestLiteratureProtocolsSatisfyEBA:
    def test_spec_formulas_hold(self, exchange, failures, num_agents, max_faulty):
        model = build_model(
            Scenario(exchange=exchange, num_agents=num_agents, max_faulty=max_faulty, failures=failures)
        )
        protocol = _protocol_for(exchange, num_agents, max_faulty)
        space = build_space(model, protocol)
        checker = ModelChecker(space)
        for name, formula in eba_spec_formulas(model, space.horizon).items():
            assert checker.holds_initially(formula), (exchange, failures, name)

    def test_decisions_are_sound_for_p0(self, exchange, failures, num_agents, max_faulty):
        model = build_model(
            Scenario(exchange=exchange, num_agents=num_agents, max_faulty=max_faulty, failures=failures)
        )
        protocol = _protocol_for(exchange, num_agents, max_faulty)
        report = verify_eba_implementation(model, protocol)
        assert report.is_sound, report.summary()


class TestExactImplementationInstances:
    """For ``t < n - 1`` the literature rules coincide with the implementation."""

    @pytest.mark.parametrize("exchange", ["emin", "ebasic"])
    @pytest.mark.parametrize("failures", ["crash", "sending"])
    def test_n3_t1_is_exact(self, exchange, failures):
        model = build_model(Scenario(exchange=exchange, num_agents=3, max_faulty=1, failures=failures))
        protocol = _protocol_for(exchange, 3, 1)
        report = verify_eba_implementation(model, protocol)
        assert report.ok, report.summary()


class TestRunLevelBehaviour:
    def test_zero_propagates_through_decisions(self):
        model = build_model(Scenario(exchange="emin", num_agents=3, max_faulty=1, failures="sending"))
        protocol = EMinProtocol(3, 1)
        adversary = OmissionAdversary(faulty=frozenset(), omitted=frozenset())
        run = simulate_run(model, protocol, (1, 0, 1), adversary)
        assert run.decision_value(0) == 0
        assert run.decision_time(1) == 0  # the 0-holder decides immediately
        assert run.decision_time(0) == 1  # the others follow one round later

    def test_all_ones_ebasic_decides_earlier_than_emin(self):
        emin_model = build_model(Scenario(exchange="emin", num_agents=3, max_faulty=2, failures="sending"))
        ebasic_model = build_model(
            Scenario(exchange="ebasic", num_agents=3, max_faulty=2, failures="sending")
        )
        adversary = OmissionAdversary()
        emin_run = simulate_run(emin_model, EMinProtocol(3, 2), (1, 1, 1), adversary)
        ebasic_run = simulate_run(ebasic_model, EBasicProtocol(3, 2), (1, 1, 1), adversary)
        # E_min must wait for t+1 = 3; E_basic sees num1 = 3 > 3 - 1 at time 1.
        assert emin_run.decision_time(0) == 3
        assert ebasic_run.decision_time(0) == 1

    @pytest.mark.parametrize("exchange", ["emin", "ebasic"])
    def test_exhaustive_small_omission_runs_are_correct(self, exchange):
        model = build_model(Scenario(exchange=exchange, num_agents=2, max_faulty=1, failures="sending"))
        protocol = _protocol_for(exchange, 2, 1)
        horizon = model.default_horizon()
        adversaries = enumerate_omission_adversaries(
            model.failures, horizon, limit=2000
        )
        for adversary in adversaries:
            for votes in [(0, 0), (0, 1), (1, 0), (1, 1)]:
                run = simulate_run(model, protocol, votes, adversary, horizon)
                report = check_eba_run(run, model, horizon)
                assert report.ok, [v.detail for v in report.violations]


class TestEBASynthesis:
    def test_synthesis_converges(self, emin_3_1_synthesis):
        assert emin_3_1_synthesis.converged
        assert emin_3_1_synthesis.iterations <= 4

    def test_synthesized_space_satisfies_eba_spec(self, emin_3_1_synthesis):
        checker = ModelChecker(emin_3_1_synthesis.space)
        model = emin_3_1_synthesis.model
        formulas = eba_spec_formulas(model, emin_3_1_synthesis.space.horizon)
        # Termination is not part of P0 itself (it is guaranteed only through
        # the decide-1 clause); agreement and validity must hold.
        assert checker.holds_initially(formulas["agreement"])
        assert checker.holds_initially(formulas["validity"])

    def test_synthesized_rule_is_an_implementation(self, emin_3_1_synthesis):
        report = verify_eba_implementation(
            emin_3_1_synthesis.model, emin_3_1_synthesis.rule
        )
        assert report.ok, report.summary()

    def test_synthesized_rule_never_decides_later_than_literature(
        self, emin_3_1_model, emin_3_1_synthesis
    ):
        adversaries = enumerate_omission_adversaries(
            emin_3_1_model.failures, emin_3_1_model.default_horizon(), limit=500
        )
        report = compare_protocols(
            emin_3_1_model,
            emin_3_1_synthesis.rule,
            EMinProtocol(3, 1),
            adversaries,
        )
        assert never_later(report)

    def test_decide_zero_condition_matches_init_or_jd(self, emin_3_1_synthesis):
        conditions = emin_3_1_synthesis.conditions
        for time in range(1, emin_3_1_synthesis.space.horizon + 1):
            predicate = conditions.get(0, time, "decide0")
            for observation in predicate.reachable:
                init, decided, _, jd = observation
                if decided:
                    continue
                expected = init == 0 or jd == 0
                assert predicate.holds(observation) == expected, (time, observation)
