"""Integration tests: FloodSet earliest-decision results (E4, condition (2)).

Section 7.1 of the paper: the textbook stopping time ``t + 1`` is not the
earliest time at which ``B^N_i CB_N ∃v`` holds; when ``t >= n - 1`` the
condition already holds at time ``n - 1`` (the counterexample instance is
``n = 3, t = 2``), leading to the revised condition (2), which both model
checking and synthesis confirm.
"""

import pytest

from repro.analysis import (
    floodset_condition_hypothesis,
    naive_floodset_hypothesis,
)
from repro.analysis.earliest import (
    earliest_condition_renderings,
    earliest_decision_summary,
)
from repro.core.synthesis import synthesize_sba
from repro.api import Scenario, build_model
from repro.kbp import verify_sba_implementation
from repro.protocols import FloodSetRevisedProtocol, FloodSetStandardProtocol
from repro.protocols.sba import floodset_critical_time


class TestCounterexampleInstance:
    """The paper's ``n = 3, t = 2`` example."""

    def test_condition_holds_before_t_plus_one(self, floodset_3_2_synthesis):
        result = floodset_3_2_synthesis
        # At time n-1 = 2 < t+1 = 3 the condition is already available.
        predicate = result.conditions.get(0, 2, 0)
        assert not predicate.always_false()

    def test_naive_hypothesis_is_refuted(self, floodset_3_2_synthesis):
        hypothesis = naive_floodset_hypothesis(3, 2, value=0)
        report = floodset_3_2_synthesis.conditions.check_hypothesis(0, hypothesis)
        assert not report.confirmed

    def test_revised_condition_two_is_confirmed(self, floodset_3_2_synthesis):
        for value in range(2):
            hypothesis = floodset_condition_hypothesis(3, 2, value=value)
            report = floodset_3_2_synthesis.conditions.check_hypothesis(value, hypothesis)
            assert report.confirmed, report.summary()

    def test_standard_protocol_is_not_optimal(self, floodset_3_2_model):
        report = verify_sba_implementation(
            floodset_3_2_model, FloodSetStandardProtocol(3, 2)
        )
        assert report.is_sound
        assert not report.is_optimal
        assert report.late_mismatches()

    def test_revised_protocol_is_optimal(self, floodset_3_2_model):
        report = verify_sba_implementation(
            floodset_3_2_model, FloodSetRevisedProtocol(3, 2)
        )
        assert report.ok, report.summary()

    def test_earliest_summary_matches_critical_time(self, floodset_3_2_synthesis):
        summary = earliest_decision_summary(floodset_3_2_synthesis)
        assert summary.earliest_any == 2
        assert summary.earliest_general == 2

    def test_earliest_condition_renderings(self, floodset_3_2_synthesis):
        # At the critical time the condition (2) reduces to the seen-value
        # literal; both minimisation backends must present it that way.
        for method in ("auto", "qm", "espresso"):
            renderings = earliest_condition_renderings(
                floodset_3_2_synthesis, method=method
            )
            assert set(renderings) == {0, 1}
            for value, rendering in renderings.items():
                assert f"values_received[{value}]" in rendering, (method, rendering)


@pytest.mark.parametrize(
    "num_agents,max_faulty",
    [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3), (4, 1), (4, 2), (4, 3)],
)
class TestConditionTwoAcrossInstances:
    def test_condition_two_confirmed(self, num_agents, max_faulty):
        model = build_model(Scenario(exchange="floodset", num_agents=num_agents, max_faulty=max_faulty))
        result = synthesize_sba(model)
        for value in range(2):
            hypothesis = floodset_condition_hypothesis(num_agents, max_faulty, value)
            report = result.conditions.check_hypothesis(value, hypothesis)
            assert report.confirmed, (num_agents, max_faulty, report.summary())

    def test_standard_protocol_optimality_matches_theory(self, num_agents, max_faulty):
        """The ``t + 1`` rule is optimal exactly when ``t < n - 1``."""
        model = build_model(Scenario(exchange="floodset", num_agents=num_agents, max_faulty=max_faulty))
        protocol = FloodSetStandardProtocol(num_agents, max_faulty)
        report = verify_sba_implementation(model, protocol)
        assert report.is_sound
        critical = floodset_critical_time(num_agents, max_faulty)
        if critical == max_faulty + 1:
            assert report.is_optimal, report.summary()
        else:
            assert not report.is_optimal, report.summary()
