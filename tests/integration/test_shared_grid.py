"""Cross-fork isolation of the shared compute plane.

``run_table(share_spaces=True)`` builds each group's space once in the
scheduler process and forks it copy-on-write into every cell child.  The
acceptance bar for that optimisation is *exact* equivalence: cell for
cell, a shared grid must report the same results, timeouts and errors as
the per-cell-rebuild baseline, and a barrage of forked children warming
their inherited spaces must never write back into the parent's artefacts.
"""

from repro.api import Scenario, Session
from repro.harness.runner import run_case
from repro.harness.tables import (
    ablation_temporal_only,
    run_table,
    table3_spec,
)
from repro.runtime.preload import Preloader


def _assert_equivalent(shared, baseline):
    assert set(shared.outcomes) == set(baseline.outcomes)
    for key, base in baseline.outcomes.items():
        got = shared.outcomes[key]
        assert got.result == base.result, key
        assert got.timed_out == base.timed_out, key
        assert got.error == base.error, key


class TestSharedGridEquivalence:
    def test_shared_matches_unshared_sequentially(self):
        # ablation-temporal-only is all model-checking cells: every row
        # exercises the shared plane (two cells per floodset space).
        spec = ablation_temporal_only(max_n=3)
        shared = run_table(spec, timeout=120.0, workers=1, share_spaces=True,
                           verbose=False)
        baseline = run_table(spec, timeout=120.0, workers=1,
                             share_spaces=False, verbose=False)
        _assert_equivalent(shared, baseline)

    def test_shared_matches_under_worker_pool(self):
        spec = ablation_temporal_only(max_n=3)
        shared = run_table(spec, timeout=120.0, workers=2, share_spaces=True,
                           verbose=False)
        baseline = run_table(spec, timeout=120.0, workers=1,
                             share_spaces=False, verbose=False)
        _assert_equivalent(shared, baseline)

    def test_mixed_grid_with_synthesis_cells_is_safe(self):
        # table3 rows are synthesis-only cells: nothing is shareable, and
        # the scheduler must pass them through untouched.
        spec = table3_spec(max_n=2)
        shared = run_table(spec, timeout=120.0, workers=1, share_spaces=True,
                           verbose=False)
        baseline = run_table(spec, timeout=120.0, workers=1,
                             share_spaces=False, verbose=False)
        _assert_equivalent(shared, baseline)


class TestForkBarrageIsolation:
    def test_children_never_pollute_the_parent_artefacts(self):
        scenario = Scenario(exchange="floodset", num_agents=4, max_faulty=2)
        preloader = Preloader()
        artefacts = preloader.ensure(scenario)
        space = artefacts.space
        # Formula-specific atom masks stay lazy in the parent build and
        # must stay cold: children warm their own CoW copies.  The warmed
        # observation masks must not grow either.
        assert not space._cache("_atom_mask_cache")
        obs_before = dict(space._cache("_obs_mask_cache"))
        assert obs_before  # warmed by the parent build

        params = scenario.to_params()
        for task in ("sba-model-check", "sba-temporal-only"):
            for _ in range(3):
                outcome = run_case(task, dict(params), timeout=120.0,
                                   preloaded=preloader)
                fresh = run_case(task, dict(params), timeout=120.0)
                assert outcome.ok and fresh.ok, (task, outcome.error)
                assert outcome.result == fresh.result, task

        assert not space._cache("_atom_mask_cache")
        assert dict(space._cache("_obs_mask_cache")) == obs_before

    def test_in_process_preloaded_session_is_scoped_to_the_case(self):
        from repro.harness import tasks as task_registry

        scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
        preloader = Preloader()
        preloader.ensure(scenario)
        params = scenario.to_params()
        outcome = run_case("sba-model-check", dict(params), in_process=True,
                           preloaded=preloader)
        fresh = run_case("sba-model-check", dict(params), in_process=True)
        assert outcome.ok and fresh.ok
        assert outcome.result == fresh.result
        # The injected preloader must not outlive its case.
        assert task_registry._ACTIVE_PRELOADER is None

    def test_preloaded_first_query_skips_the_build(self):
        scenario = Scenario(exchange="floodset", num_agents=4, max_faulty=2)
        preloader = Preloader()
        preloader.ensure(scenario)
        warm = Session(preloaded=preloader)
        result = warm.check(scenario)
        assert result.spec_ok is not None
        assert warm.build_seconds() == 0.0
        assert warm.stats().preloaded == 2
