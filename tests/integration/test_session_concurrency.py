"""Concurrency battery for the striped, store-backed :class:`Session`.

The serving claims this suite pins:

* two *identical* cold requests coalesce onto exactly one artefact build;
* two *different* cold requests build concurrently (no global build lock);
* N-thread mixed cold/warm barrages finish without deadlock, duplicate
  builds or counter anomalies, even under heavy eviction pressure;
* an entry whose build another thread is waiting on is never evicted out
  from under the waiter;
* a second process pointed at a populated ``--store`` answers its first
  repeated query from the store tier without rebuilding.

The instrumentation seam is ``Session._invoke_build`` — the one method the
session runs outside its bookkeeping lock — so the tests count and delay
builds without touching the locking discipline they are probing.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from collections import Counter

import pytest

import repro
from repro.api import ArtefactStore, Scenario, Session

FLOODSET_2_1 = Scenario(exchange="floodset", num_agents=2, max_faulty=1)
FLOODSET_3_1 = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
FLOODSET_3_2 = Scenario(exchange="floodset", num_agents=3, max_faulty=2)
COUNT_3_1 = Scenario(exchange="count", num_agents=3, max_faulty=1)
EMIN_2_1 = Scenario(exchange="emin", num_agents=2, max_faulty=1)

#: src/ directory for subprocess PYTHONPATH (tests may run from anywhere).
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _subprocess_env():
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return env


class CountingSession(Session):
    """A session that counts builds per cache key (thread-safe)."""

    def __init__(self, *args, build_delay=0.0, delay_kinds=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.builds = Counter()
        self.builds_lock = threading.Lock()
        self.build_delay = build_delay
        self.delay_kinds = delay_kinds

    def _invoke_build(self, key, build):
        with self.builds_lock:
            self.builds[key] += 1
        if self.build_delay and (self.delay_kinds is None or key[0] in self.delay_kinds):
            time.sleep(self.build_delay)
        return super()._invoke_build(key, build)


def _run_threads(workers, timeout=120):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
        assert not thread.is_alive(), "worker thread deadlocked"


class TestCoalescing:
    def test_identical_cold_requests_build_every_artefact_once(self):
        session = CountingSession(build_delay=0.05)
        results = []
        errors = []

        def worker():
            try:
                results.append(session.check(FLOODSET_2_1))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        _run_threads([worker] * 8)
        assert not errors
        assert len(results) == 8
        assert all(result is results[0] for result in results)
        duplicates = {key: count for key, count in session.builds.items() if count > 1}
        assert duplicates == {}, f"duplicate builds under coalescing: {duplicates}"
        stats = session.stats()
        # Every thread past the builder either coalesced on the result key
        # or hit the fast path after the build landed.
        assert stats.misses == len(session.builds)
        assert stats.hits >= 7
        assert stats.coalesced + stats.hits >= 7

    def test_two_identical_cold_requests_coalesce_exactly_once(self):
        session = CountingSession(build_delay=0.2, delay_kinds=("result",))
        barrier = threading.Barrier(2)
        results = []

        def worker():
            barrier.wait(timeout=10)
            results.append(session.check(FLOODSET_2_1))

        _run_threads([worker] * 2)
        assert results[0] is results[1]
        assert session.builds[("result", "check", FLOODSET_2_1.canonical_json())] == 1
        assert session.stats().coalesced == 1

    def test_coalesced_waiter_survives_eviction_pressure(self):
        # While one thread builds (slowly) and another waits on the same
        # key, a third floods a tiny cache: the in-flight key is pinned, so
        # the waiter must read the builder's entry, never rebuild it.
        session = CountingSession(max_entries=2, build_delay=0.2,
                                  delay_kinds=("result",))
        started = threading.Event()
        results = []

        def builder():
            started.set()
            results.append(session.synthesize(FLOODSET_2_1))

        def waiter():
            started.wait(timeout=10)
            time.sleep(0.05)  # let the builder take the key lock first
            results.append(session.synthesize(FLOODSET_2_1))

        def flooder():
            started.wait(timeout=10)
            for scenario in (FLOODSET_3_1, FLOODSET_3_2, COUNT_3_1, EMIN_2_1):
                session.model(scenario)

        _run_threads([builder, waiter, flooder])
        assert len(results) == 2 and results[0] is results[1]
        key = ("result", "synthesize", FLOODSET_2_1.canonical_json())
        assert session.builds[key] == 1


class TestStripedBuilds:
    def test_distinct_scenarios_build_concurrently(self):
        # Each worker's model build blocks on a shared barrier: with per-key
        # locks both builds are in flight together and the barrier clears;
        # under a global build lock this would time out (and does, for the
        # legacy single-lock mode, below).
        barrier = threading.Barrier(2, timeout=10)

        class BarrierSession(CountingSession):
            def _invoke_build(self, key, build):
                if key[0] == "model":
                    barrier.wait()
                return super()._invoke_build(key, build)

        session = BarrierSession()
        errors = []

        def worker(scenario):
            try:
                session.check(scenario)
            except threading.BrokenBarrierError:  # pragma: no cover
                errors.append("builds were serialised")

        _run_threads([lambda: worker(FLOODSET_2_1), lambda: worker(EMIN_2_1)])
        assert errors == []

    def test_single_lock_baseline_serialises_builds(self):
        # The control experiment: with concurrent_builds=False the barrier
        # can never clear, proving the striped mode above is what unblocked
        # the concurrent builds.
        barrier = threading.Barrier(2, timeout=1.5)
        observed = []

        class BarrierSession(CountingSession):
            def _invoke_build(self, key, build):
                if key[0] == "model":
                    try:
                        barrier.wait()
                        observed.append("concurrent")
                    except threading.BrokenBarrierError:
                        observed.append("serialised")
                return super()._invoke_build(key, build)

        session = BarrierSession(concurrent_builds=False)
        _run_threads([
            lambda: session.check(FLOODSET_2_1),
            lambda: session.check(EMIN_2_1),
        ])
        assert "concurrent" not in observed


class TestBarrage:
    def test_mixed_cold_warm_barrage_is_deadlock_free_and_consistent(self):
        session = CountingSession(max_entries=6, build_delay=0.01)
        scenarios = [FLOODSET_2_1, FLOODSET_3_1, FLOODSET_3_2, EMIN_2_1]
        ops = ["check", "synthesize", "temporal"]
        errors = []
        completed = Counter()
        snapshots = []
        stop_polling = threading.Event()

        def client(seed):
            import random

            rng = random.Random(seed)
            try:
                for _ in range(6):
                    scenario = rng.choice(scenarios)
                    op = rng.choice(ops)
                    if op == "temporal" and scenario.family != "sba":
                        op = "check"
                    session.query(op, scenario)
                    completed[(op, scenario)] += 1
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def poller():
            while not stop_polling.is_set():
                snapshots.append(session.stats())
                time.sleep(0.005)

        poll_thread = threading.Thread(target=poller)
        poll_thread.start()
        try:
            _run_threads([lambda seed=seed: client(seed) for seed in range(8)])
        finally:
            stop_polling.set()
            poll_thread.join(timeout=10)

        assert errors == []
        assert sum(completed.values()) == 8 * 6
        # Counters are monotone across every observed snapshot.
        snapshots.append(session.stats())
        for before, after in zip(snapshots, snapshots[1:]):
            assert after.hits >= before.hits
            assert after.misses >= before.misses
            assert after.coalesced >= before.coalesced
        # The weighted cache respected its entry bound (no pins outlive the
        # barrage) and the weight accounting closed.
        final = session.stats()
        assert final.entries <= 6
        assert final.weight_bytes >= 0
        # No artefact key was ever built more than once *while cached*:
        # rebuilds can only follow evictions, and result keys for the four
        # scenarios fit the cache tail, so spot-check a warm repeat is free.
        misses_before = session.stats().misses
        session.check(FLOODSET_2_1)
        session.check(FLOODSET_2_1)
        assert session.stats().misses <= misses_before + len(session.builds)

    def test_barrage_through_the_store_tier(self, tmp_path):
        # Same shape, with a shared persistent store underneath: the store
        # absorbs result misses after evictions, and its counters stay
        # consistent under concurrency.
        store = ArtefactStore(tmp_path / "store")
        session = CountingSession(max_entries=4, store=store)
        errors = []

        def client(scenario):
            try:
                for _ in range(4):
                    session.check(scenario)
                    session.synthesize(scenario)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_threads([
            lambda: client(FLOODSET_2_1),
            lambda: client(FLOODSET_3_1),
            lambda: client(EMIN_2_1),
            lambda: client(FLOODSET_2_1),
        ])
        assert errors == []
        stats = session.stats()
        store_stats = stats.store
        assert store_stats["writes"] >= 6  # one per distinct (op, scenario)
        assert store_stats["quarantined"] == 0
        # Every store lookup resolved one way or the other.
        assert store_stats["hits"] + store_stats["misses"] >= store_stats["writes"]


class TestCrossProcessWarmStart:
    POPULATE = """
import sys
from repro.api import ArtefactStore, Scenario, Session

store = ArtefactStore(sys.argv[1])
session = Session(store=store)
scenario = Scenario(exchange="floodset", num_agents=2, max_faulty=1)
result = session.check(scenario)
assert result.spec_ok
assert session.stats().store["writes"] >= 1
print("populated")
"""

    def _populate(self, store_dir):
        completed = subprocess.run(
            [sys.executable, "-c", self.POPULATE, str(store_dir)],
            capture_output=True, text=True, timeout=120, env=_subprocess_env(),
        )
        assert completed.returncode == 0, completed.stderr
        assert "populated" in completed.stdout

    def test_second_session_starts_warm_from_another_process_store(self, tmp_path):
        store_dir = tmp_path / "store"
        self._populate(store_dir)

        session = CountingSession(store=ArtefactStore(store_dir))
        result = session.check(FLOODSET_2_1)
        assert result.spec_ok
        # The store answered before any artefact build started.
        assert session.builds == Counter()
        stats = session.stats()
        assert stats.store["hits"] == 1
        assert stats.misses == 0

    def test_serve_process_answers_from_store_populated_by_another_process(self, tmp_path):
        store_dir = tmp_path / "store"
        self._populate(store_dir)

        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(store_dir), "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=_subprocess_env(),
        )
        try:
            port = self._wait_for_port(process)
            payload = json.dumps({"scenario": {
                "exchange": "floodset", "num_agents": 2, "max_faulty": 1,
            }}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/check", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as response:
                body = json.loads(response.read())
            assert body["ok"] is True
            assert body["result"]["task"] == "sba-model-check"
            # The very first query of the fresh process was a store-tier hit:
            # nothing was built.
            assert body["cache"]["store"]["hits"] == 1
            assert body["cache"]["misses"] == 0
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=15)

    @staticmethod
    def _wait_for_port(process, timeout=60):
        """Parse the bound port from the serve banner (written with flush)."""
        result = {}

        def reader():
            line = process.stdout.readline()
            match = re.search(r"listening on http://[^:]+:(\d+)", line or "")
            if match:
                result["port"] = int(match.group(1))
            result["line"] = line

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        thread.join(timeout=timeout)
        assert result.get("port"), f"no serve banner (got {result.get('line')!r})"
        return result["port"]


class TestFailureConsistency:
    def test_failed_build_releases_the_key_and_poisons_nothing(self):
        boom = {"armed": True}

        class FailingSession(CountingSession):
            def _invoke_build(self, key, build):
                if key[0] == "result" and boom["armed"]:
                    boom["armed"] = False
                    raise RuntimeError("injected build failure")
                return super()._invoke_build(key, build)

        session = FailingSession()
        with pytest.raises(RuntimeError, match="injected"):
            session.check(FLOODSET_2_1)
        stats = session.stats()
        # The failed build is not a miss, not a hit, and not cached (the
        # result key fails before any artefact build starts).
        assert stats.misses == 0 and stats.hits == 0 and stats.entries == 0
        # The key lock was released and the retry succeeds from scratch.
        result = session.check(FLOODSET_2_1)
        assert result.spec_ok
        assert session.check(FLOODSET_2_1) is result

    def test_concurrent_retry_after_failure_does_not_deadlock(self):
        failures = {"remaining": 1}
        lock = threading.Lock()

        class FlakySession(CountingSession):
            def _invoke_build(self, key, build):
                if key[0] == "result":
                    with lock:
                        if failures["remaining"] > 0:
                            failures["remaining"] -= 1
                            raise RuntimeError("injected")
                return super()._invoke_build(key, build)

        session = FlakySession(build_delay=0.02)
        outcomes = []

        def worker():
            try:
                outcomes.append(session.check(FLOODSET_2_1))
            except RuntimeError:
                outcomes.append("failed")

        _run_threads([worker] * 4)
        assert outcomes.count("failed") == 1
        successes = [outcome for outcome in outcomes if outcome != "failed"]
        assert len(successes) == 3
        assert all(result is successes[0] for result in successes)
