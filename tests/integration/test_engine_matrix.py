"""Every harness task produces identical results under every engine.

The acceptance bar for the symbolic backend is that it is *interchangeable*:
each Table 1-3 task (model checking, SBA synthesis, EBA synthesis, the
temporal ablation) run under ``engine="symbolic"`` or ``engine="set"`` must
return the same qualitative dictionary — spec verdicts, optimality,
state counts, earliest decision times, iteration counts — as the default
bitset engine, with only the recorded ``engine`` field differing.
"""

from __future__ import annotations

import pytest

from repro.engines import ENGINES
from repro.harness.tasks import TASKS

#: (task, params) covering every task in the registry on small instances of
#: the paper's tables (Table 1: floodset/count; Table 2: diff/dwork-moses
#: with explicit rounds; Table 3: emin/ebasic under crash and sending).
MATRIX = [
    ("sba-model-check", {"exchange": "floodset", "num_agents": 3, "max_faulty": 2}),
    ("sba-model-check", {"exchange": "count", "num_agents": 3, "max_faulty": 1,
                         "optimal_protocol": True}),
    ("sba-model-check", {"exchange": "diff", "num_agents": 3, "max_faulty": 1,
                         "rounds": 2}),
    ("sba-model-check", {"exchange": "dwork-moses", "num_agents": 3,
                         "max_faulty": 1, "rounds": 2}),
    ("sba-temporal-only", {"exchange": "floodset", "num_agents": 3, "max_faulty": 2}),
    ("sba-synthesis", {"exchange": "floodset", "num_agents": 3, "max_faulty": 2}),
    ("sba-synthesis", {"exchange": "count", "num_agents": 3, "max_faulty": 1,
                       "failures": "sending"}),
    ("eba-synthesis", {"exchange": "emin", "num_agents": 3, "max_faulty": 1,
                       "failures": "crash"}),
    ("eba-synthesis", {"exchange": "ebasic", "num_agents": 3, "max_faulty": 1,
                       "failures": "sending"}),
    ("eba-model-check", {"exchange": "emin", "num_agents": 3, "max_faulty": 1}),
    ("eba-model-check", {"exchange": "ebasic", "num_agents": 2, "max_faulty": 2}),
    # n = 4 rows: the acceptance bar is identical satisfaction sets on the
    # table tasks up to four agents.
    ("sba-model-check", {"exchange": "floodset", "num_agents": 4, "max_faulty": 2}),
    ("sba-model-check", {"exchange": "diff", "num_agents": 4, "max_faulty": 1,
                         "rounds": 2}),
    ("sba-model-check", {"exchange": "dwork-moses", "num_agents": 4,
                         "max_faulty": 1, "rounds": 2}),
    ("sba-synthesis", {"exchange": "count", "num_agents": 4, "max_faulty": 1}),
    ("eba-synthesis", {"exchange": "emin", "num_agents": 4, "max_faulty": 1}),
    ("eba-model-check", {"exchange": "ebasic", "num_agents": 4, "max_faulty": 1}),
]


@pytest.mark.parametrize(
    "task,params",
    MATRIX,
    ids=[f"{task}-{params['exchange']}" for task, params in MATRIX],
)
def test_task_results_identical_across_engines(task, params):
    results = {
        engine: TASKS[task](**params, engine=engine) for engine in ENGINES
    }
    reference = results["bitset"]
    assert reference["engine"] == "bitset"
    for engine, result in results.items():
        assert result["engine"] == engine
        stripped = {key: value for key, value in result.items() if key != "engine"}
        reference_stripped = {
            key: value for key, value in reference.items() if key != "engine"
        }
        assert stripped == reference_stripped, (task, engine)


def test_tasks_reject_unknown_engine():
    for task, params in MATRIX[:1]:
        with pytest.raises(ValueError, match="satisfaction engine"):
            TASKS[task](**params, engine="z3")
