"""Integration tests: the Dwork-Moses protocol (E7).

The waste-based rule derived from the common-knowledge analysis of the
full-information protocol must be a correct SBA protocol for the crash model.
Optimality is assessed *relative to its own limited information exchange*
(the failure sets and the waste estimate), which carries more information
than the rule uses — the experiments record whether earlier decisions are
possible with respect to that exchange.
"""

import pytest

from repro.core.checker import ModelChecker
from repro.api import Scenario, build_model
from repro.kbp import verify_sba_implementation
from repro.protocols import DworkMosesProtocol
from repro.spec.sba import check_sba_run, sba_spec_formulas
from repro.systems.runs import CrashAdversary, enumerate_crash_adversaries, simulate_run
from repro.systems.space import build_space


@pytest.fixture(scope="module", params=[(2, 1), (3, 1), (3, 2)])
def dwork_moses_case(request):
    num_agents, max_faulty = request.param
    model = build_model(Scenario(exchange="dwork-moses", num_agents=num_agents, max_faulty=max_faulty))
    protocol = DworkMosesProtocol(num_agents, max_faulty)
    space = build_space(model, protocol)
    return model, protocol, space


class TestDworkMosesCorrectness:
    def test_satisfies_sba_specification(self, dwork_moses_case):
        model, _, space = dwork_moses_case
        checker = ModelChecker(space)
        for name, formula in sba_spec_formulas(model, space.horizon).items():
            assert checker.holds_initially(formula), name

    def test_decisions_are_sound_with_respect_to_knowledge(self, dwork_moses_case):
        model, protocol, space = dwork_moses_case
        report = verify_sba_implementation(model, protocol, space=space)
        assert report.is_sound, report.summary()

    def test_exhaustive_runs_satisfy_sba(self, dwork_moses_case):
        model, protocol, _ = dwork_moses_case
        horizon = model.default_horizon()
        adversaries = enumerate_crash_adversaries(
            model.num_agents, model.max_faulty, horizon, limit=300
        )
        for adversary in adversaries:
            for votes in [(0,) * model.num_agents, (0, 1) * (model.num_agents // 2 + 1)]:
                votes = tuple(votes[: model.num_agents])
                run = simulate_run(model, protocol, votes, adversary, horizon)
                report = check_sba_run(run, model, horizon)
                assert report.ok, [v.detail for v in report.violations]


class TestDworkMosesBehaviour:
    def test_failure_free_run_decides_at_t_plus_one(self):
        model = build_model(Scenario(exchange="dwork-moses", num_agents=3, max_faulty=2))
        protocol = DworkMosesProtocol(3, 2)
        run = simulate_run(model, protocol, (1, 1, 0), CrashAdversary())
        assert all(run.decision_time(agent) == 3 for agent in range(3))
        assert all(run.decision_value(agent) == 0 for agent in range(3))

    def test_waste_enables_earlier_simultaneous_decision(self):
        # Two agents crash in round 1 without sending anything: two failures
        # are discovered in a single round, so one of them is wasted
        # (waste = 2 - 1 = 1) and the survivor may decide at t + 1 - 1 = 2,
        # one round earlier than the failure-free time t + 1 = 3.
        model = build_model(Scenario(exchange="dwork-moses", num_agents=3, max_faulty=2))
        protocol = DworkMosesProtocol(3, 2)
        adversary = CrashAdversary(
            crashes={1: (1, frozenset()), 2: (1, frozenset())}
        )
        run = simulate_run(model, protocol, (1, 0, 0), adversary)
        assert run.decision_time(0) == 2
        assert run.decision_value(0) == 1  # the 0s crashed before reporting

    def test_reported_failures_count_towards_the_previous_round(self):
        # Regression (found by the random-run property test): agents 0 and 3
        # crash in round 1 with asymmetric delivery, so agent 1 witnesses
        # both crashes directly (d_1 = 2, waste 1, decide at t + 1 - 1 = 2)
        # while agent 2 only hears about them through agent 1's NF broadcast
        # in round 2.  The reported set was newly known to the *sender* in
        # round 1, so it must count towards d_1 for the receiver too —
        # otherwise agent 2 computes waste 0 and decides a round after
        # agent 1, violating simultaneity.
        model = build_model(Scenario(exchange="dwork-moses", num_agents=4, max_faulty=2))
        protocol = DworkMosesProtocol(4, 2)
        adversary = CrashAdversary(
            crashes={3: (1, frozenset({2})), 0: (1, frozenset({2, 3}))}
        )
        run = simulate_run(model, protocol, (1, 1, 1, 1), adversary)
        report = check_sba_run(run, model, model.default_horizon())
        assert report.ok, [v.detail for v in report.violations]
        assert run.decision_time(1) == 2
        assert run.decision_time(2) == 2

    def test_relative_optimality_is_reported(self):
        # With respect to its own exchange the waste rule may leave room for
        # earlier decisions (the exchange's failure sets carry more information
        # than the waste summary); the verification reports this as late
        # decision points rather than unsound ones.
        model = build_model(Scenario(exchange="dwork-moses", num_agents=3, max_faulty=2))
        report = verify_sba_implementation(model, DworkMosesProtocol(3, 2))
        assert report.is_sound
        assert isinstance(report.is_optimal, bool)
