"""End-to-end test of the pre-fork front: ``repro serve --workers N``.

The front runs as a real subprocess (the exact shape the CI service-smoke
job drives): the parent binds the socket and forks two workers that share
one ``--store`` directory.  One test walks the whole lifecycle — serve
from both workers, aggregate their ``/stats``, survive a SIGKILLed worker
through supervised restart, and shut down cleanly on SIGINT — because the
subprocess start-up (fork + cold builds) is the expensive part and every
stage builds on the previous one's state.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import repro

#: src/ directory for subprocess PYTHONPATH (tests may run from anywhere).
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SCENARIOS = [
    {"exchange": "floodset", "num_agents": agents, "max_faulty": 1}
    for agents in (2, 3, 4)
]

_BANNER = re.compile(r"http://[\d.]+:(\d+)")


def _env():
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    env["REPRO_SERVE_RESTART_BACKOFF"] = "0.1"  # fast restarts for the test
    return env


def _post(url, payload, timeout=120):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _barrage(url, rounds=2):
    """Concurrent requests on fresh connections, so both workers accept."""
    responses = []
    errors = []

    def worker(scenario):
        try:
            responses.append(_post(url + "/check", {"scenario": scenario}))
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    for _ in range(rounds):
        threads = [threading.Thread(target=worker, args=(scenario,))
                   for scenario in SCENARIOS for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
    assert not errors, errors
    return responses


def test_prefork_lifecycle(tmp_path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--store", str(tmp_path / "store"), "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=_env(),
    )
    try:
        banner = process.stdout.readline()
        match = _BANNER.search(banner)
        assert match, f"no serve banner (got {banner!r})"
        assert "2 workers" in banner
        url = f"http://127.0.0.1:{match.group(1)}"

        # --- both workers serve, and every answer is labelled -------------
        responses = _barrage(url)
        assert all(status == 200 for status, _ in responses)
        labels = {body["worker"] for _, body in responses}
        assert labels <= {"worker-0", "worker-1"}

        # --- /stats aggregates both workers' counters ---------------------
        _, stats = _get(url + "/stats")
        workers = stats["workers"]
        assert set(workers) == {"worker-0", "worker-1"}
        pids = {label: record["pid"] for label, record in workers.items()}
        assert pids["worker-0"] != pids["worker-1"]
        aggregate = stats["aggregate"]
        assert aggregate["workers"] == 2
        per_worker = [record["cache"] for record in workers.values()]
        assert aggregate["hits"] == sum(view["hits"] for view in per_worker)
        assert aggregate["misses"] == sum(view["misses"] for view in per_worker)

        # --- /metrics aggregates every worker's series --------------------
        # Any worker answers for the whole front: each publishes its
        # registry snapshot next to its stats record, and the scraped
        # worker renders all of them under per-worker labels.  Counters
        # are published just after the response bytes go out, so poll
        # until the last barrage request's bump lands.
        check_series = re.compile(
            r'repro_http_requests_total\{endpoint="/check",method="POST",'
            r'status="200",worker="(worker-\d+)"\} (\d+)')
        sent = len(responses)
        deadline = time.time() + 30
        while True:
            request = urllib.request.Request(url + "/metrics")
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                text = response.read().decode()
            counted = {worker: int(count)
                       for worker, count in check_series.findall(text)}
            if sum(counted.values()) >= sent or time.time() > deadline:
                break
            time.sleep(0.2)
        # Both forked workers publish: their labels appear even if the
        # barrage landed unevenly across the shared accept socket.
        worker_labels = set(re.findall(r'worker="(worker-\d+)"', text))
        assert worker_labels == {"worker-0", "worker-1"}, text[:2000]
        # Aggregate across the worker label == requests this test sent.
        assert sum(counted.values()) == sent, counted

        # --- a killed worker is restarted under a new pid -----------------
        os.kill(pids["worker-0"], signal.SIGKILL)
        deadline = time.time() + 60
        new_pid = None
        while time.time() < deadline:
            _, stats = _get(url + "/stats")
            record = stats["workers"].get("worker-0")
            if record and record["pid"] != pids["worker-0"]:
                new_pid = record["pid"]
                break
            time.sleep(0.2)
        assert new_pid is not None, "worker-0 was not restarted"

        # --- the restarted front still answers ----------------------------
        status, body = _post(url + "/check", {"scenario": SCENARIOS[0]})
        assert status == 200 and body["ok"] is True

        # --- SIGINT drains and exits cleanly ------------------------------
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 0
        assert "shut down" in stdout
        assert "worker-0" in stderr and "restarting" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=30)


def test_prefork_preload_gates_health_until_ready(tmp_path):
    env = _env()
    env["REPRO_SERVE_PRELOAD_DELAY"] = "2.0"  # hold the gate open for polling
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--preload", "table1:max-n=3",
         "--store", str(tmp_path / "store"), "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = process.stdout.readline()
        match = _BANNER.search(banner)
        assert match, f"no preload banner (got {banner!r})"
        assert "preloading" in banner
        url = f"http://127.0.0.1:{match.group(1)}"

        # --- while preloading, /health answers but reports not ready ------
        status, body = _get(url + "/health")
        assert status == 200
        assert body["ok"] is True
        assert body["ready"] is False
        assert body["status"] == "preloading"

        # --- readiness flips once the preload completes -------------------
        deadline = time.time() + 120
        body = None
        while time.time() < deadline:
            try:
                _, body = _get(url + "/health", timeout=10)
            except Exception:
                body = None
            if body and body.get("ready"):
                break
            time.sleep(0.2)
        assert body and body["ready"] is True, body
        assert body["status"] == "serving"

        # --- the first query is warm: served from preloaded artefacts -----
        status, answer = _post(
            url + "/check",
            {"scenario": {"exchange": "floodset", "num_agents": 3,
                          "max_faulty": 1}})
        assert status == 200 and answer["ok"] is True
        _, stats = _get(url + "/stats")
        assert stats["aggregate"]["preloaded"] >= 2
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.communicate(timeout=30)
