"""End-to-end tests of the ``repro serve`` JSON-over-HTTP service.

The server runs in-process on an ephemeral port; requests go through
``urllib`` exactly as the CI service-smoke job issues them.
"""

import json
import socket
import struct
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import SCHEMA_VERSION, result_from_json
from repro.api.service import MAX_BODY_BYTES, make_server

SCENARIO = {"exchange": "floodset", "num_agents": 3, "max_faulty": 1}


@pytest.fixture(scope="module")
def server_url():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_health_reports_serving(self, server_url):
        status, body = _get(server_url + "/health")
        assert status == 200
        assert body["ok"] is True
        assert body["status"] == "serving"
        assert "cache" in body

    def test_check_returns_a_versioned_result(self, server_url):
        status, body = _post(server_url + "/check", {"scenario": SCENARIO})
        assert status == 200 and body["ok"] is True
        result = body["result"]
        assert result["schema_version"] == SCHEMA_VERSION
        assert result["type"] == "check"
        typed = result_from_json(result)
        assert typed.task == "sba-model-check"
        assert typed.spec_ok
        assert typed.sound is True and typed.implementation_ok is not None

    def test_temporal_check_flag(self, server_url):
        status, body = _post(server_url + "/check",
                             {"scenario": SCENARIO, "temporal": True})
        assert status == 200
        assert body["result"]["task"] == "sba-temporal-only"

    def test_synthesize_returns_a_versioned_result(self, server_url):
        status, body = _post(server_url + "/synthesize", {"scenario": SCENARIO})
        assert status == 200
        typed = result_from_json(body["result"])
        assert typed.task == "sba-synthesis"
        assert typed.earliest_condition_time == 2

    def test_batch_mixes_ops_and_preserves_order(self, server_url):
        status, body = _post(server_url + "/batch", {"requests": [
            {"op": "check", "scenario": SCENARIO},
            {"op": "synthesize",
             "scenario": {"exchange": "emin", "num_agents": 2, "max_faulty": 1}},
            {"op": "temporal", "scenario": SCENARIO},
        ]})
        assert status == 200
        tasks = [result_from_json(result).task for result in body["results"]]
        assert tasks == ["sba-model-check", "eba-synthesis", "sba-temporal-only"]

    def test_repeated_queries_hit_the_session_cache(self, server_url):
        _, first = _post(server_url + "/check", {"scenario": SCENARIO})
        _, second = _post(server_url + "/check", {"scenario": SCENARIO})
        # The repeat builds nothing: no new misses, one more result-cache hit.
        assert second["cache"]["misses"] == first["cache"]["misses"]
        assert second["cache"]["hits"] > first["cache"]["hits"]

    def test_stats_endpoint(self, server_url):
        status, body = _get(server_url + "/stats")
        assert status == 200
        assert set(body["cache"]) >= {"hits", "misses", "entries", "max_entries"}


class TestObservability:
    def test_health_reports_uptime_and_versions(self, server_url):
        from repro.version import __version__

        status, body = _get(server_url + "/health")
        assert status == 200
        assert body["version"] == __version__
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["started_at"] > 0
        assert body["uptime_seconds"] >= 0

    def test_metrics_exposition_covers_http_and_session(self, server_url):
        import time

        # Drive one request of each kind so every series has a sample.
        _post(server_url + "/check", {"scenario": SCENARIO})
        _get(server_url + "/stats")
        # Counters are bumped *after* the response bytes go out, so an
        # immediate scrape can race the handler's bookkeeping by a few
        # microseconds: poll briefly, as a real scraper's interval would.
        wanted = 'repro_http_requests_total{endpoint="/check",method="POST",status="200"}'
        deadline = time.time() + 5
        while True:
            with urllib.request.urlopen(server_url + "/metrics", timeout=30) as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                text = response.read().decode()
            if wanted in text or time.time() > deadline:
                break
            time.sleep(0.05)
        # A scrape only counts itself on the *next* scrape (the counter is
        # bumped after the exposition is rendered); fetch once more so the
        # /metrics endpoint's own series is visible too.
        time.sleep(0.1)
        with urllib.request.urlopen(server_url + "/metrics", timeout=30) as response:
            text = response.read().decode()
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{endpoint="/check",method="POST",status="200"}' in text
        assert 'repro_http_requests_total{endpoint="/metrics",method="GET",status="200"}' in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_request_seconds_bucket' in text
        # Session cache tiers: the repeat /check above hits, the first missed.
        assert 'repro_session_lookups_total{kind="result",outcome="hit"}' in text
        assert 'repro_session_lookups_total{kind="result",outcome="miss"}' in text
        assert "repro_session_build_seconds_count" in text
        assert "repro_process_start_time_seconds" in text
        assert "repro_session_cache_entries" in text

    def test_unknown_paths_fold_into_one_endpoint_label(self, server_url):
        import time

        _post(server_url + "/minimise", {"scenario": SCENARIO})
        deadline = time.time() + 5
        while True:
            with urllib.request.urlopen(server_url + "/metrics", timeout=30) as response:
                text = response.read().decode()
            if 'endpoint="other"' in text or time.time() > deadline:
                break
            time.sleep(0.05)
        assert 'endpoint="other"' in text
        assert "/minimise" not in text

    def test_trace_id_is_echoed_when_sent(self, server_url):
        request = urllib.request.Request(
            server_url + "/check",
            data=json.dumps({"scenario": SCENARIO}).encode(),
            headers={"Content-Type": "application/json",
                     "X-Repro-Trace-Id": "trace-me-42"},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            assert response.headers["X-Repro-Trace-Id"] == "trace-me-42"

    def test_trace_id_is_generated_when_absent_or_malformed(self, server_url):
        request = urllib.request.Request(
            server_url + "/health",
            headers={"X-Repro-Trace-Id": "not valid !!"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            echoed = response.headers["X-Repro-Trace-Id"]
        assert echoed and echoed != "not valid !!"


class TestErrors:
    def test_invalid_scenario_is_a_400(self, server_url):
        status, body = _post(server_url + "/check",
                             {"scenario": dict(SCENARIO, engine="cudd")})
        assert status == 400
        assert body["ok"] is False
        assert "satisfaction engine" in body["error"]

    def test_unknown_scenario_field_is_a_400(self, server_url):
        status, body = _post(server_url + "/check",
                             {"scenario": dict(SCENARIO, bogus=1)})
        assert status == 400
        assert "unknown scenario fields" in body["error"]

    def test_missing_scenario_is_a_400(self, server_url):
        status, body = _post(server_url + "/check", {"nope": 1})
        assert status == 400

    def test_non_json_body_is_a_400(self, server_url):
        request = urllib.request.Request(
            server_url + "/check", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_malformed_content_length_is_a_400(self, server_url):
        request = urllib.request.Request(
            server_url + "/check", data=b'{"scenario": {}}',
            headers={"Content-Type": "application/json"})
        request.add_unredirected_header("Content-Length", "abc")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_endpoint_is_a_404(self, server_url):
        status, body = _post(server_url + "/minimise", {"scenario": SCENARIO})
        assert status == 404

    def test_temporal_on_eba_is_a_400(self, server_url):
        status, body = _post(server_url + "/check", {
            "scenario": {"exchange": "emin", "num_agents": 2, "max_faulty": 1},
            "temporal": True,
        })
        assert status == 400
        assert "SBA exchanges only" in body["error"]

    def test_bad_batch_op_is_a_400(self, server_url):
        status, body = _post(server_url + "/batch", {"requests": [
            {"op": "explode", "scenario": SCENARIO}]})
        assert status == 400
        assert "unknown op" in body["error"]


class _RawConnection:
    """A hand-rolled HTTP/1.1 client for framing-level assertions.

    ``urllib`` cannot express the malformed requests these tests need
    (negative ``Content-Length``, pipelining, a declared body that never
    arrives), so this speaks bytes on the socket and parses one response
    at a time out of a reusable buffer.
    """

    def __init__(self, server_url, timeout=120):
        host, _, port = server_url[len("http://"):].partition(":")
        self.sock = socket.create_connection((host, int(port)), timeout=timeout)
        self.buffer = b""

    def request(self, path, body=b"", content_length=None, method="POST"):
        length = len(body) if content_length is None else content_length
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: repro\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {length}\r\n\r\n")
        self.sock.sendall(head.encode() + body)

    def read_response(self):
        while b"\r\n\r\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            assert chunk, f"connection closed mid-headers: {self.buffer!r}"
            self.buffer += chunk
        head, _, self.buffer = self.buffer.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        while len(self.buffer) < length:
            chunk = self.sock.recv(65536)
            assert chunk, "connection closed mid-body"
            self.buffer += chunk
        body, self.buffer = self.buffer[:length], self.buffer[length:]
        return status, headers, json.loads(body) if body else None

    def assert_closed(self):
        """The server must hang up: the next read sees EOF (or a reset)."""
        assert not self.buffer, f"unexpected pipelined bytes: {self.buffer!r}"
        self.sock.settimeout(10)
        try:
            leftover = self.sock.recv(1)
        except ConnectionError:
            return
        assert leftover == b"", f"server kept talking: {leftover!r}"

    def reset(self):
        """Close with an immediate RST instead of an orderly FIN."""
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                             struct.pack("ii", 1, 0))
        self.sock.close()

    def close(self):
        self.sock.close()


class TestConnectionFraming:
    """Keep-alive framing discipline, asserted at the raw-socket level.

    Each test here is a regression guard: a negative ``Content-Length``
    used to turn into ``rfile.read(-N)`` (read-to-EOF, hanging the
    connection); error responses used to leave the unread body on the
    socket where the next request parse would choke on it; and a client
    vanishing mid-response used to provoke a traceback plus a second
    response written to the dead socket.
    """

    def test_pipelined_requests_share_one_connection(self, server_url):
        conn = _RawConnection(server_url)
        try:
            body = json.dumps({"scenario": SCENARIO}).encode()
            conn.request("/check", body)
            conn.request("/check", body)  # pipelined: sent before reading
            first = conn.read_response()
            second = conn.read_response()
            assert first[0] == 200 and second[0] == 200
            assert first[1].get("connection") != "close"
            assert first[2]["ok"] is True and second[2]["ok"] is True
        finally:
            conn.close()

    def test_negative_content_length_is_a_400_not_a_hang(self, server_url):
        conn = _RawConnection(server_url, timeout=30)
        try:
            conn.request("/check", content_length=-5)
            status, headers, body = conn.read_response()
            assert status == 400
            assert body["ok"] is False
            assert "Content-Length" in body["error"]
            # Nothing about the socket is trustworthy after a malformed
            # length: the server must hang up rather than try to parse
            # whatever follows as a request line.
            assert headers.get("connection") == "close"
            conn.assert_closed()
        finally:
            conn.close()

    def test_oversized_request_closes_then_a_fresh_connection_works(self, server_url):
        conn = _RawConnection(server_url, timeout=30)
        try:
            # Declare a huge body but never send it: the server must answer
            # without reading it, and must not reuse the connection (the
            # unsent body would arrive where the next request belongs).
            conn.request("/check", content_length=MAX_BODY_BYTES + 1)
            status, headers, body = conn.read_response()
            assert status == 413
            assert body["ok"] is False
            assert headers.get("connection") == "close"
            conn.assert_closed()
        finally:
            conn.close()
        fresh = _RawConnection(server_url)
        try:
            fresh.request("/check", json.dumps({"scenario": SCENARIO}).encode())
            status, _, body = fresh.read_response()
            assert status == 200 and body["ok"] is True
        finally:
            fresh.close()

    def test_error_with_consumed_body_keeps_the_connection(self, server_url):
        # A handler-level 400 read the body in full, so the connection
        # stays clean and the next request on it is served normally.
        conn = _RawConnection(server_url)
        try:
            conn.request("/check",
                         json.dumps({"scenario": dict(SCENARIO, bogus=1)}).encode())
            status, headers, body = conn.read_response()
            assert status == 400
            assert "unknown scenario fields" in body["error"]
            assert headers.get("connection") != "close"
            conn.request("/check", json.dumps({"scenario": SCENARIO}).encode())
            status, _, body = conn.read_response()
            assert status == 200 and body["ok"] is True
        finally:
            conn.close()

    def test_mid_response_disconnect_is_silent_and_terminal(self):
        # A client that resets the connection while its response is being
        # built must not provoke a traceback (handle_error), must not be
        # sent a second response, and must not affect later requests.
        import time

        from repro.api import Session

        class SlowSession(Session):
            def _invoke_build(self, key, build):
                if key[0] == "result":
                    time.sleep(0.5)  # long enough for the client to vanish
                return super()._invoke_build(key, build)

        server = make_server(port=0, session=SlowSession())
        tracebacks = []
        server.handle_error = (
            lambda request, client_address: tracebacks.append(client_address))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            conn = _RawConnection(url)
            conn.request("/check", json.dumps({"scenario": SCENARIO}).encode())
            time.sleep(0.1)  # the handler is mid-build
            conn.reset()
            time.sleep(1.0)  # let the build finish and the write fail
            assert tracebacks == []
            status, body = _post(url + "/check", {"scenario": SCENARIO})
            assert status == 200 and body["ok"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestConcurrency:
    def test_concurrent_duplicate_cold_requests_build_once(self):
        # A slow cold build plus a duplicate request arriving mid-build: the
        # duplicate must coalesce onto the in-flight build — exactly one
        # build, observable through the /stats coalesce counter.
        import time

        from repro.api import Session

        class SlowSession(Session):
            build_count = 0

            def _invoke_build(self, key, build):
                if key[0] == "result":
                    type(self).build_count += 1
                    time.sleep(0.3)  # long enough for the duplicate to arrive
                return super()._invoke_build(key, build)

        server = make_server(port=0, session=SlowSession())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            responses = []
            workers = [
                threading.Thread(target=lambda: responses.append(
                    _post(url + "/check", {"scenario": SCENARIO})))
                for _ in range(2)
            ]
            workers[0].start()
            time.sleep(0.1)  # the first request is mid-build when this lands
            workers[1].start()
            for worker in workers:
                worker.join(timeout=120)
            assert len(responses) == 2
            assert all(status == 200 for status, _ in responses)
            assert SlowSession.build_count == 1
            _, stats = _get(url + "/stats")
            assert stats["cache"]["coalesced"] == 1
            assert stats["cache"]["misses"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_max_inflight_defers_accept_while_saturated(self):
        # The pre-fork worker's accept backpressure: with max_inflight=1 a
        # second connection stays in the listen backlog (where an idle
        # sibling worker would take it) until the first request finishes,
        # so two concurrent cold builds serialise instead of overlapping.
        import time

        from repro.api import Session

        delay = 0.4

        class SlowSession(Session):
            def _invoke_build(self, key, build):
                if key[0] == "result":
                    time.sleep(delay)
                return super()._invoke_build(key, build)

        server = make_server(port=0, session=SlowSession(), max_inflight=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            scenarios = [dict(SCENARIO, num_agents=agents) for agents in (2, 3)]
            responses = []
            workers = [
                threading.Thread(target=lambda s=s: responses.append(
                    _post(url + "/check", {"scenario": s})))
                for s in scenarios
            ]
            start = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
            elapsed = time.perf_counter() - start
            assert len(responses) == 2
            assert all(status == 200 for status, _ in responses)
            # Without the gate these overlap (~delay, see the coalesce test
            # above); the gate makes them back-to-back.
            assert elapsed >= 2 * delay
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_concurrent_repeated_queries_all_answer_from_one_session(self, server_url):
        results = []
        errors = []

        def worker():
            try:
                results.append(_post(server_url + "/check", {"scenario": SCENARIO}))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == 8
        payloads = [body["result"] for _, body in results]
        assert all(payload == payloads[0] for payload in payloads)
        # The shared session answered at least the repeats from cache.
        final_stats = results[-1][1]["cache"]
        assert final_stats["hits"] >= 7


class TestReadinessGating:
    def test_health_gates_on_the_ready_event(self):
        ready = threading.Event()
        server = make_server(port=0, ready_event=ready)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, body = _get(url + "/health")
            assert status == 200
            assert body["ok"] is True
            assert body["ready"] is False
            assert body["status"] == "preloading"

            # Queries are still answered cold while the preload runs.
            status, answer = _post(url + "/check", {"scenario": SCENARIO})
            assert status == 200 and answer["ok"] is True

            ready.set()
            status, body = _get(url + "/health")
            assert body["ready"] is True
            assert body["status"] == "serving"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_health_without_gating_is_ready_immediately(self):
        server = make_server(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, body = _get(url + "/health")
            assert body["ready"] is True
            assert body["status"] == "serving"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_single_worker_serve_preloads_in_the_background(self, tmp_path):
        import os
        import re
        import signal as signal_module
        import subprocess
        import sys
        import time

        import repro

        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + existing if existing else "")
        env["REPRO_SERVE_PRELOAD_DELAY"] = "1.0"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--preload", "table1:max-n=3", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, f"no serve banner (got {banner!r})"
            url = f"http://127.0.0.1:{match.group(1)}"

            status, body = _get(url + "/health")
            assert status == 200 and body["ready"] is False

            deadline = time.time() + 120
            while time.time() < deadline:
                _, body = _get(url + "/health")
                if body.get("ready"):
                    break
                time.sleep(0.2)
            assert body["ready"] is True and body["status"] == "serving"

            status, answer = _post(url + "/check", {"scenario": SCENARIO})
            assert status == 200 and answer["ok"] is True
            _, stats = _get(url + "/stats")
            assert stats["cache"]["preloaded"] >= 2
        finally:
            process.send_signal(signal_module.SIGTERM)
            try:
                process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.communicate(timeout=30)
