"""End-to-end tests of the ``repro serve`` JSON-over-HTTP service.

The server runs in-process on an ephemeral port; requests go through
``urllib`` exactly as the CI service-smoke job issues them.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import SCHEMA_VERSION, result_from_json
from repro.api.service import make_server

SCENARIO = {"exchange": "floodset", "num_agents": 3, "max_faulty": 1}


@pytest.fixture(scope="module")
def server_url():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_health_reports_serving(self, server_url):
        status, body = _get(server_url + "/health")
        assert status == 200
        assert body["ok"] is True
        assert body["status"] == "serving"
        assert "cache" in body

    def test_check_returns_a_versioned_result(self, server_url):
        status, body = _post(server_url + "/check", {"scenario": SCENARIO})
        assert status == 200 and body["ok"] is True
        result = body["result"]
        assert result["schema_version"] == SCHEMA_VERSION
        assert result["type"] == "check"
        typed = result_from_json(result)
        assert typed.task == "sba-model-check"
        assert typed.spec_ok
        assert typed.sound is True and typed.implementation_ok is not None

    def test_temporal_check_flag(self, server_url):
        status, body = _post(server_url + "/check",
                             {"scenario": SCENARIO, "temporal": True})
        assert status == 200
        assert body["result"]["task"] == "sba-temporal-only"

    def test_synthesize_returns_a_versioned_result(self, server_url):
        status, body = _post(server_url + "/synthesize", {"scenario": SCENARIO})
        assert status == 200
        typed = result_from_json(body["result"])
        assert typed.task == "sba-synthesis"
        assert typed.earliest_condition_time == 2

    def test_batch_mixes_ops_and_preserves_order(self, server_url):
        status, body = _post(server_url + "/batch", {"requests": [
            {"op": "check", "scenario": SCENARIO},
            {"op": "synthesize",
             "scenario": {"exchange": "emin", "num_agents": 2, "max_faulty": 1}},
            {"op": "temporal", "scenario": SCENARIO},
        ]})
        assert status == 200
        tasks = [result_from_json(result).task for result in body["results"]]
        assert tasks == ["sba-model-check", "eba-synthesis", "sba-temporal-only"]

    def test_repeated_queries_hit_the_session_cache(self, server_url):
        _, first = _post(server_url + "/check", {"scenario": SCENARIO})
        _, second = _post(server_url + "/check", {"scenario": SCENARIO})
        # The repeat builds nothing: no new misses, one more result-cache hit.
        assert second["cache"]["misses"] == first["cache"]["misses"]
        assert second["cache"]["hits"] > first["cache"]["hits"]

    def test_stats_endpoint(self, server_url):
        status, body = _get(server_url + "/stats")
        assert status == 200
        assert set(body["cache"]) >= {"hits", "misses", "entries", "max_entries"}


class TestErrors:
    def test_invalid_scenario_is_a_400(self, server_url):
        status, body = _post(server_url + "/check",
                             {"scenario": dict(SCENARIO, engine="cudd")})
        assert status == 400
        assert body["ok"] is False
        assert "satisfaction engine" in body["error"]

    def test_unknown_scenario_field_is_a_400(self, server_url):
        status, body = _post(server_url + "/check",
                             {"scenario": dict(SCENARIO, bogus=1)})
        assert status == 400
        assert "unknown scenario fields" in body["error"]

    def test_missing_scenario_is_a_400(self, server_url):
        status, body = _post(server_url + "/check", {"nope": 1})
        assert status == 400

    def test_non_json_body_is_a_400(self, server_url):
        request = urllib.request.Request(
            server_url + "/check", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_malformed_content_length_is_a_400(self, server_url):
        request = urllib.request.Request(
            server_url + "/check", data=b'{"scenario": {}}',
            headers={"Content-Type": "application/json"})
        request.add_unredirected_header("Content-Length", "abc")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_endpoint_is_a_404(self, server_url):
        status, body = _post(server_url + "/minimise", {"scenario": SCENARIO})
        assert status == 404

    def test_temporal_on_eba_is_a_400(self, server_url):
        status, body = _post(server_url + "/check", {
            "scenario": {"exchange": "emin", "num_agents": 2, "max_faulty": 1},
            "temporal": True,
        })
        assert status == 400
        assert "SBA exchanges only" in body["error"]

    def test_bad_batch_op_is_a_400(self, server_url):
        status, body = _post(server_url + "/batch", {"requests": [
            {"op": "explode", "scenario": SCENARIO}]})
        assert status == 400
        assert "unknown op" in body["error"]


class TestConcurrency:
    def test_concurrent_duplicate_cold_requests_build_once(self):
        # A slow cold build plus a duplicate request arriving mid-build: the
        # duplicate must coalesce onto the in-flight build — exactly one
        # build, observable through the /stats coalesce counter.
        import time

        from repro.api import Session

        class SlowSession(Session):
            build_count = 0

            def _invoke_build(self, key, build):
                if key[0] == "result":
                    type(self).build_count += 1
                    time.sleep(0.3)  # long enough for the duplicate to arrive
                return super()._invoke_build(key, build)

        server = make_server(port=0, session=SlowSession())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            responses = []
            workers = [
                threading.Thread(target=lambda: responses.append(
                    _post(url + "/check", {"scenario": SCENARIO})))
                for _ in range(2)
            ]
            workers[0].start()
            time.sleep(0.1)  # the first request is mid-build when this lands
            workers[1].start()
            for worker in workers:
                worker.join(timeout=120)
            assert len(responses) == 2
            assert all(status == 200 for status, _ in responses)
            assert SlowSession.build_count == 1
            _, stats = _get(url + "/stats")
            assert stats["cache"]["coalesced"] == 1
            assert stats["cache"]["misses"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_concurrent_repeated_queries_all_answer_from_one_session(self, server_url):
        results = []
        errors = []

        def worker():
            try:
                results.append(_post(server_url + "/check", {"scenario": SCENARIO}))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == 8
        payloads = [body["result"] for _, body in results]
        assert all(payload == payloads[0] for payload in payloads)
        # The shared session answered at least the repeats from cache.
        final_stats = results[-1][1]["cache"]
        assert final_stats["hits"] >= 7
