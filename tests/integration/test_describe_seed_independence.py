"""Regression: synthesized-condition rendering is PYTHONHASHSEED-independent.

``ObservationPredicate.describe()`` used to emit different (logically
equivalent) minimised covers across processes: the observation table is a
frozenset of tuples that contain strings, so its iteration order varies with
the interpreter's hash seed, and (before Python 3.12) the Quine–McCluskey
prime set contains ``None``, whose hash is id-based — e.g. the ROADMAP
repro, emin n=3 t=2 decide0 at time 1: ``jd=0`` vs ``~jd=None``.  The fix
sorts the observation table before minimisation and iterates the prime
implicants in sorted order; this test pins it by comparing the full rendered
condition table across subprocesses running under different fixed seeds.
"""

import os
import subprocess
import sys

#: One SBA and one EBA configuration; emin n=3 t=2 is the ROADMAP repro.
PROGRAM = """
from repro.api import Scenario, Session

session = Session()
for kwargs in (
    dict(exchange="emin", num_agents=3, max_faulty=2),
    dict(exchange="floodset", num_agents=3, max_faulty=2),
):
    artifact = session.synthesis_artifact(Scenario(**kwargs))
    print(artifact.conditions.describe())
"""


def _render_under_seed(seed: str) -> str:
    import repro

    # The subprocess must import the same repro package as this test run,
    # whatever PYTHONPATH the runner was started with.
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ, PYTHONHASHSEED=seed)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else os.pathsep.join((package_root, existing))
    )
    completed = subprocess.run(
        [sys.executable, "-c", PROGRAM],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_describe_is_byte_identical_across_hash_seeds():
    rendered = {seed: _render_under_seed(seed) for seed in ("0", "1")}
    assert rendered["0"], "subprocess produced no conditions"
    assert rendered["0"] == rendered["1"], (
        "describe() output depends on PYTHONHASHSEED:\n"
        + "\n".join(
            f"seed 0: {a!r}\nseed 1: {b!r}"
            for a, b in zip(rendered["0"].splitlines(), rendered["1"].splitlines())
            if a != b
        )
    )
