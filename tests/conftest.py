"""Shared fixtures for the test suite.

The fixtures provide small, fast model instances that many tests share;
session scope keeps the state-space construction cost paid once.
"""

from __future__ import annotations

import pytest

from repro.api import Scenario, build_model
from repro.core.synthesis import synthesize_eba, synthesize_sba


def _model(exchange, num_agents, max_faulty, failures=None):
    return build_model(Scenario(exchange=exchange, num_agents=num_agents,
                                max_faulty=max_faulty, failures=failures))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_regression: wall-clock budget pins for performance regressions "
        "(kept fast so they always run in tier-1)",
    )


@pytest.fixture(scope="session")
def floodset_3_1_model():
    """FloodSet, crash failures, n=3, t=1 (the paper's appendix instance)."""
    return _model("floodset", 3, 1)


@pytest.fixture(scope="session")
def floodset_3_2_model():
    """FloodSet, crash failures, n=3, t=2 (the early-stopping counterexample)."""
    return _model("floodset", 3, 2)


@pytest.fixture(scope="session")
def count_3_2_model():
    """Count-FloodSet, crash failures, n=3, t=2."""
    return _model("count", 3, 2)


@pytest.fixture(scope="session")
def floodset_3_1_synthesis(floodset_3_1_model):
    """Synthesized SBA implementation for the appendix instance."""
    return synthesize_sba(floodset_3_1_model)


@pytest.fixture(scope="session")
def floodset_3_2_synthesis(floodset_3_2_model):
    """Synthesized SBA implementation for n=3, t=2."""
    return synthesize_sba(floodset_3_2_model)


@pytest.fixture(scope="session")
def count_3_2_synthesis(count_3_2_model):
    """Synthesized SBA implementation for the Count exchange, n=3, t=2."""
    return synthesize_sba(count_3_2_model)


@pytest.fixture(scope="session")
def emin_3_1_model():
    """E_min, sending omissions, n=3, t=1."""
    return _model("emin", 3, 1, failures="sending")


@pytest.fixture(scope="session")
def ebasic_3_1_model():
    """E_basic, sending omissions, n=3, t=1."""
    return _model("ebasic", 3, 1, failures="sending")


@pytest.fixture(scope="session")
def emin_3_1_synthesis(emin_3_1_model):
    """Synthesized EBA implementation for E_min, n=3, t=1."""
    return synthesize_eba(emin_3_1_model)


@pytest.fixture(scope="session")
def ebasic_3_1_synthesis(ebasic_3_1_model):
    """Synthesized EBA implementation for E_basic, n=3, t=1 (the ROADMAP
    describe() perf-regression scenario: wide observation alphabets)."""
    return synthesize_eba(ebasic_3_1_model)
