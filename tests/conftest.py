"""Shared fixtures for the test suite.

The fixtures provide small, fast model instances that many tests share;
session scope keeps the state-space construction cost paid once.
"""

from __future__ import annotations

import pytest

from repro.factory import build_eba_model, build_sba_model
from repro.core.synthesis import synthesize_eba, synthesize_sba


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_regression: wall-clock budget pins for performance regressions "
        "(kept fast so they always run in tier-1)",
    )


@pytest.fixture(scope="session")
def floodset_3_1_model():
    """FloodSet, crash failures, n=3, t=1 (the paper's appendix instance)."""
    return build_sba_model("floodset", num_agents=3, max_faulty=1)


@pytest.fixture(scope="session")
def floodset_3_2_model():
    """FloodSet, crash failures, n=3, t=2 (the early-stopping counterexample)."""
    return build_sba_model("floodset", num_agents=3, max_faulty=2)


@pytest.fixture(scope="session")
def count_3_2_model():
    """Count-FloodSet, crash failures, n=3, t=2."""
    return build_sba_model("count", num_agents=3, max_faulty=2)


@pytest.fixture(scope="session")
def floodset_3_1_synthesis(floodset_3_1_model):
    """Synthesized SBA implementation for the appendix instance."""
    return synthesize_sba(floodset_3_1_model)


@pytest.fixture(scope="session")
def floodset_3_2_synthesis(floodset_3_2_model):
    """Synthesized SBA implementation for n=3, t=2."""
    return synthesize_sba(floodset_3_2_model)


@pytest.fixture(scope="session")
def count_3_2_synthesis(count_3_2_model):
    """Synthesized SBA implementation for the Count exchange, n=3, t=2."""
    return synthesize_sba(count_3_2_model)


@pytest.fixture(scope="session")
def emin_3_1_model():
    """E_min, sending omissions, n=3, t=1."""
    return build_eba_model("emin", num_agents=3, max_faulty=1, failures="sending")


@pytest.fixture(scope="session")
def ebasic_3_1_model():
    """E_basic, sending omissions, n=3, t=1."""
    return build_eba_model("ebasic", num_agents=3, max_faulty=1, failures="sending")


@pytest.fixture(scope="session")
def emin_3_1_synthesis(emin_3_1_model):
    """Synthesized EBA implementation for E_min, n=3, t=1."""
    return synthesize_eba(emin_3_1_model)


@pytest.fixture(scope="session")
def ebasic_3_1_synthesis(ebasic_3_1_model):
    """Synthesized EBA implementation for E_basic, n=3, t=1 (the ROADMAP
    describe() perf-regression scenario: wide observation alphabets)."""
    return synthesize_eba(ebasic_3_1_model)
