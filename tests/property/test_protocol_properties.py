"""Property-based tests: protocol correctness over random failure patterns.

For randomly drawn initial preferences and adversaries, the literature
protocols must satisfy their specifications on the induced run, and the
optimal (revised) protocols must never decide later than the standard ones on
corresponding runs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.api import Scenario, build_model
from repro.protocols import (
    CountConditionProtocol,
    DworkMosesProtocol,
    EBasicProtocol,
    EMinProtocol,
    FloodSetRevisedProtocol,
    FloodSetStandardProtocol,
)
from repro.spec.eba import check_eba_run
from repro.spec.sba import check_sba_run
from repro.systems.runs import sample_adversary, simulate_run

_SBA_CASES = {
    (exchange, n, t): build_model(Scenario(exchange=exchange, num_agents=n, max_faulty=t))
    for exchange in ("floodset", "count", "dwork-moses")
    for (n, t) in [(3, 1), (3, 2), (4, 2)]
}

_EBA_CASES = {
    (exchange, n, t, failures): build_model(
        Scenario(exchange=exchange, num_agents=n, max_faulty=t, failures=failures)
    )
    for exchange in ("emin", "ebasic")
    for (n, t) in [(3, 1), (3, 2), (4, 2)]
    for failures in ("crash", "sending")
}


def _sba_protocol(exchange, n, t):
    if exchange == "floodset":
        return FloodSetRevisedProtocol(n, t)
    if exchange == "count":
        return CountConditionProtocol(n, t)
    return DworkMosesProtocol(n, t)


@given(
    case=st.sampled_from(sorted(_SBA_CASES)),
    seed=st.integers(min_value=0, max_value=10_000),
    votes_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=80, deadline=None)
def test_sba_protocols_are_correct_on_random_runs(case, seed, votes_seed):
    exchange, n, t = case
    model = _SBA_CASES[case]
    protocol = _sba_protocol(exchange, n, t)
    horizon = model.default_horizon()
    rng = random.Random(seed)
    adversary = sample_adversary(model.failures, horizon, rng)
    votes_rng = random.Random(votes_seed)
    votes = tuple(votes_rng.randint(0, 1) for _ in range(n))
    run = simulate_run(model, protocol, votes, adversary, horizon)
    report = check_sba_run(run, model, horizon)
    assert report.ok, [violation.detail for violation in report.violations]


@given(
    case=st.sampled_from(sorted(_EBA_CASES)),
    seed=st.integers(min_value=0, max_value=10_000),
    votes_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=80, deadline=None)
def test_eba_protocols_are_correct_on_random_runs(case, seed, votes_seed):
    exchange, n, t, failures = case
    model = _EBA_CASES[case]
    protocol = EMinProtocol(n, t) if exchange == "emin" else EBasicProtocol(n, t)
    horizon = model.default_horizon()
    rng = random.Random(seed)
    adversary = sample_adversary(model.failures, horizon, rng)
    votes_rng = random.Random(votes_seed)
    votes = tuple(votes_rng.randint(0, 1) for _ in range(n))
    run = simulate_run(model, protocol, votes, adversary, horizon)
    report = check_eba_run(run, model, horizon)
    assert report.ok, [violation.detail for violation in report.violations]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    votes_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_revised_floodset_never_decides_later_than_standard(seed, votes_seed):
    model = _SBA_CASES[("floodset", 3, 2)]
    horizon = model.default_horizon()
    rng = random.Random(seed)
    adversary = sample_adversary(model.failures, horizon, rng)
    votes_rng = random.Random(votes_seed)
    votes = tuple(votes_rng.randint(0, 1) for _ in range(3))
    revised = simulate_run(model, FloodSetRevisedProtocol(3, 2), votes, adversary, horizon)
    standard = simulate_run(
        model, FloodSetStandardProtocol(3, 2), votes, adversary, horizon
    )
    for agent in adversary.correct_agents(3):
        revised_time = revised.decision_time(agent)
        standard_time = standard.decision_time(agent)
        if standard_time is not None:
            assert revised_time is not None and revised_time <= standard_time


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    votes_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_agreement_values_come_from_votes_even_for_faulty_deciders(seed, votes_seed):
    """Uniform validity: every decided value (even a faulty agent's) is a vote."""
    model = _SBA_CASES[("count", 4, 2)]
    horizon = model.default_horizon()
    rng = random.Random(seed)
    adversary = sample_adversary(model.failures, horizon, rng)
    votes_rng = random.Random(votes_seed)
    votes = tuple(votes_rng.randint(0, 1) for _ in range(4))
    run = simulate_run(model, CountConditionProtocol(4, 2), votes, adversary, horizon)
    for agent in range(4):
        if run.decided(agent):
            assert run.decision_value(agent) in votes
