"""Bitset engine vs set-based oracle on randomized spaces and formulas.

The packed-bitset :class:`~repro.core.checker.ModelChecker` must agree with
the retained set-based :class:`~repro.core.reference.SetChecker` — the most
literal transcription of the paper's operator semantics — on every operator
of the logic.  These property tests generate random formulas (covering every
node type, including the ``CommonBelief``/``Nu`` fixpoints) over a grid of
small model/protocol combinations and compare the two engines' satisfaction
sets point for point.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitset import from_level_sets, to_level_sets
from repro.core.checker import ModelChecker
from repro.core.reference import SetChecker
from repro.api import Scenario, build_model
from repro.logic.atoms import (
    decided,
    decides_now,
    exists_value,
    init_is,
    nonfaulty,
    some_decided_value,
    time_is,
)
from repro.logic.formula import (
    Always,
    And,
    Bottom,
    CommonBelief,
    EvAlways,
    EvEventually,
    EvNext,
    EveryoneBelieves,
    Eventually,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Nu,
    Or,
    PositivityError,
    Top,
    Var,
    check_positive,
)
from repro.protocols.sba import FloodSetStandardProtocol
from repro.systems.space import build_space


def _random_atom(rng: random.Random, num_agents: int) -> Formula:
    agent = rng.randrange(num_agents)
    value = rng.randrange(2)
    choices = [
        lambda: init_is(agent, value),
        lambda: exists_value(value),
        lambda: decided(agent),
        lambda: some_decided_value(value),
        lambda: decides_now(agent, value),
        lambda: nonfaulty(agent),
        lambda: time_is(rng.randrange(4)),
        lambda: Top(),
        lambda: Bottom(),
    ]
    return rng.choice(choices)()


def _random_formula(rng: random.Random, num_agents: int, depth: int) -> Formula:
    """A random closed formula covering every operator of the logic.

    ``Nu`` is generated in the ``nu X . EB_N(phi /\\ X)`` template (with the
    bound variable in a positive position), which is the shape the paper's
    ``CommonBelief`` expands to and exercises the fixpoint machinery without
    tripping the positivity check.
    """
    if depth <= 0:
        return _random_atom(rng, num_agents)

    def sub() -> Formula:
        return _random_formula(rng, num_agents, depth - 1)

    agent = rng.randrange(num_agents)
    variable = f"X{depth}"
    constructors = [
        lambda: Not(sub()),
        lambda: And((sub(), sub())),
        lambda: Or((sub(), sub())),
        lambda: Implies(sub(), sub()),
        lambda: Iff(sub(), sub()),
        lambda: Knows(agent, sub()),
        lambda: KnowsNonfaulty(agent, sub()),
        lambda: EveryoneBelieves(sub()),
        lambda: CommonBelief(sub()),
        lambda: Nu(variable, EveryoneBelieves(And((sub(), Var(variable))))),
        lambda: Next(sub()),
        lambda: EvNext(sub()),
        lambda: Always(sub()),
        lambda: EvAlways(sub()),
        lambda: Eventually(sub()),
        lambda: EvEventually(sub()),
    ]
    return rng.choice(constructors)()


SPACE_GRID = [
    ("floodset", 2, 1, True),
    ("floodset", 2, 2, False),
    ("floodset", 3, 1, True),
    ("floodset", 3, 2, False),
    ("count", 2, 1, True),
    ("count", 3, 1, False),
]


@pytest.fixture(scope="module", params=SPACE_GRID, ids=lambda p: f"{p[0]}-n{p[1]}t{p[2]}")
def random_space(request):
    exchange, num_agents, max_faulty, with_protocol = request.param
    model = build_model(Scenario(exchange=exchange, num_agents=num_agents, max_faulty=max_faulty))
    rule = FloodSetStandardProtocol(num_agents, max_faulty) if with_protocol else None
    return build_space(model, rule)


def test_random_formulas_agree(random_space):
    space = random_space
    num_agents = space.model.num_agents
    rng = random.Random(f"bitset-{num_agents}-{space.horizon}-{space.num_states()}")
    bitset_checker = ModelChecker(space)
    set_checker = SetChecker(space)
    for _ in range(25):
        formula = _random_formula(rng, num_agents, depth=rng.randrange(1, 4))
        try:
            # A Nu template drawn under a negation flips the polarity of its
            # bound variable; such draws are not well-formed formulas.
            check_positive(formula)
        except PositivityError:
            continue
        expected = set_checker.check(formula)
        assert bitset_checker.check(formula) == expected, str(formula)
        assert bitset_checker.check_bits(formula) == from_level_sets(expected), str(formula)


def test_fixpoint_operators_agree(random_space):
    """CommonBelief and its explicit Nu unfolding agree across the engines."""
    space = random_space
    bitset_checker = ModelChecker(space)
    set_checker = SetChecker(space)
    for value in (0, 1):
        phi = exists_value(value)
        for formula in (
            CommonBelief(phi),
            Nu("X", EveryoneBelieves(And((phi, Var("X"))))),
            KnowsNonfaulty(0, CommonBelief(phi)),
        ):
            assert bitset_checker.check(formula) == set_checker.check(formula)


def test_roundtrip_conversion(random_space):
    """to_level_sets and from_level_sets are inverse on checker output."""
    space = random_space
    checker = ModelChecker(space)
    formula = EveryoneBelieves(exists_value(0))
    bits = checker.check_bits(formula)
    assert from_level_sets(to_level_sets(bits)) == bits


def test_query_helpers_agree(random_space):
    """holds_* and counterexamples agree between the engines."""
    space = random_space
    bitset_checker = ModelChecker(space)
    set_checker = SetChecker(space)
    formulas = [
        Eventually(Or((decided(0), Not(nonfaulty(0))))),
        Knows(0, exists_value(1)),
        Always(Implies(decided(0), Always(decided(0)))),
    ]
    for formula in formulas:
        assert bitset_checker.holds_initially(formula) == set_checker.holds_initially(formula)
        assert bitset_checker.holds_everywhere(formula) == set_checker.holds_everywhere(formula)
        for point in [(0, 0), (space.horizon, 0)]:
            assert bitset_checker.holds_at(formula, point) == set_checker.holds_at(
                formula, point
            )
        expected_failures = [
            (time, index)
            for time, level in enumerate(space.levels)
            for index in range(len(level))
            if index not in set_checker.check(formula)[time]
        ]
        assert bitset_checker.counterexamples(formula) == expected_failures
