r"""Property-based tests: knowledge axioms and semantic invariants.

These properties must hold for *any* model under the clock semantics:

* truthfulness of knowledge (axiom T): ``K_i phi -> phi``,
* positive introspection at the semantic level: the satisfaction set of
  ``K_i phi`` is a union of observation groups,
* ``CB_N phi  ->  EB_N phi  ->  B^N_i phi`` for nonfaulty ``i``,
* common belief is a fixed point of ``EB_N (phi /\ .)``,
* monotonicity of the knowledge operators.

Random propositional formulas over the model's atoms are generated with
hypothesis and evaluated on a small FloodSet space.
"""

from hypothesis import given, settings, strategies as st

from repro.core.checker import ModelChecker
from repro.api import Scenario, build_model
from repro.logic.atoms import decided, exists_value, init_is, nonfaulty
from repro.logic.builders import big_and, big_or, neg
from repro.logic.formula import (
    CommonBelief,
    EveryoneBelieves,
    Knows,
    KnowsNonfaulty,
)
from repro.protocols.sba import FloodSetStandardProtocol
from repro.systems.space import build_space

_MODEL = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=2))
_SPACE = build_space(_MODEL, FloodSetStandardProtocol(3, 2))
_CHECKER = ModelChecker(_SPACE)

_ATOMS = st.sampled_from(
    [init_is(agent, value) for agent in range(3) for value in range(2)]
    + [exists_value(0), exists_value(1)]
    + [decided(agent) for agent in range(3)]
    + [nonfaulty(agent) for agent in range(3)]
)


@st.composite
def formulas(draw, max_depth: int = 3):
    """Random propositional formulas over the model's atoms."""
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return draw(_ATOMS)
    shape = draw(st.sampled_from(["not", "and", "or"]))
    if shape == "not":
        return neg(draw(formulas(max_depth=depth - 1)))
    left = draw(formulas(max_depth=depth - 1))
    right = draw(formulas(max_depth=depth - 1))
    return big_and([left, right]) if shape == "and" else big_or([left, right])


agents = st.integers(min_value=0, max_value=2)


@given(agent=agents, formula=formulas())
@settings(max_examples=60, deadline=None)
def test_knowledge_is_truthful(agent, formula):
    sat_k = _CHECKER.check(Knows(agent, formula))
    sat = _CHECKER.check(formula)
    for time in range(len(_SPACE.levels)):
        assert sat_k[time] <= sat[time]


@given(agent=agents, formula=formulas())
@settings(max_examples=40, deadline=None)
def test_knowledge_is_constant_on_observation_groups(agent, formula):
    sat_k = _CHECKER.check(Knows(agent, formula))
    for time in range(len(_SPACE.levels)):
        for members in _SPACE.observation_groups(time, agent).values():
            inside = [index in sat_k[time] for index in members]
            assert all(inside) or not any(inside)


@given(agent=agents, formula=formulas())
@settings(max_examples=40, deadline=None)
def test_common_belief_implies_everyone_believes_implies_belief(agent, formula):
    cb = _CHECKER.check(CommonBelief(formula))
    eb = _CHECKER.check(EveryoneBelieves(formula))
    belief = _CHECKER.check(KnowsNonfaulty(agent, formula))
    for time in range(len(_SPACE.levels)):
        assert cb[time] <= eb[time]
        for index in eb[time]:
            if _SPACE.nonfaulty((time, index), agent):
                assert index in belief[time]


@given(formula=formulas())
@settings(max_examples=40, deadline=None)
def test_common_belief_is_a_fixed_point(formula):
    cb_formula = CommonBelief(formula)
    cb = _CHECKER.check(cb_formula)
    unfolded = _CHECKER.check(EveryoneBelieves(big_and([formula, cb_formula])))
    assert cb == unfolded


@given(agent=agents, left=formulas(), right=formulas())
@settings(max_examples=40, deadline=None)
def test_knowledge_distributes_over_conjunction(agent, left, right):
    conj = _CHECKER.check(Knows(agent, big_and([left, right])))
    separately = [
        a & b
        for a, b in zip(_CHECKER.check(Knows(agent, left)), _CHECKER.check(Knows(agent, right)))
    ]
    assert conj == separately


@given(agent=agents, formula=formulas())
@settings(max_examples=40, deadline=None)
def test_belief_relative_to_nonfaulty_is_weaker_than_knowledge(agent, formula):
    knowledge = _CHECKER.check(Knows(agent, formula))
    belief = _CHECKER.check(KnowsNonfaulty(agent, formula))
    for time in range(len(_SPACE.levels)):
        assert knowledge[time] <= belief[time]
