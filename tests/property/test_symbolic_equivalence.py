"""Symbolic BDD engine vs the bitset engine (and the set-based oracle).

The :class:`~repro.symbolic.checker.SymbolicChecker` must agree with the
explicit :class:`~repro.core.checker.ModelChecker` — and transitively with
the set-based reference oracle, whose agreement with the bitset engine is
pinned by ``test_bitset_equivalence.py`` — on every operator of the logic.
These property tests drive all three engines over seeded-random formulas on
a grid of small SBA spaces plus the paper's EBA exchanges (E_min and
E_basic) under crash and sending-omission failures, and additionally check

* the specialised per-level synthesis evaluators (the symbolic twins of the
  private helpers in :mod:`repro.core.synthesis`) bitmask-for-bitmask,
* end-to-end synthesis (rule tables and condition predicates) under
  ``engine="bitset"``, ``"symbolic"`` and ``"set"``,
* the KBP implementation verifier across engines, and
* the query helpers (``holds_*``, ``counterexamples``,
  ``satisfying_observations``) the rest of the stack consumes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.checker import ModelChecker
from repro.core.reference import SetChecker
from repro.core.synthesis import (
    _decide_zero_conditions_at_level,
    _level_knowledge_conditions,
    synthesize_eba,
    synthesize_sba,
)
from repro.api import Scenario, build_model
from repro.kbp.implementation import verify_eba_implementation, verify_sba_implementation
from repro.logic.atoms import (
    decided,
    decides_now,
    exists_value,
    init_is,
    nonfaulty,
    some_decided_value,
    time_is,
)
from repro.logic.builders import big_or, common_belief_exists, neg
from repro.logic.formula import (
    Always,
    And,
    Bottom,
    CommonBelief,
    EvAlways,
    EvEventually,
    EvNext,
    EveryoneBelieves,
    Eventually,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Nu,
    Or,
    PositivityError,
    Top,
    Var,
    check_positive,
)
from repro.protocols.eba import EBasicProtocol, EMinProtocol
from repro.protocols.sba import FloodSetStandardProtocol
from repro.symbolic.checker import (
    SymbolicChecker,
    eba_decide_zero_conditions,
    sba_level_conditions,
)
from repro.symbolic.encode import SpaceEncoder
from repro.systems.space import build_space


def _random_atom(rng: random.Random, num_agents: int) -> Formula:
    agent = rng.randrange(num_agents)
    value = rng.randrange(2)
    choices = [
        lambda: init_is(agent, value),
        lambda: exists_value(value),
        lambda: decided(agent),
        lambda: some_decided_value(value),
        lambda: decides_now(agent, value),
        lambda: nonfaulty(agent),
        lambda: time_is(rng.randrange(4)),
        lambda: Top(),
        lambda: Bottom(),
    ]
    return rng.choice(choices)()


def _random_formula(rng: random.Random, num_agents: int, depth: int) -> Formula:
    """A random closed formula covering every operator of the logic."""
    if depth <= 0:
        return _random_atom(rng, num_agents)

    def sub() -> Formula:
        return _random_formula(rng, num_agents, depth - 1)

    agent = rng.randrange(num_agents)
    variable = f"X{depth}"
    constructors = [
        lambda: Not(sub()),
        lambda: And((sub(), sub())),
        lambda: Or((sub(), sub())),
        lambda: Implies(sub(), sub()),
        lambda: Iff(sub(), sub()),
        lambda: Knows(agent, sub()),
        lambda: KnowsNonfaulty(agent, sub()),
        lambda: EveryoneBelieves(sub()),
        lambda: CommonBelief(sub()),
        lambda: Nu(variable, EveryoneBelieves(And((sub(), Var(variable))))),
        lambda: Next(sub()),
        lambda: EvNext(sub()),
        lambda: Always(sub()),
        lambda: EvAlways(sub()),
        lambda: Eventually(sub()),
        lambda: EvEventually(sub()),
    ]
    return rng.choice(constructors)()


#: (kind, exchange, n, t, failures, with_protocol)
SPACE_GRID = [
    ("sba", "floodset", 2, 1, "crash", True),
    ("sba", "floodset", 3, 1, "crash", True),
    ("sba", "floodset", 2, 2, "sending", False),
    ("sba", "count", 3, 1, "crash", False),
    ("eba", "emin", 2, 1, "sending", True),
    ("eba", "emin", 3, 1, "sending", True),
    ("eba", "ebasic", 2, 1, "sending", True),
    ("eba", "ebasic", 2, 2, "crash", True),
]


def _build(param):
    kind, exchange, num_agents, max_faulty, failures, with_protocol = param
    if kind == "sba":
        model = build_model(
            Scenario(exchange=exchange, num_agents=num_agents, max_faulty=max_faulty, failures=failures)
        )
        rule = FloodSetStandardProtocol(num_agents, max_faulty) if with_protocol else None
    else:
        model = build_model(
            Scenario(exchange=exchange, num_agents=num_agents, max_faulty=max_faulty, failures=failures)
        )
        protocol_type = EMinProtocol if exchange == "emin" else EBasicProtocol
        rule = protocol_type(num_agents, max_faulty) if with_protocol else None
    return build_space(model, rule)


@pytest.fixture(
    scope="module",
    params=SPACE_GRID,
    ids=lambda p: f"{p[1]}-n{p[2]}t{p[3]}-{p[4]}",
)
def space(request):
    return _build(request.param)


def test_random_formulas_agree(space):
    """Symbolic, bitset and set engines agree on seeded-random formulas."""
    num_agents = space.model.num_agents
    rng = random.Random(f"symbolic-{num_agents}-{space.horizon}-{space.num_states()}")
    symbolic = SymbolicChecker(space)
    bitset = ModelChecker(space)
    oracle = SetChecker(space)
    checked = 0
    for _ in range(25):
        formula = _random_formula(rng, num_agents, depth=rng.randrange(1, 4))
        try:
            check_positive(formula)
        except PositivityError:
            continue
        expected = bitset.check_bits(formula)
        assert symbolic.check_bits(formula) == expected, str(formula)
        if checked % 5 == 0:
            # The transitive leg: spot-check the set oracle as well.
            assert symbolic.check(formula) == oracle.check(formula), str(formula)
        checked += 1
    assert checked >= 15


def test_paper_formulas_agree(space):
    """The formulas synthesis and verification actually pose agree exactly."""
    model = space.model
    symbolic = SymbolicChecker(space)
    bitset = ModelChecker(space)
    someone_decides_zero = big_or(decides_now(agent, 0) for agent in model.agents())
    formulas = [
        common_belief_exists(agent, value)
        for agent in model.agents()
        for value in model.values()
    ]
    formulas += [
        Knows(agent, neg(EvEventually(someone_decides_zero)))
        for agent in model.agents()
    ]
    formulas.append(CommonBelief(exists_value(0)))
    formulas.append(Always(Implies(decided(0), Always(decided(0)))))
    for formula in formulas:
        assert symbolic.check_bits(formula) == bitset.check_bits(formula), str(formula)
        assert symbolic.holds_initially(formula) == bitset.holds_initially(formula)
        assert symbolic.holds_everywhere(formula) == bitset.holds_everywhere(formula)


def test_query_helpers_agree(space):
    """holds_at, counterexamples and satisfying_observations agree."""
    symbolic = SymbolicChecker(space)
    bitset = ModelChecker(space)
    formulas = [
        Eventually(Or((decided(0), Not(nonfaulty(0))))),
        Knows(0, exists_value(1)),
        KnowsNonfaulty(1, CommonBelief(exists_value(0))),
    ]
    for formula in formulas:
        assert symbolic.counterexamples(formula) == bitset.counterexamples(formula)
        assert symbolic.counterexamples(formula, limit=3) == bitset.counterexamples(
            formula, limit=3
        )
        for point in [(0, 0), (space.horizon, 0)]:
            assert symbolic.holds_at(formula, point) == bitset.holds_at(formula, point)
        for time in range(len(space.levels)):
            for agent in space.model.agents():
                assert symbolic.satisfying_observations(
                    formula, time, agent
                ) == bitset.satisfying_observations(formula, time, agent)


def test_level_condition_twins_agree(space):
    """The symbolic per-level synthesis evaluators match the bitset helpers."""
    encoder = SpaceEncoder(space)
    for level in range(len(space.levels)):
        assert sba_level_conditions(encoder, level) == _level_knowledge_conditions(
            space, level
        ), level
        assert eba_decide_zero_conditions(
            encoder, level
        ) == _decide_zero_conditions_at_level(space, level), level


# ---------------------------------------------------------------------------
# End-to-end engine equivalence: synthesis and KBP verification
# ---------------------------------------------------------------------------

SBA_SYNTH_GRID = [
    ("floodset", 2, 1, "crash"),
    ("floodset", 2, 2, "sending"),
    ("count", 3, 1, "crash"),
]

EBA_SYNTH_GRID = [
    ("emin", 2, 1, "sending"),
    ("emin", 3, 1, "crash"),
    ("ebasic", 2, 1, "sending"),
]


@pytest.mark.parametrize("exchange,n,t,failures", SBA_SYNTH_GRID)
def test_sba_synthesis_engine_equivalence(exchange, n, t, failures):
    model = build_model(Scenario(exchange=exchange, num_agents=n, max_faulty=t, failures=failures))
    results = {
        engine: synthesize_sba(model, engine=engine)
        for engine in ("bitset", "symbolic", "set")
    }
    reference = results["bitset"]
    for engine, result in results.items():
        assert result.rule.table == reference.rule.table, engine
        assert result.space.num_states() == reference.space.num_states(), engine
        for (agent, time, label), predicate in result.conditions.conditions.items():
            assert (
                predicate.positive
                == reference.conditions.get(agent, time, label).positive
            ), (engine, agent, time, label)


@pytest.mark.parametrize("exchange,n,t,failures", EBA_SYNTH_GRID)
def test_eba_synthesis_engine_equivalence(exchange, n, t, failures):
    model = build_model(Scenario(exchange=exchange, num_agents=n, max_faulty=t, failures=failures))
    results = {
        engine: synthesize_eba(model, engine=engine)
        for engine in ("bitset", "symbolic", "set")
    }
    reference = results["bitset"]
    for engine, result in results.items():
        assert result.rule.table == reference.rule.table, engine
        assert result.iterations == reference.iterations, engine
        assert result.converged and reference.converged, engine


def test_kbp_verification_engine_equivalence():
    model = build_model(Scenario(exchange="floodset", num_agents=3, max_faulty=1))
    protocol = FloodSetStandardProtocol(3, 1)
    space = build_space(model, protocol)
    reports = {
        engine: verify_sba_implementation(model, protocol, space=space, engine=engine)
        for engine in ("bitset", "symbolic", "set")
    }
    reference = reports["bitset"]
    for engine, report in reports.items():
        assert report.ok == reference.ok, engine
        assert report.mismatches == reference.mismatches, engine
        assert report.points_checked == reference.points_checked, engine

    eba_model = build_model(Scenario(exchange="emin", num_agents=2, max_faulty=1))
    eba_protocol = EMinProtocol(2, 1)
    eba_space = build_space(eba_model, eba_protocol)
    eba_reports = {
        engine: verify_eba_implementation(
            eba_model, eba_protocol, space=eba_space, engine=engine
        )
        for engine in ("bitset", "symbolic", "set")
    }
    eba_reference = eba_reports["bitset"]
    for engine, report in eba_reports.items():
        assert report.mismatches == eba_reference.mismatches, engine
        assert report.points_checked == eba_reference.points_checked, engine
