"""Property battery: the weighted LRU against a naive reference model.

Seeded-random op sequences (get / put / pin / unpin, the repo's
``random.Random`` property-test convention) drive the real
:class:`~repro.api.cache.WeightedLRU` and an obviously-correct list-based
model in lockstep.  After every operation the two must agree on contents,
recency order, total weight and the exact eviction victims; on top of that
the invariants the serving stack depends on are asserted directly:

* at insert time, total weight never exceeds the budget unless every other
  resident entry is pinned (an in-flight build may temporarily overflow,
  nothing else — and the overflow drains on the next insert after the pins
  lift);
* a pinned key — one with a build or waiter in flight — is never evicted;
* hit/miss counts match the model exactly.
"""

import random

import pytest

from repro.api.cache import WeightedLRU


class ModelLRU:
    """The naive reference: a list of (key, value, weight), LRU order."""

    def __init__(self, max_entries, max_weight):
        self.max_entries = max_entries
        self.max_weight = max_weight
        self.items = []  # least recently used first

    def keys(self):
        return [key for key, _, _ in self.items]

    def total_weight(self):
        return sum(weight for _, _, weight in self.items)

    def get(self, key):
        for index, (candidate, value, weight) in enumerate(self.items):
            if candidate == key:
                del self.items[index]
                self.items.append((key, value, weight))
                return True, value
        return False, None

    def put(self, key, value, weight, pinned):
        self.items = [item for item in self.items if item[0] != key]
        self.items.append((key, value, weight))
        evicted = []
        while (len(self.items) > self.max_entries
               or self.total_weight() > self.max_weight):
            victim_index = next(
                (index for index, (candidate, _, _) in enumerate(self.items)
                 if candidate != key and candidate not in pinned),
                None,
            )
            if victim_index is None:
                break
            victim = self.items.pop(victim_index)
            evicted.append((victim[0], victim[1]))
        return evicted


def _run_sequence(seed, steps=400, max_entries=6, max_weight=120):
    rng = random.Random(seed)
    real = WeightedLRU(max_entries, max_weight)
    model = ModelLRU(max_entries, max_weight)
    alphabet = [f"k{index}" for index in range(12)]
    pinned = set()
    hits = misses = model_hits = model_misses = 0

    for step in range(steps):
        action = rng.random()
        key = rng.choice(alphabet)
        if action < 0.40:  # get
            found_model, value_model = model.get(key)
            try:
                value_real = real.get(key)
                found_real = True
            except KeyError:
                value_real, found_real = None, False
            assert found_real == found_model, (seed, step, key)
            if found_real:
                hits += 1
                model_hits += 1
                assert value_real == value_model
            else:
                misses += 1
                model_misses += 1
        elif action < 0.80:  # put
            weight = rng.randint(0, 40)
            value = (key, step)
            evicted_real = real.put(key, value, weight, pinned=pinned)
            evicted_model = model.put(key, value, weight, pinned)
            assert evicted_real == evicted_model, (seed, step, key)
            # The serving invariant: an in-flight (pinned) key is never
            # dropped by someone else's insert.
            assert all(victim not in pinned for victim, _ in evicted_real)
            # Weight bound at insert time: eviction runs on put, so going
            # over budget is only legal when everything else is pinned
            # (pins lifting later leave the overflow until the next put).
            if real.total_weight > max_weight:
                overflow = [candidate for candidate in real.keys()
                            if candidate not in pinned and candidate != key]
                assert overflow == [], (seed, step, overflow)
        elif action < 0.92:  # pin (a build/waiter arrives)
            pinned.add(key)
        else:  # unpin (the build completes and its holders drain)
            pinned.discard(key)

        # Lockstep state equality after every operation.
        assert real.keys() == model.keys(), (seed, step)
        assert real.total_weight == model.total_weight(), (seed, step)
        assert len(real) == len(model.items)

    assert (hits, misses) == (model_hits, model_misses)
    return hits, misses


@pytest.mark.parametrize("seed", range(20))
def test_weighted_lru_matches_the_naive_model(seed):
    hits, misses = _run_sequence(seed)
    assert hits + misses > 0


def test_tight_weight_budget_still_matches(seed=1729):
    # Heavy eviction pressure: weights frequently exceed the budget alone.
    _run_sequence(seed, steps=300, max_entries=4, max_weight=30)


def test_entry_bound_only(seed=2718):
    # Effectively unbounded weight: pure LRU-by-count behaviour.
    _run_sequence(seed, steps=300, max_entries=3, max_weight=10**9)


def test_weight_bound_only(seed=3141):
    # Effectively unbounded entries: pure weight-driven eviction.
    _run_sequence(seed, steps=300, max_entries=10**6, max_weight=60)
