"""Espresso vs. Quine–McCluskey: oracle-backed equivalence property tests.

The heuristic minimiser may return different (possibly larger) covers than
the exact backend, but both must realise the *same function* on every
specified point.  This suite checks that:

* **exhaustively**, for every truth table on up to 4 variables, the espresso
  and QM covers agree with the table (and with each other) on every point,
  and the espresso covers are certifiably prime and irredundant;
* for **seeded-random** partial tables up to 12 variables (don't-cares as
  the implicit complement), every cover matches the specified on-set, never
  hits a specified off-point, and espresso's prime/irredundant claim holds
  (:func:`repro.core.cover.certify_cover` — the certification itself never
  expands the don't-care set);
* the **unate-recursion tautology oracle** agrees with brute-force
  enumeration on random small cube lists.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cover import certify_cover
from repro.core.espresso import (
    cover_is_tautology,
    espresso_minimise,
    full_cube,
    minterm_cube,
    tautology,
)
from repro.core.minimize import minimise, truth_table_minimise

#: Certify (primality/irredundancy, the expensive part) every Nth table of
#: the k=4 exhaustive sweep; on-set/off-set agreement is still checked on all
#: of them.  Smaller widths are certified exhaustively.
CERTIFY_STRIDE = 13


def _index_to_assignment(index, num_variables):
    return tuple(
        bool((index >> (num_variables - 1 - position)) & 1)
        for position in range(num_variables)
    )


@pytest.mark.parametrize("num_variables", [1, 2, 3])
def test_exhaustive_equivalence_small_widths(num_variables):
    """All fully specified tables on <=3 variables, both backends, certified."""
    size = 1 << num_variables
    for bits in range(1 << size):
        on_set = [index for index in range(size) if (bits >> index) & 1]
        qm = minimise(num_variables, on_set)
        es = espresso_minimise(num_variables, on_set)
        for index in range(size):
            expected = bool((bits >> index) & 1)
            assert qm.evaluate_index(index) == expected, (bits, index)
            assert es.evaluate_index(index) == expected, (bits, index)
        certificate = certify_cover(es, on_set, None)
        assert certificate.prime_and_irredundant, (bits, certificate)


def test_exhaustive_equivalence_four_variables():
    """All 65536 fully specified 4-variable tables agree across backends."""
    num_variables, size = 4, 16
    for bits in range(1 << size):
        on_set = [index for index in range(size) if (bits >> index) & 1]
        qm = minimise(num_variables, on_set)
        es = espresso_minimise(num_variables, on_set)
        for index in range(size):
            expected = bool((bits >> index) & 1)
            assert qm.evaluate_index(index) == expected, (bits, index)
            assert es.evaluate_index(index) == expected, (bits, index)
        if bits % CERTIFY_STRIDE == 0:
            certificate = certify_cover(es, on_set, None)
            assert certificate.prime_and_irredundant, (bits, certificate)


@pytest.mark.parametrize("num_variables", list(range(5, 13)))
def test_random_partial_tables_with_dont_cares(num_variables):
    """Seeded-random sparse tables: covers match the spec, primes certified.

    The don't-care set (the complement of the specified rows) is huge for the
    larger widths — exactly the regime in which the exact backend blows up —
    so espresso covers are certified against the explicit on/off rows only,
    and QM cross-checking is restricted to the widths where its implicit-DC
    expansion is still tractable.
    """
    rng = random.Random(1000 + num_variables)
    for _ in range(20):
        universe = 1 << num_variables
        num_rows = rng.randint(1, min(universe, 40))
        rows = rng.sample(range(universe), num_rows)
        values = {row: rng.random() < 0.5 for row in rows}
        on_set = [row for row, value in values.items() if value]
        off_set = [row for row, value in values.items() if not value]

        table = {
            _index_to_assignment(row, num_variables): value
            for row, value in values.items()
        }
        es = truth_table_minimise(table, method="espresso")
        for row, value in values.items():
            assert es.evaluate_index(row) == value, (num_variables, row, values)
        certificate = certify_cover(es, on_set, off_set)
        assert certificate.prime_and_irredundant, (num_variables, certificate)

        if num_variables <= 8:
            qm = truth_table_minimise(table, method="qm")
            for row, value in values.items():
                assert qm.evaluate_index(row) == value, (num_variables, row, values)


def test_auto_backend_matches_forced_backends_on_specified_rows():
    """The auto switch changes the backend, never the realised function."""
    rng = random.Random(7)
    for num_variables in (4, 9):
        universe = 1 << num_variables
        rows = rng.sample(range(universe), 12)
        values = {row: rng.random() < 0.5 for row in rows}
        table = {
            _index_to_assignment(row, num_variables): value
            for row, value in values.items()
        }
        auto = truth_table_minimise(table)
        es = truth_table_minimise(table, method="espresso")
        for row, value in values.items():
            assert auto.evaluate_index(row) == value
            assert es.evaluate_index(row) == value


def test_tautology_oracle_matches_brute_force():
    """Unate-recursion tautology agrees with 2**k enumeration on small k."""
    rng = random.Random(42)
    for _ in range(500):
        num_variables = rng.randint(1, 5)
        cubes = []
        for _ in range(rng.randint(0, 6)):
            cube = 0
            for position in range(num_variables):
                cube |= rng.choice([1, 2, 3]) << (2 * position)
            cubes.append(cube)
        brute = all(
            any(
                minterm_cube(minterm, num_variables) | cube == cube
                for cube in cubes
            )
            for minterm in range(1 << num_variables)
        )
        assert tautology(num_variables, cubes) == brute, (num_variables, cubes)
    assert tautology(3, [full_cube(3)])
    assert not tautology(3, [])


def test_tautology_certifies_always_true_covers():
    """A cover of everything-specified-on is certified True by the oracle."""
    cover = espresso_minimise(6, range(64))
    assert cover_is_tautology(cover)
    partial = espresso_minimise(6, [0, 1, 2], [63])
    assert not cover_is_tautology(partial)
