"""Decision-protocol base classes.

A decision protocol is the upper layer of the paper's two-layer model: a
function from the agent's local state (and the current time) to the action —
``noop`` or ``decide(v)`` — performed in the next round.  The state-space
builder and the run simulator only consult the protocol for agents that have
not yet decided and are still able to act, so implementations do not need to
re-check those conditions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Tuple

from repro.systems.actions import Action, NOOP


class DecisionProtocol(ABC):
    """Abstract decision protocol ``P``."""

    #: Short name used in tables and benchmark output.
    name: str = "protocol"

    @abstractmethod
    def act(self, agent: int, local: Tuple, time: int) -> Action:
        """The action of ``agent`` with local state ``local`` at ``time``."""

    def __call__(self, agent: int, local: Tuple, time: int) -> Action:
        return self.act(agent, local, time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NeverDecide(DecisionProtocol):
    """The protocol that never decides (pure information exchange)."""

    name = "never"

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        return NOOP


class FunctionProtocol(DecisionProtocol):
    """Wrap a plain function as a decision protocol."""

    def __init__(
        self, func: Callable[[int, Tuple, int], Action], name: Optional[str] = None
    ) -> None:
        self._func = func
        if name is not None:
            self.name = name

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        return self._func(agent, local, time)
