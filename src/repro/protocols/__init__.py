"""Concrete decision protocols from the literature.

These are the decision layers ``P`` that the paper model checks against the
knowledge-based programs:

* SBA protocols (Section 7): the standard FloodSet rule (decide the least
  value seen at round ``t + 1``), the revised FloodSet rule implementing the
  paper's condition (2), the Count-FloodSet rule implementing condition (3),
  and the Dwork–Moses waste-based rule.
* EBA protocols (Section 9): the implementations of the knowledge-based
  program ``P0`` for the exchanges ``E_min`` and ``E_basic``.

Every protocol is a callable ``(agent, local_state, time) -> action`` and can
be passed directly to :func:`repro.systems.space.build_space` and
:func:`repro.systems.runs.simulate_run`.
"""

from repro.protocols.base import DecisionProtocol, FunctionProtocol, NeverDecide
from repro.protocols.sba import (
    CountConditionProtocol,
    DworkMosesProtocol,
    FloodSetRevisedProtocol,
    FloodSetStandardProtocol,
)
from repro.protocols.eba import EBasicProtocol, EMinProtocol

__all__ = [
    "DecisionProtocol",
    "FunctionProtocol",
    "NeverDecide",
    "FloodSetStandardProtocol",
    "FloodSetRevisedProtocol",
    "CountConditionProtocol",
    "DworkMosesProtocol",
    "EMinProtocol",
    "EBasicProtocol",
]
