"""Concrete EBA decision protocols: implementations of the program ``P0``.

These are the implementations described in Section 9 of the paper for the
information exchanges ``E_min`` and ``E_basic``; they are optimal EBA
protocols with respect to their exchanges (Alpturer, Halpern & van der
Meyden, PODC'23).
"""

from __future__ import annotations

from typing import Tuple

from repro.exchanges.eba_basic import EBasicLocal
from repro.exchanges.eba_min import EMinLocal
from repro.protocols.base import DecisionProtocol
from repro.systems.actions import Action, NOOP


class EMinProtocol(DecisionProtocol):
    """Implementation of ``P0`` for the exchange ``E_min``.

    Decide 0 as soon as ``init = 0`` or a just-decided 0 is heard
    (``jd = 0``); otherwise decide 1 at time ``t + 1``.
    """

    name = "emin"

    def __init__(self, num_agents: int, max_faulty: int) -> None:
        self.num_agents = num_agents
        self.max_faulty = max_faulty

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        if not isinstance(local, EMinLocal):
            raise TypeError("EMinProtocol requires an E_min local state")
        if local.init == 0 or local.jd == 0:
            return 0
        if time >= self.max_faulty + 1:
            return 1
        return NOOP


class EBasicProtocol(DecisionProtocol):
    """Implementation of ``P0`` for the exchange ``E_basic``.

    Decide 0 as soon as ``init = 0`` or a just-decided 0 is heard; decide 1 as
    soon as ``num1 > n - time`` (enough undecided 1-initial agents were heard
    from that no 0 can be hiding) or a just-decided 1 is heard, or at time
    ``t + 1`` as a fallback.
    """

    name = "ebasic"

    def __init__(self, num_agents: int, max_faulty: int) -> None:
        self.num_agents = num_agents
        self.max_faulty = max_faulty

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        if not isinstance(local, EBasicLocal):
            raise TypeError("EBasicProtocol requires an E_basic local state")
        if local.init == 0 or local.jd == 0:
            return 0
        if time >= 1 and local.num1 > self.num_agents - time:
            return 1
        if local.jd == 1:
            return 1
        if time >= self.max_faulty + 1:
            return 1
        return NOOP
