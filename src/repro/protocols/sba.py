"""Concrete SBA decision protocols from the literature.

All of these protocols decide on the *least* value the agent has seen, and
differ only in *when* they decide:

* :class:`FloodSetStandardProtocol` — decide at time ``t + 1``, the stopping
  rule in Lynch's presentation of FloodSet.
* :class:`FloodSetRevisedProtocol` — decide at the time given by the paper's
  condition (2): time ``n - 1`` when ``t >= n - 1`` and ``t + 1`` otherwise.
  This is the optimal rule for the FloodSet information exchange.
* :class:`CountConditionProtocol` — the early-exit rule for the
  Count-FloodSet exchange: decide as soon as ``count <= 1`` (the agent is the
  only non-crashed agent left), and otherwise at the critical time of the
  FloodSet exchange (the paper's condition (3)).
* :class:`DworkMosesProtocol` — the waste-based rule of Dwork and Moses:
  decide as soon as ``time >= t + 1 - waste``, on value 0 if the agent is
  aware of an initial 0 and on 1 otherwise.
"""

from __future__ import annotations

from typing import Tuple

from repro.exchanges.count_floodset import CountFloodSetLocal
from repro.exchanges.diff_floodset import DiffFloodSetLocal
from repro.exchanges.dwork_moses import DworkMosesLocal
from repro.protocols.base import DecisionProtocol
from repro.systems.actions import Action, NOOP


def least_seen_value(seen: Tuple[bool, ...]) -> Action:
    """The least value marked as seen, or ``NOOP`` when none is marked."""
    for value, flag in enumerate(seen):
        if flag:
            return value
    return NOOP


def floodset_critical_time(num_agents: int, max_faulty: int) -> int:
    """The earliest general decision time for the FloodSet exchange.

    This is the time component of the paper's condition (2):
    ``n - 1`` when ``t >= n - 1`` and ``t + 1`` otherwise.
    """
    if max_faulty >= num_agents - 1:
        return num_agents - 1
    return max_faulty + 1


class FloodSetStandardProtocol(DecisionProtocol):
    """FloodSet as in the literature: decide the least value seen at ``t + 1``."""

    name = "floodset-standard"

    def __init__(self, num_agents: int, max_faulty: int) -> None:
        self.num_agents = num_agents
        self.max_faulty = max_faulty

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        if time >= self.max_faulty + 1:
            return least_seen_value(local.seen)
        return NOOP


class FloodSetRevisedProtocol(DecisionProtocol):
    """FloodSet with the revised stopping time of the paper's condition (2)."""

    name = "floodset-revised"

    def __init__(self, num_agents: int, max_faulty: int) -> None:
        self.num_agents = num_agents
        self.max_faulty = max_faulty
        self.critical_time = floodset_critical_time(num_agents, max_faulty)

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        if time >= self.critical_time:
            return least_seen_value(local.seen)
        return NOOP


class CountConditionProtocol(DecisionProtocol):
    """Count-FloodSet with the ``count <= 1`` early exit (condition (3)).

    Works for both the Count-FloodSet and the Diff exchanges, whose local
    states carry the ``count`` field.
    """

    name = "count-early-exit"

    def __init__(self, num_agents: int, max_faulty: int) -> None:
        self.num_agents = num_agents
        self.max_faulty = max_faulty
        self.critical_time = floodset_critical_time(num_agents, max_faulty)

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        if not isinstance(local, (CountFloodSetLocal, DiffFloodSetLocal)):
            raise TypeError(
                "CountConditionProtocol requires a Count-FloodSet or Diff local state"
            )
        if time >= 1 and local.count <= 1:
            return least_seen_value(local.seen)
        if time >= self.critical_time:
            return least_seen_value(local.seen)
        return NOOP


class DworkMosesProtocol(DecisionProtocol):
    """The Dwork–Moses waste-based simultaneous decision rule.

    The agent decides as soon as ``time >= t + 1 - waste``, which is the point
    at which the existence of a clean round has become common knowledge.  The
    decision is 0 if the agent is aware of an initial 0 and 1 otherwise.
    """

    name = "dwork-moses"

    def __init__(self, num_agents: int, max_faulty: int) -> None:
        self.num_agents = num_agents
        self.max_faulty = max_faulty

    def act(self, agent: int, local: Tuple, time: int) -> Action:
        if not isinstance(local, DworkMosesLocal):
            raise TypeError("DworkMosesProtocol requires a Dwork-Moses local state")
        if time >= 1 and time >= self.max_faulty + 1 - local.waste:
            return 0 if local.exists0 else 1
        return NOOP
