"""Formula abstract syntax for the logic of knowledge and (bounded) time.

The formula language follows Section 2 of the paper:

* propositional connectives over atomic propositions,
* ``Knows(i, phi)`` — agent ``i`` knows ``phi`` (clock semantics),
* ``KnowsNonfaulty(i, phi)`` — belief relative to the indexical nonfaulty
  set: ``B^N_i phi  =  K_i (i in N  =>  phi)``,
* ``EveryoneBelieves(phi)`` — ``EB_N phi  =  AND_{i in N} B^N_i phi``,
* ``CommonBelief(phi)`` — ``CB_N phi  =  nu X . EB_N (phi AND X)``,
* ``Nu(var, phi)`` — the raw greatest fixpoint operator,
* bounded CTL temporal operators (``AX``, ``EX``, ``AG``, ``EG``, ``AF``,
  ``EF``) interpreted over the finite-horizon levelled state space, with the
  final level treated as absorbing.

All nodes are immutable (frozen dataclasses) and hashable, so formulas can be
used as dictionary keys, cached, and compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Tuple


class Formula:
    """Base class for all formula nodes.

    Provides convenience operator overloads so formulas compose readably:
    ``a & b`` (conjunction), ``a | b`` (disjunction), ``~a`` (negation),
    ``a >> b`` (implication).
    """

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    # -- structural helpers -------------------------------------------------

    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas of this node."""
        return ()

    def subformulas(self) -> Iterator["Formula"]:
        """Yield this node and (recursively) every subformula."""
        yield self
        for child in self.children():
            yield from child.subformulas()

    def free_variables(self) -> frozenset:
        """Names of fixpoint variables occurring free in the formula."""
        bound: set = set()
        free: set = set()
        _collect_free_variables(self, bound, free)
        return frozenset(free)

    def is_closed(self) -> bool:
        """True when the formula has no free fixpoint variables."""
        return not self.free_variables()

    def agents(self) -> frozenset:
        """All agent identifiers mentioned by knowledge/belief operators."""
        found: set = set()
        for sub in self.subformulas():
            if isinstance(sub, (Knows, KnowsNonfaulty)):
                found.add(sub.agent)
        return frozenset(found)

    def has_temporal(self) -> bool:
        """True when the formula contains a temporal operator."""
        temporal = (Next, EvNext, Always, EvAlways, Eventually, EvEventually)
        return any(isinstance(sub, temporal) for sub in self.subformulas())

    def has_knowledge(self) -> bool:
        """True when the formula contains a knowledge or belief operator."""
        epistemic = (Knows, KnowsNonfaulty, EveryoneBelieves, CommonBelief)
        return any(isinstance(sub, epistemic) for sub in self.subformulas())

    def size(self) -> int:
        """Number of nodes in the formula tree."""
        return sum(1 for _ in self.subformulas())


def _collect_free_variables(formula: Formula, bound: set, free: set) -> None:
    if isinstance(formula, Var):
        if formula.name not in bound:
            free.add(formula.name)
        return
    if isinstance(formula, Nu):
        newly_bound = formula.variable not in bound
        if newly_bound:
            bound.add(formula.variable)
        _collect_free_variables(formula.operand, bound, free)
        if newly_bound:
            bound.discard(formula.variable)
        return
    for child in formula.children():
        _collect_free_variables(child, bound, free)


# ---------------------------------------------------------------------------
# Propositional layer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Top(Formula):
    """The constant true formula."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Formula):
    """The constant false formula."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic proposition, identified by a hashable key.

    The interpretation of keys is supplied by the model being checked (see
    :meth:`repro.systems.model.BAModel.eval_atom`).  Structured constructors
    for the keys used by the consensus models live in
    :mod:`repro.logic.atoms`.
    """

    key: Hashable

    def __str__(self) -> str:
        if isinstance(self.key, tuple):
            head, *rest = self.key
            if rest:
                return f"{head}({', '.join(str(part) for part in rest)})"
            return str(head)
        return str(self.key)


@dataclass(frozen=True)
class Var(Formula):
    """A fixpoint variable (bound by :class:`Nu`)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"~({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction.  The empty conjunction is equivalent to true."""

    operands: Tuple[Formula, ...] = field(default_factory=tuple)

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return "(" + " /\\ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction.  The empty disjunction is equivalent to false."""

    operands: Tuple[Formula, ...] = field(default_factory=tuple)

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return "(" + " \\/ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    """Material implication."""

    antecedent: Formula
    consequent: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def __str__(self) -> str:
        return f"({self.antecedent} => {self.consequent})"


@dataclass(frozen=True)
class Iff(Formula):
    """Biconditional."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} <=> {self.right})"


# ---------------------------------------------------------------------------
# Epistemic layer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Knows(Formula):
    """``K_i phi``: agent ``i`` knows ``phi`` (clock semantics)."""

    agent: int
    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"K_{self.agent}({self.operand})"


@dataclass(frozen=True)
class KnowsNonfaulty(Formula):
    """``B^N_i phi = K_i (i in N => phi)``: belief relative to the nonfaulty
    set ``N``.

    ``N`` is indexical — its extension differs from point to point and is
    supplied by the model's ``nonfaulty`` labelling.
    """

    agent: int
    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"B^N_{self.agent}({self.operand})"


@dataclass(frozen=True)
class EveryoneBelieves(Formula):
    """``EB_N phi``: every agent in the indexical set ``N`` believes ``phi``."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"EB_N({self.operand})"


@dataclass(frozen=True)
class CommonBelief(Formula):
    """``CB_N phi = nu X . EB_N (phi /\\ X)``: common belief among ``N``."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"CB_N({self.operand})"


@dataclass(frozen=True)
class Nu(Formula):
    """``nu X . phi(X)``: the greatest fixpoint operator.

    The bound variable must occur only positively (under an even number of
    negations) inside ``operand`` for the fixpoint to be well defined; this is
    checked by :func:`check_positive`.
    """

    variable: str
    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"nu {self.variable} . ({self.operand})"


# ---------------------------------------------------------------------------
# Bounded temporal layer (CTL-style, over the levelled finite-horizon DAG)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Next(Formula):
    """``AX phi``: on all successors (of the next round) ``phi`` holds."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"AX({self.operand})"


@dataclass(frozen=True)
class EvNext(Formula):
    """``EX phi``: on some successor ``phi`` holds."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"EX({self.operand})"


@dataclass(frozen=True)
class Always(Formula):
    """``AG phi``: on all paths, at all future points, ``phi`` holds."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"AG({self.operand})"


@dataclass(frozen=True)
class EvAlways(Formula):
    """``EG phi``: on some path, at all future points, ``phi`` holds."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"EG({self.operand})"


@dataclass(frozen=True)
class Eventually(Formula):
    """``AF phi``: on all paths, ``phi`` eventually holds."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"AF({self.operand})"


@dataclass(frozen=True)
class EvEventually(Formula):
    """``EF phi``: on some path, ``phi`` eventually holds."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"EF({self.operand})"


# ---------------------------------------------------------------------------
# Structural hashing
# ---------------------------------------------------------------------------
#
# Formula nodes are used pervasively as dictionary keys: the model checker
# memoizes satisfaction sets per formula, and synthesis re-poses structurally
# identical knowledge queries on every round.  The dataclass-generated
# ``__hash__`` walks the whole subtree on every call, which turns each cache
# lookup into an O(|formula|) traversal.  Since the nodes are immutable, the
# structural hash can be computed once and pinned on the instance; child
# hashes are themselves cached, so a tree of n nodes is hashed in O(n) total
# over its lifetime instead of O(n) per lookup.

def _caching_hash(generated_hash):
    def __hash__(self):
        try:
            return object.__getattribute__(self, "_structural_hash")
        except AttributeError:
            value = generated_hash(self)
            object.__setattr__(self, "_structural_hash", value)
            return value

    return __hash__


# Patch every node class that defines its own (dataclass-generated) __hash__;
# walking Formula.__subclasses__() here — after all node definitions — keeps
# the registry automatic, so a newly added operator cannot miss the caching.
for _node_type in Formula.__subclasses__():
    _generated = _node_type.__dict__.get("__hash__")
    if _generated is not None:
        _node_type.__hash__ = _caching_hash(_generated)
del _node_type, _generated


def structural_hash(formula: Formula) -> int:
    """The memoized structural hash of a formula.

    Equal to ``hash(formula)``; exposed under an explicit name because the
    checker's formula-level memoization is keyed on it.
    """
    return hash(formula)


# ---------------------------------------------------------------------------
# Well-formedness checks
# ---------------------------------------------------------------------------


class PositivityError(ValueError):
    """Raised when a fixpoint variable occurs negatively under its binder."""


def check_positive(formula: Formula) -> None:
    """Check that every ``Nu``-bound variable occurs only positively.

    Raises :class:`PositivityError` if a bound fixpoint variable appears
    under an odd number of negations (counting the left side of implications
    and both sides of biconditionals as negative-capable positions).
    """

    def walk(node: Formula, tracked: dict, polarity: int) -> None:
        if isinstance(node, Var):
            if node.name in tracked and polarity < 0:
                raise PositivityError(
                    f"fixpoint variable {node.name!r} occurs negatively"
                )
            return
        if isinstance(node, Nu):
            inner = dict(tracked)
            inner[node.variable] = True
            walk(node.operand, inner, polarity)
            return
        if isinstance(node, Not):
            walk(node.operand, tracked, -polarity)
            return
        if isinstance(node, Implies):
            walk(node.antecedent, tracked, -polarity)
            walk(node.consequent, tracked, polarity)
            return
        if isinstance(node, Iff):
            # Variables under <=> occur both positively and negatively.
            for side in (node.left, node.right):
                walk(side, tracked, polarity)
                walk(side, tracked, -polarity)
            return
        for child in node.children():
            walk(child, tracked, polarity)

    walk(formula, {}, +1)
