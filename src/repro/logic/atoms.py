"""Structured atomic propositions used by the consensus models.

Atoms are :class:`repro.logic.formula.Atom` nodes whose ``key`` is a tuple
``(kind, *arguments)``.  The Byzantine-Agreement models interpret these keys
in :meth:`repro.systems.model.BAModel.eval_atom`.  The kinds are:

``("init", i, v)``
    Agent ``i``'s initial preference is ``v``.
``("exists", v)``
    Some agent has initial preference ``v`` (the paper's ``∃v``).
``("decided", i)``
    Agent ``i`` has already decided (in some earlier round).
``("decision", i, v)``
    Agent ``i`` has decided, and its decision is ``v``.
``("some_decided", v)``
    Some agent has decided value ``v``.
``("decides_now", i, v)``
    Agent ``i`` performs ``decide_i(v)`` in the current round (the paper's
    ``decides_i(v)`` proposition).  Only meaningful when the state space is
    built together with a decision protocol.
``("nonfaulty", i)``
    Agent ``i`` is in the indexical nonfaulty set ``N``.
``("time", m)``
    The current time is ``m``.
``("obs", i, feature, value)``
    Feature ``feature`` of agent ``i``'s observation equals ``value``; used to
    phrase hypotheses such as the paper's conditions (2) and (3) in terms of
    observable variables.
"""

from __future__ import annotations

from typing import Hashable

from repro.logic.formula import Atom


def init_is(agent: int, value: int) -> Atom:
    """Atom: agent ``agent``'s initial preference equals ``value``."""
    return Atom(("init", agent, value))


def exists_value(value: int) -> Atom:
    """Atom: some agent's initial preference equals ``value`` (``∃v``)."""
    return Atom(("exists", value))


def decided(agent: int) -> Atom:
    """Atom: agent ``agent`` has decided in some earlier round."""
    return Atom(("decided", agent))


def decision_is(agent: int, value: int) -> Atom:
    """Atom: agent ``agent`` has decided on ``value``."""
    return Atom(("decision", agent, value))


def some_decided_value(value: int) -> Atom:
    """Atom: some agent has decided on ``value``."""
    return Atom(("some_decided", value))


def decides_now(agent: int, value: int) -> Atom:
    """Atom: agent ``agent`` performs ``decide(value)`` in the current round."""
    return Atom(("decides_now", agent, value))


def nonfaulty(agent: int) -> Atom:
    """Atom: agent ``agent`` belongs to the indexical nonfaulty set ``N``."""
    return Atom(("nonfaulty", agent))


def time_is(time: int) -> Atom:
    """Atom: the current time (number of completed rounds) equals ``time``."""
    return Atom(("time", time))


def obs_feature(agent: int, feature: str, value: Hashable) -> Atom:
    """Atom: feature ``feature`` of agent ``agent``'s observation is ``value``."""
    return Atom(("obs", agent, feature, value))
