"""Epistemic and temporal logic formulas.

This subpackage provides the formula language used throughout the
reproduction: propositional connectives, the knowledge operator ``K_i``,
belief relative to the indexical nonfaulty set ``B^N_i``, "everyone in N
believes" ``EB_N``, common belief ``CB_N`` (a greatest fixpoint), the raw
greatest-fixpoint operator ``nu X . phi(X)``, and a small set of bounded CTL
temporal operators (``AX``, ``EX``, ``AG``, ``EG``, ``AF``, ``EF``).

Formulas are immutable and hashable.  They are evaluated over levelled
state spaces by :mod:`repro.core.checker` under the clock semantics of
knowledge, exactly as in the paper (MCK's ``KBP_semantics = clk``).
"""

from repro.logic.formula import (
    And,
    Atom,
    Bottom,
    CommonBelief,
    EvAlways,
    EvEventually,
    EvNext,
    EveryoneBelieves,
    Eventually,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Nu,
    Or,
    Always,
    Top,
    Var,
)
from repro.logic.atoms import (
    decided,
    decides_now,
    decision_is,
    exists_value,
    init_is,
    nonfaulty,
    obs_feature,
    some_decided_value,
    time_is,
)
from repro.logic.builders import (
    AX_power,
    belief_n,
    big_and,
    big_or,
    common_belief_exists,
    iff,
    implies,
    knows,
    neg,
)

__all__ = [
    # formula classes
    "Formula",
    "Top",
    "Bottom",
    "Atom",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Knows",
    "KnowsNonfaulty",
    "EveryoneBelieves",
    "CommonBelief",
    "Nu",
    "Next",
    "EvNext",
    "Always",
    "EvAlways",
    "Eventually",
    "EvEventually",
    # atom constructors
    "init_is",
    "exists_value",
    "decided",
    "decision_is",
    "decides_now",
    "some_decided_value",
    "nonfaulty",
    "time_is",
    "obs_feature",
    # builders
    "neg",
    "implies",
    "iff",
    "big_and",
    "big_or",
    "knows",
    "belief_n",
    "common_belief_exists",
    "AX_power",
]
