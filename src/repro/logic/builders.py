"""Convenience constructors for common formula shapes.

These helpers keep model and specification code close to the notation used in
the paper: ``B^N_i CB_N ∃v`` is written
``belief_n(i, CommonBelief(exists_value(v)))`` or, more compactly,
``common_belief_exists(i, v)``.
"""

from __future__ import annotations

from typing import Iterable

from repro.logic.atoms import exists_value
from repro.logic.formula import (
    And,
    Bottom,
    CommonBelief,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Or,
    Top,
)


def neg(formula: Formula) -> Formula:
    """Negation, collapsing double negations."""
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Material implication ``antecedent => consequent``."""
    return Implies(antecedent, consequent)


def iff(left: Formula, right: Formula) -> Formula:
    """Biconditional ``left <=> right``."""
    return Iff(left, right)


def big_and(operands: Iterable[Formula]) -> Formula:
    """N-ary conjunction; returns ``Top`` for the empty conjunction."""
    flattened = _flatten(operands, And)
    if not flattened:
        return Top()
    if len(flattened) == 1:
        return flattened[0]
    return And(tuple(flattened))


def big_or(operands: Iterable[Formula]) -> Formula:
    """N-ary disjunction; returns ``Bottom`` for the empty disjunction."""
    flattened = _flatten(operands, Or)
    if not flattened:
        return Bottom()
    if len(flattened) == 1:
        return flattened[0]
    return Or(tuple(flattened))


def _flatten(operands: Iterable[Formula], combinator: type) -> list:
    result: list = []
    for operand in operands:
        if isinstance(operand, combinator):
            result.extend(operand.operands)
        else:
            result.append(operand)
    return result


def knows(agent: int, formula: Formula) -> Formula:
    """``K_agent formula``."""
    return Knows(agent, formula)


def belief_n(agent: int, formula: Formula) -> Formula:
    """``B^N_agent formula`` — belief relative to the nonfaulty set."""
    return KnowsNonfaulty(agent, formula)


def common_belief_exists(agent: int, value: int) -> Formula:
    """The SBA decision condition ``B^N_i CB_N ∃v`` from the paper (Sec. 5)."""
    return KnowsNonfaulty(agent, CommonBelief(exists_value(value)))


def AX_power(power: int, formula: Formula) -> Formula:
    """``AX^power formula``: the formula holds after exactly ``power`` rounds."""
    if power < 0:
        raise ValueError("power must be non-negative")
    result = formula
    for _ in range(power):
        result = Next(result)
    return result
