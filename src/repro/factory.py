"""Convenience constructors for the models and checkers studied in the paper."""

from __future__ import annotations

from repro.engines import DEFAULT_ENGINE, ENGINES, checker_for, validate_engine
from repro.exchanges import exchange_by_name
from repro.failures import failure_model_by_name
from repro.systems.model import BAModel
from repro.systems.space import LevelledSpace

#: Exchanges usable for the Simultaneous Byzantine Agreement experiments.
SBA_EXCHANGES = ("floodset", "count", "diff", "dwork-moses")
#: Exchanges usable for the Eventual Byzantine Agreement experiments.
EBA_EXCHANGES = ("emin", "ebasic")

__all__ = [
    "DEFAULT_ENGINE",
    "EBA_EXCHANGES",
    "ENGINES",
    "SBA_EXCHANGES",
    "build_checker",
    "build_eba_model",
    "build_sba_model",
    "checker_for",
    "validate_engine",
]


def build_checker(space: LevelledSpace, engine: str = DEFAULT_ENGINE):
    """A satisfaction checker over a built space for a named engine.

    ``engine`` is one of :data:`repro.engines.ENGINES` (``bitset`` — the
    explicit packed-bitset engine, the default; ``symbolic`` — the BDD
    backend; ``set`` — the reference oracle).  Unknown names raise
    ``ValueError`` listing the known engines.
    """
    return checker_for(space, engine)


def build_sba_model(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
) -> BAModel:
    """Build an SBA model for a named exchange and failure model.

    Parameters mirror the paper's experiments: ``exchange`` is one of
    ``floodset``, ``count``, ``diff`` or ``dwork-moses``; ``failures`` is one
    of ``crash``, ``sending``, ``receiving`` or ``general``; the number of
    decision values defaults to 2 as in Tables 1 and 2.
    """
    if exchange not in SBA_EXCHANGES:
        raise ValueError(f"{exchange!r} is not an SBA exchange (expected one of {SBA_EXCHANGES})")
    exchange_obj = exchange_by_name(exchange, num_agents, num_values, max_faulty)
    failures_obj = failure_model_by_name(failures, num_agents, max_faulty)
    return BAModel(exchange_obj, failures_obj)


def build_eba_model(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
) -> BAModel:
    """Build an EBA model for a named exchange and failure model.

    ``exchange`` is ``emin`` or ``ebasic``; the value domain is fixed to
    ``{0, 1}`` as in the paper.  The optimality result for ``P0`` applies to
    the sending-omissions model (which subsumes crash failures), so that is
    the default failure model; ``crash`` matches the other half of Table 3.
    """
    if exchange not in EBA_EXCHANGES:
        raise ValueError(f"{exchange!r} is not an EBA exchange (expected one of {EBA_EXCHANGES})")
    exchange_obj = exchange_by_name(exchange, num_agents, 2, max_faulty)
    failures_obj = failure_model_by_name(failures, num_agents, max_faulty)
    return BAModel(exchange_obj, failures_obj)
