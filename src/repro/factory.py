"""Deprecated convenience constructors (thin shims over :mod:`repro.api`).

This module was the original loose-kwargs public surface.  The facade in
:mod:`repro.api` replaced it: build a validated
:class:`~repro.api.Scenario` and query a :class:`~repro.api.Session` (or
call :func:`repro.api.build_model` for the bare model).  The constructors
here remain as behaviour-identical shims that emit ``DeprecationWarning``;
they will be removed once nothing imports them.
"""

from __future__ import annotations

import warnings

from repro.api import EBA_EXCHANGES, SBA_EXCHANGES, Scenario, build_model
from repro.engines import DEFAULT_ENGINE, ENGINES, checker_for, validate_engine
from repro.systems.model import BAModel
from repro.systems.space import LevelledSpace

__all__ = [
    "DEFAULT_ENGINE",
    "EBA_EXCHANGES",
    "ENGINES",
    "SBA_EXCHANGES",
    "build_checker",
    "build_eba_model",
    "build_sba_model",
    "checker_for",
    "validate_engine",
]


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.factory.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def build_checker(space: LevelledSpace, engine: str = DEFAULT_ENGINE):
    """Deprecated: use :func:`repro.engines.checker_for` (or a Session).

    ``engine`` is one of :data:`repro.engines.ENGINES`; unknown names raise
    ``ValueError`` listing the known engines.
    """
    _deprecated("build_checker", "repro.engines.checker_for or repro.api.Session")
    return checker_for(space, engine)


def build_sba_model(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
) -> BAModel:
    """Deprecated: use ``repro.api.build_model(Scenario(...))``.

    Parameters mirror the paper's experiments: ``exchange`` is one of
    ``floodset``, ``count``, ``diff`` or ``dwork-moses``; ``failures`` is one
    of ``crash``, ``sending``, ``receiving`` or ``general``; the number of
    decision values defaults to 2 as in Tables 1 and 2.
    """
    _deprecated("build_sba_model", "repro.api.build_model(Scenario(...))")
    if exchange not in SBA_EXCHANGES:
        raise ValueError(f"{exchange!r} is not an SBA exchange (expected one of {SBA_EXCHANGES})")
    return build_model(
        Scenario(
            exchange=exchange,
            num_agents=num_agents,
            max_faulty=max_faulty,
            num_values=num_values,
            failures=failures,
        )
    )


def build_eba_model(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
) -> BAModel:
    """Deprecated: use ``repro.api.build_model(Scenario(...))``.

    ``exchange`` is ``emin`` or ``ebasic``; the value domain is fixed to
    ``{0, 1}`` as in the paper.  The optimality result for ``P0`` applies to
    the sending-omissions model (which subsumes crash failures), so that is
    the default failure model; ``crash`` matches the other half of Table 3.
    """
    _deprecated("build_eba_model", "repro.api.build_model(Scenario(...))")
    if exchange not in EBA_EXCHANGES:
        raise ValueError(f"{exchange!r} is not an EBA exchange (expected one of {EBA_EXCHANGES})")
    return build_model(
        Scenario(
            exchange=exchange,
            num_agents=num_agents,
            max_faulty=max_faulty,
            failures=failures,
        )
    )
