"""Pluggable satisfaction-engine selection.

The repository ships three satisfaction backends over the same
:class:`~repro.systems.space.LevelledSpace` and :mod:`repro.logic` formula
AST:

* ``bitset`` — the explicit packed-bitset engine
  (:class:`~repro.core.checker.ModelChecker`); the default and the fastest
  on the paper's table workloads.
* ``symbolic`` — the BDD-backed engine
  (:class:`~repro.symbolic.checker.SymbolicChecker`), which represents
  satisfaction sets and the epistemic relations as factored BDDs.
* ``set`` — the literal set-based reference engine
  (:class:`~repro.core.reference.SetChecker`), retained as the executable
  specification and test oracle.

Every layer that evaluates formulas (synthesis, KBP verification, harness
tasks, the CLI) takes an ``engine`` parameter validated by
:func:`validate_engine` and instantiates its checker through
:func:`checker_for`, so backends can never be mixed silently within one
computation.
"""

from __future__ import annotations

from typing import List

from repro.logic.formula import Formula

#: The known satisfaction engines, in preference order.
ENGINES = ("bitset", "symbolic", "set")

#: The engine used when none is requested.
DEFAULT_ENGINE = "bitset"


def validate_engine(engine: str) -> str:
    """Check an engine name against the known backends.

    Returns the name unchanged; raises ``ValueError`` with the list of known
    engines otherwise (the CLI surfaces this via ``argparse`` choices, the
    task layer via the runner's error channel).
    """
    if engine not in ENGINES:
        raise ValueError(
            f"{engine!r} is not a satisfaction engine (expected one of {ENGINES})"
        )
    return engine


def checker_for(space, engine: str = DEFAULT_ENGINE):
    """A fresh checker over ``space`` for the requested engine.

    All three checkers expose ``check``, ``holds_at``, ``holds_initially``
    and ``holds_everywhere``; the bitset and symbolic engines additionally
    expose ``check_bits`` (use :func:`check_bits` to consume any of them in
    packed form).
    """
    validate_engine(engine)
    if engine == "bitset":
        return ModelChecker(space)
    if engine == "symbolic":
        return SymbolicChecker(space)
    return SetChecker(space)


def check_bits(checker, formula: Formula) -> List[int]:
    """A checker's satisfaction set in packed bitmask form, whatever the engine.

    Uses the engine's native ``check_bits`` when it has one; the set-based
    reference engine is adapted through
    :func:`~repro.core.bitset.from_level_sets`.
    """
    native = getattr(checker, "check_bits", None)
    if native is not None:
        return native(formula)
    return from_level_sets(checker.check(formula))


# These imports live at the bottom of the module, not inside the functions
# above: repro.core's package init pulls in the synthesis layer, which
# imports this module, so top-of-module imports would hit the cycle while
# this module's names are still undefined.  By the time the imports below
# execute, every public name above is bound, so the cycle resolves in
# either entry order — and the checker classes are fully imported while
# the process is still single-threaded, which is what IMP01 demands
# (serving threads must never be first to execute an import).
from repro.core.bitset import from_level_sets  # noqa: E402
from repro.core.checker import ModelChecker  # noqa: E402
from repro.core.reference import SetChecker  # noqa: E402
from repro.symbolic.checker import SymbolicChecker  # noqa: E402
