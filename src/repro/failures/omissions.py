"""Omission failure models.

In the omission models, the set of faulty agents is fixed by the adversary at
the start of the run (at most ``t`` agents), and faulty agents never stop
participating; instead, some of the messages they send (sending omissions),
receive (receiving omissions), or both (general omissions) may be lost.

The environment state is the set of faulty agents; there is no per-round
fault evolution, so :meth:`round_choices` yields a single trivial choice and
all the adversary's per-round freedom lives in the optional deliveries.

The indexical nonfaulty set ``N`` is the complement of the faulty set.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable

from repro.failures.base import DeliveryMode, FailureModel

#: Environment state: the (fixed) set of faulty agents.
OmissionEnv = FrozenSet[int]


class OmissionFailures(FailureModel):
    """Common machinery for the omission failure models."""

    name = "omission"

    def initial_env_states(self) -> Iterable[OmissionEnv]:
        for size in range(0, self.max_faulty + 1):
            for subset in combinations(self.agents(), size):
                yield frozenset(subset)

    def round_choices(self, env: OmissionEnv) -> Iterable[None]:
        yield None

    def apply_choice(self, env: OmissionEnv, choice: None) -> OmissionEnv:
        return env

    def nonfaulty(self, env: OmissionEnv, agent: int) -> bool:
        return agent not in env


class SendingOmissions(OmissionFailures):
    """``Sending-Omissions(t)``: faulty agents may fail to send messages."""

    name = "sending"

    def delivery_mode(
        self, env: OmissionEnv, choice: None, sender: int, recipient: int
    ) -> DeliveryMode:
        if sender == recipient:
            return DeliveryMode.ALWAYS
        if sender in env:
            return DeliveryMode.OPTIONAL
        return DeliveryMode.ALWAYS


class ReceivingOmissions(OmissionFailures):
    """``Receiving-Omissions(t)``: faulty agents may fail to receive messages."""

    name = "receiving"

    def delivery_mode(
        self, env: OmissionEnv, choice: None, sender: int, recipient: int
    ) -> DeliveryMode:
        if sender == recipient:
            return DeliveryMode.ALWAYS
        if recipient in env:
            return DeliveryMode.OPTIONAL
        return DeliveryMode.ALWAYS


class GeneralOmissions(OmissionFailures):
    """``General-Omissions(t)``: faulty agents may fail to send or receive."""

    name = "general"

    def delivery_mode(
        self, env: OmissionEnv, choice: None, sender: int, recipient: int
    ) -> DeliveryMode:
        if sender == recipient:
            return DeliveryMode.ALWAYS
        if sender in env or recipient in env:
            return DeliveryMode.OPTIONAL
        return DeliveryMode.ALWAYS
