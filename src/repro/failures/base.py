"""Abstract interface for failure models.

A failure model plays two roles in the reproduction:

1. **Environment nondeterminism for model checking.**  When building the
   levelled state space, failures are resolved round by round: the model
   enumerates the *global* fault choices for a round (for example, which
   agents newly crash) via :meth:`FailureModel.round_choices`, and then for
   every (sender, recipient) pair classifies message delivery as certain,
   impossible or optional via :meth:`FailureModel.delivery_mode`.  Optional
   deliveries are resolved independently per recipient, which is what allows
   the state-space builder to enumerate successors as a product of
   per-recipient outcome sets.

2. **The indexical nonfaulty set.**  The knowledge conditions of the paper
   quantify over the indexical set ``N`` of nonfaulty agents;
   :meth:`FailureModel.nonfaulty` defines it per environment state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import Hashable, Iterable, Tuple


class DeliveryMode(Enum):
    """Classification of a single (sender, recipient) delivery in a round."""

    #: The message is certainly delivered.
    ALWAYS = "always"
    #: The message is certainly not delivered.
    NEVER = "never"
    #: The adversary may or may not deliver the message.
    OPTIONAL = "optional"


class FailureModel(ABC):
    """Abstract base class for failure models.

    Parameters
    ----------
    num_agents:
        The number of agents ``n``.
    max_faulty:
        The failure bound ``t`` (maximum number of faulty agents).
    """

    #: Short name used in tables and benchmark output.
    name: str = "failure"

    def __init__(self, num_agents: int, max_faulty: int) -> None:
        if num_agents < 1:
            raise ValueError("num_agents must be at least 1")
        if max_faulty < 0 or max_faulty > num_agents:
            raise ValueError("max_faulty must be between 0 and num_agents")
        self.num_agents = num_agents
        self.max_faulty = max_faulty

    # -- environment states ---------------------------------------------------

    @abstractmethod
    def initial_env_states(self) -> Iterable[Hashable]:
        """All possible initial environment states (e.g. choices of faulty sets)."""

    @abstractmethod
    def round_choices(self, env: Hashable) -> Iterable[Hashable]:
        """Global fault choices available to the adversary in one round."""

    @abstractmethod
    def apply_choice(self, env: Hashable, choice: Hashable) -> Hashable:
        """The environment state after the round, given the fault choice."""

    # -- message delivery ------------------------------------------------------

    @abstractmethod
    def delivery_mode(
        self, env: Hashable, choice: Hashable, sender: int, recipient: int
    ) -> DeliveryMode:
        """How delivery from ``sender`` to ``recipient`` is resolved this round."""

    def can_send(self, env: Hashable, choice: Hashable, agent: int) -> bool:
        """Whether ``agent`` produces any messages this round.

        Crashed agents produce none; by default every agent sends.
        """
        return True

    def can_act(self, env: Hashable, agent: int) -> bool:
        """Whether ``agent`` still executes its decision protocol.

        Crashed agents stop acting; omission-faulty agents keep acting.
        """
        return True

    # -- the indexical nonfaulty set ------------------------------------------

    @abstractmethod
    def nonfaulty(self, env: Hashable, agent: int) -> bool:
        """Whether ``agent`` belongs to the indexical nonfaulty set ``N``."""

    def nonfaulty_set(self, env: Hashable) -> Tuple[int, ...]:
        """The tuple of agents in ``N`` at this environment state."""
        return tuple(
            agent for agent in range(self.num_agents) if self.nonfaulty(env, agent)
        )

    def agents(self) -> range:
        """All agent identifiers ``0 .. n - 1``."""
        return range(self.num_agents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.num_agents}, t={self.max_faulty})"
