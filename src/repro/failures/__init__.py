"""Failure models.

The paper considers synchronous message passing with at most ``t`` faulty
agents, under the following failure models (Section 3):

* :class:`~repro.failures.crash.CrashFailures` — a faulty agent crashes in
  some round, sending an arbitrary subset of that round's messages and
  nothing afterwards.
* :class:`~repro.failures.omissions.SendingOmissions` — a faulty agent may
  omit any of its sends but receives everything.
* :class:`~repro.failures.omissions.ReceivingOmissions` — a faulty agent may
  fail to receive any message sent to it.
* :class:`~repro.failures.omissions.GeneralOmissions` — both of the above.

Each model resolves failures round by round (as the MCK scripts do) via
:meth:`~repro.failures.base.FailureModel.round_choices` and per-(sender,
recipient) :meth:`~repro.failures.base.FailureModel.delivery_mode`, and
defines the indexical nonfaulty set ``N`` used by the knowledge conditions.
"""

from repro.failures.base import DeliveryMode, FailureModel
from repro.failures.crash import CrashFailures
from repro.failures.omissions import (
    GeneralOmissions,
    OmissionFailures,
    ReceivingOmissions,
    SendingOmissions,
)

__all__ = [
    "DeliveryMode",
    "FailureModel",
    "FAILURE_MODELS",
    "CrashFailures",
    "OmissionFailures",
    "SendingOmissions",
    "ReceivingOmissions",
    "GeneralOmissions",
]

_REGISTRY = {
    "crash": CrashFailures,
    "sending": SendingOmissions,
    "receiving": ReceivingOmissions,
    "general": GeneralOmissions,
}

#: The known failure-model names, in the paper's order of strength.
FAILURE_MODELS = tuple(_REGISTRY)


def failure_model_by_name(name: str, num_agents: int, max_faulty: int) -> FailureModel:
    """Construct a failure model from its short name.

    Recognised names: ``crash``, ``sending``, ``receiving``, ``general``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown failure model {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from exc
    return factory(num_agents, max_faulty)
