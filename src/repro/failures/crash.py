"""The crash failures model ``Crash(t)``.

A faulty agent crashes during some round: in its crash round it sends an
arbitrary subset of the messages it was supposed to send, and in later rounds
it sends nothing.  At most ``t`` agents crash in a run.

Following the MCK script in the paper's appendix, crashes are resolved round
by round rather than fixed up front: the environment tracks, per agent, a
status in ``{ALIVE, CRASHED}`` together with the number of crashes so far, and
in each round the adversary selects a set of currently alive agents that crash
during that round (keeping the total at most ``t``).  An agent crashing in the
current round corresponds to the script's ``CRASHING`` status: its messages
are delivered to an arbitrary subset of the recipients.

The indexical nonfaulty set ``N`` consists of the agents that have not (yet)
crashed, matching the script's ``status == ALIVE`` condition.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Tuple

from repro.failures.base import DeliveryMode, FailureModel

#: Environment state: a tuple of per-agent "has crashed" flags.
CrashEnv = Tuple[bool, ...]

#: Round choice: the set of agents that crash during this round.
CrashChoice = FrozenSet[int]


class CrashFailures(FailureModel):
    """Crash failures with at most ``t`` crashes, resolved round by round."""

    name = "crash"

    def initial_env_states(self) -> Iterable[CrashEnv]:
        yield tuple(False for _ in range(self.num_agents))

    def round_choices(self, env: CrashEnv) -> Iterable[CrashChoice]:
        crashed_so_far = sum(1 for crashed in env if crashed)
        budget = self.max_faulty - crashed_so_far
        alive = [agent for agent in self.agents() if not env[agent]]
        for size in range(0, min(budget, len(alive)) + 1):
            for subset in combinations(alive, size):
                yield frozenset(subset)

    def apply_choice(self, env: CrashEnv, choice: CrashChoice) -> CrashEnv:
        return tuple(env[agent] or agent in choice for agent in self.agents())

    def delivery_mode(
        self, env: CrashEnv, choice: CrashChoice, sender: int, recipient: int
    ) -> DeliveryMode:
        if env[sender]:
            return DeliveryMode.NEVER
        if sender in choice:
            # A crashing agent sends an arbitrary subset of its messages.  Its
            # message to itself is treated as delivered: the agent is excluded
            # from the nonfaulty set from the next round onwards, so this
            # choice does not affect any knowledge condition, and fixing it
            # keeps the state space smaller.
            if sender == recipient:
                return DeliveryMode.ALWAYS
            return DeliveryMode.OPTIONAL
        return DeliveryMode.ALWAYS

    def can_send(self, env: CrashEnv, choice: CrashChoice, agent: int) -> bool:
        return not env[agent]

    def can_act(self, env: CrashEnv, agent: int) -> bool:
        return not env[agent]

    def nonfaulty(self, env: CrashEnv, agent: int) -> bool:
        return not env[agent]
