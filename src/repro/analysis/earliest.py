"""Summaries of the earliest times at which the knowledge conditions hold.

Consumes the observation-level predicates of an
:class:`~repro.core.synthesis.SBASynthesisResult`; the underlying knowledge
conditions are evaluated by synthesis as packed per-level bitmasks and
projected onto observation groups before they reach this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.core.synthesis import SBASynthesisResult


@dataclass(frozen=True)
class EarliestDecisionSummary:
    """Earliest decision opportunities derived from a synthesis result."""

    #: Earliest time at which the condition holds for some value at some
    #: reachable observation (None if it never holds within the horizon).
    earliest_any: Optional[int]
    #: Earliest time at which the condition holds at *every* reachable
    #: observation where the value has been seen (the "general" decision time).
    earliest_general: Optional[int]
    #: Per time, the number of reachable observations (agent 0) at which the
    #: condition holds for some value.
    per_time_counts: Dict[int, int]


def earliest_condition_renderings(
    result: SBASynthesisResult, agent: int = 0, method: str = "auto"
) -> Dict[Hashable, str]:
    """For each decision value, the minimised condition at its earliest time.

    Renders, per value, the synthesized condition of ``agent`` at the first
    time the condition holds at some reachable observation — the formula the
    paper would present for that decision opportunity.  Values whose
    condition never holds within the horizon are omitted.  ``method`` picks
    the minimisation backend (see
    :func:`repro.core.minimize.truth_table_minimise`).
    """
    renderings: Dict[Hashable, str] = {}
    for value in result.model.values():
        for time in range(result.space.horizon + 1):
            predicate = result.conditions.get(agent, time, value)
            if predicate is not None and not predicate.always_false():
                renderings[value] = predicate.describe(method=method)
                break
    return renderings


def earliest_decision_summary(result: SBASynthesisResult) -> EarliestDecisionSummary:
    """Summarise when the synthesized SBA condition first becomes usable.

    The summary looks at agent 0 (the models are symmetric in the agents) and
    aggregates over the decision values.
    """
    model = result.model
    per_time_counts: Dict[int, int] = {}
    earliest_any: Optional[int] = None
    earliest_general: Optional[int] = None

    for time in range(result.space.horizon + 1):
        positive_observations = set()
        general = True
        for value in model.values():
            predicate = result.conditions.get(0, time, value)
            if predicate is None:
                general = False
                continue
            positive_observations |= predicate.positive
            for observation in predicate.reachable:
                features = predicate.features_of[observation]
                seen_key = f"values_received[{value}]"
                seen = bool(features.get(seen_key, False))
                crashed = features.get("count", 1) == 0
                if seen and not crashed and not predicate.holds(observation):
                    general = False
        count = len(positive_observations)
        per_time_counts[time] = count
        if count and earliest_any is None:
            earliest_any = time
        if general and time > 0 and earliest_general is None:
            earliest_general = time

    return EarliestDecisionSummary(
        earliest_any=earliest_any,
        earliest_general=earliest_general,
        per_time_counts=per_time_counts,
    )
