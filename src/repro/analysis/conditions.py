"""Closed-form decision conditions from the paper, as checkable hypotheses.

The paper reports three qualitative findings for SBA under crash failures
(Sections 7.1–7.3), which this module expresses as hypotheses over the
observable features of the exchanges so that they can be compared with the
conditions synthesized by :func:`repro.core.synthesis.synthesize_sba`:

* **Condition (2), FloodSet**: the knowledge condition ``B^N_i CB_N ∃v``
  first holds at the *critical time* ``n - 1`` when ``t >= n - 1`` and
  ``t + 1`` otherwise, and at (and after) that time it is equivalent to
  ``values_received[v]``.
* **Condition (3), Count-FloodSet**: additionally, the condition holds as
  soon as ``count <= 1`` (all other agents have crashed), but ``count <= 2``
  does not suffice.
* **Diff**: remembering the previous count gives no stronger SBA condition
  than the single count.

The hypotheses are checked against the synthesized
:class:`~repro.core.predicates.ObservationPredicate` tables: synthesis
evaluates the knowledge conditions as packed per-level bitmasks (see
:func:`repro.core.synthesis._level_knowledge_conditions` and
``docs/ARCHITECTURE.md``) and projects them onto observation groups, so this
module only ever sees observation-level predicates and their named features.

Note on the ``t >= n - 1`` corner of condition (3): the paper states the
general-time disjunct for the count exchange as ``time = t`` whereas the
FloodSet condition (2) uses ``time = n - 1``.  In our model the synthesized
count condition at that corner coincides with the FloodSet critical time
``n - 1`` (adding the count cannot delay the FloodSet decision in our
semantics); the two agree whenever ``t = n - 1`` and differ only at ``t = n``.
The hypothesis below uses the critical time ``n - 1``; see EXPERIMENTS.md for
the discussion.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.core.predicates import ConditionTable, HypothesisReport
from repro.core.synthesis import SBASynthesisResult
from repro.protocols.sba import floodset_critical_time

Features = Mapping[str, Hashable]


def naive_floodset_hypothesis(num_agents: int, max_faulty: int, value: int):
    """The textbook hypothesis: the condition first holds at time ``t + 1``.

    The paper's first experiment shows this to be *false* when
    ``t >= n - 1`` (e.g. ``n = 3, t = 2``): the condition already holds at
    time ``n - 1``.
    """

    def hypothesis(agent: int, time: int, features: Features) -> bool:
        return time >= max_faulty + 1 and bool(features[f"values_received[{value}]"])

    return hypothesis


def floodset_condition_hypothesis(num_agents: int, max_faulty: int, value: int):
    """The paper's condition (2) for the FloodSet exchange."""
    critical = floodset_critical_time(num_agents, max_faulty)

    def hypothesis(agent: int, time: int, features: Features) -> bool:
        return time >= critical and bool(features[f"values_received[{value}]"])

    return hypothesis


def count_condition_hypothesis(num_agents: int, max_faulty: int, value: int):
    """The paper's condition (3) for the Count-FloodSet exchange.

    ``count <= 1`` (only the agent itself is left) enables an immediate
    decision; otherwise the FloodSet critical time applies.  ``count == 0``
    identifies an agent that has itself crashed, for which the belief
    condition holds vacuously (the agent knows it is not in ``N``).
    """
    critical = floodset_critical_time(num_agents, max_faulty)

    def hypothesis(agent: int, time: int, features: Features) -> bool:
        count = features["count"]
        seen = bool(features[f"values_received[{value}]"])
        if time == 0:
            return False
        if count == 0:
            return True
        if count <= 1 and seen:
            return True
        return time >= critical and seen

    return hypothesis


def check_count_le_two_insufficient(result: SBASynthesisResult) -> bool:
    """Check the paper's remark that ``count <= 2`` does not enable a decision.

    Returns ``True`` when there exists a reachable observation, before the
    critical time, with ``count == 2`` and the value seen but the synthesized
    condition false — i.e. ``count <= 2`` alone is *not* a sufficient early
    exit.  Instances in which no such observation is reachable (e.g. very
    small ``n``) return ``False``.
    """
    model = result.model
    critical = floodset_critical_time(model.num_agents, model.max_faulty)
    for (agent, time, label), predicate in result.conditions.conditions.items():
        if not isinstance(label, int) or time == 0 or time >= critical:
            continue
        for observation in predicate.reachable:
            features = predicate.features_of[observation]
            if (
                features["count"] == 2
                and features[f"values_received[{label}]"]
                and not predicate.holds(observation)
            ):
                return True
    return False


def check_diff_no_improvement(
    diff_result: SBASynthesisResult, count_result: SBASynthesisResult
) -> bool:
    """Check that the Diff exchange admits no earlier SBA decision than Count.

    The Diff observation extends the Count observation with the previous
    round's count.  The check projects every reachable Diff observation onto
    its Count part (seen values and current count) and verifies that the
    synthesized Diff condition agrees with the synthesized Count condition on
    the projection — i.e. remembering the previous count does not refine the
    decision condition.
    """
    for (agent, time, label), diff_pred in diff_result.conditions.conditions.items():
        count_pred = count_result.conditions.get(agent, time, label)
        if count_pred is None:
            return False
        count_by_obs = {
            observation: count_pred.holds(observation)
            for observation in count_pred.reachable
        }
        for observation in diff_pred.reachable:
            seen, count, _prev = observation
            projected = (seen, count)
            if projected not in count_by_obs:
                # The projection must be reachable in the Count model too.
                return False
            if diff_pred.holds(observation) != count_by_obs[projected]:
                return False
    return True


def confirm_hypothesis(
    conditions: ConditionTable, value: int, hypothesis
) -> HypothesisReport:
    """Convenience wrapper around :meth:`ConditionTable.check_hypothesis`."""
    return conditions.check_hypothesis(value, hypothesis)
