"""Analyses of the synthesized conditions against the paper's results.

* :mod:`repro.analysis.conditions` — the closed-form decision conditions the
  paper derives or hypothesises (conditions (2) and (3), the ``count <= 2``
  insufficiency, the Diff no-improvement result), expressed as hypotheses
  over observable features and checked against synthesized condition tables.
* :mod:`repro.analysis.earliest` — summaries of the earliest times at which
  the knowledge conditions hold.
"""

from repro.analysis.conditions import (
    check_count_le_two_insufficient,
    check_diff_no_improvement,
    count_condition_hypothesis,
    floodset_condition_hypothesis,
    floodset_critical_time,
    naive_floodset_hypothesis,
)
from repro.analysis.earliest import (
    earliest_condition_renderings,
    earliest_decision_summary,
)

__all__ = [
    "floodset_critical_time",
    "floodset_condition_hypothesis",
    "naive_floodset_hypothesis",
    "count_condition_hypothesis",
    "check_count_le_two_insufficient",
    "check_diff_no_improvement",
    "earliest_condition_renderings",
    "earliest_decision_summary",
]
