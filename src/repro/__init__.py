"""Reproduction of *Model Checking and Synthesis for Optimal Use of Knowledge
in Consensus Protocols* (PODC 2025).

The package provides:

* an epistemic model checker and knowledge-based-program synthesizer under
  the clock semantics of knowledge (:mod:`repro.core`), with a symbolic BDD
  backend (:mod:`repro.symbolic`) selectable through :mod:`repro.engines`,
* the information exchanges and failure models studied by the paper
  (:mod:`repro.exchanges`, :mod:`repro.failures`),
* the concrete decision protocols from the literature
  (:mod:`repro.protocols`),
* specifications and optimality analyses for Simultaneous and Eventual
  Byzantine Agreement (:mod:`repro.spec`, :mod:`repro.analysis`),
* a benchmark harness that regenerates the paper's tables
  (:mod:`repro.harness`).

The public facade is :mod:`repro.api` — a validated, hashable
:class:`~repro.api.Scenario`, a memoising :class:`~repro.api.Session`, a
versioned typed result schema, and the ``repro serve`` JSON service.

Quick start::

    from repro import Scenario, Session

    session = Session()
    scenario = Scenario(exchange="floodset", num_agents=3, max_faulty=1)
    result = session.synthesis_artifact(scenario)
    print(result.conditions.describe())
"""

from repro.version import __version__
from repro.api import (
    CheckResult,
    Scenario,
    Session,
    SynthesisResult,
    build_model,
    result_from_json,
)
from repro.engines import DEFAULT_ENGINE, ENGINES, checker_for
from repro.factory import build_checker, build_eba_model, build_sba_model
from repro.core.synthesis import synthesize_eba, synthesize_sba
from repro.core.checker import ModelChecker
from repro.symbolic import SymbolicChecker
from repro.systems.model import BAModel
from repro.systems.space import build_space

__all__ = [
    "__version__",
    "CheckResult",
    "Scenario",
    "Session",
    "SynthesisResult",
    "build_model",
    "result_from_json",
    "build_sba_model",
    "build_eba_model",
    "build_checker",
    "checker_for",
    "synthesize_sba",
    "synthesize_eba",
    "ModelChecker",
    "SymbolicChecker",
    "BAModel",
    "build_space",
    "DEFAULT_ENGINE",
    "ENGINES",
]
