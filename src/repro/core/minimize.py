"""Two-level minimisation of boolean functions (Quine–McCluskey).

The synthesizer produces decision conditions as sets of observations.  To
present them the way MCK presents its synthesized ``define`` statements (and
the way the paper states conditions (2) and (3)), we minimise the
characteristic function of the condition over the observation features.

The implementation is the classic Quine–McCluskey procedure with a greedy
prime-implicant cover (essential primes first, then largest coverage).  It is
exact in the sense that the returned implicants cover exactly the on-set and
never a point of the off-set; the cover is not guaranteed to be of globally
minimal size, which is acceptable for presentation purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: An implicant over ``k`` boolean variables: a tuple with one entry per
#: variable, each ``True`` (positive literal), ``False`` (negative literal) or
#: ``None`` (don't care / variable eliminated).
Implicant = Tuple[Optional[bool], ...]


@dataclass(frozen=True)
class Cover:
    """A minimised sum-of-products cover of a boolean function."""

    num_variables: int
    implicants: Tuple[Implicant, ...]

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the cover on a full variable assignment."""
        return any(_implicant_matches(implicant, assignment) for implicant in self.implicants)

    def render(self, names: Sequence[str]) -> str:
        """Render as a human-readable DNF using the given variable names."""
        if not self.implicants:
            return "False"
        terms = []
        for implicant in self.implicants:
            literals = []
            for position, polarity in enumerate(implicant):
                if polarity is None:
                    continue
                literal = names[position] if polarity else f"~{names[position]}"
                literals.append(literal)
            terms.append(" & ".join(literals) if literals else "True")
        return " | ".join(terms)


def _implicant_matches(implicant: Implicant, assignment: Sequence[bool]) -> bool:
    return all(
        polarity is None or bool(assignment[position]) == polarity
        for position, polarity in enumerate(implicant)
    )


def _minterm_to_implicant(minterm: int, num_variables: int) -> Implicant:
    return tuple(
        bool((minterm >> (num_variables - 1 - position)) & 1)
        for position in range(num_variables)
    )


def _combine(left: Implicant, right: Implicant) -> Optional[Implicant]:
    """Combine two implicants differing in exactly one specified position."""
    difference = -1
    for position, (a, b) in enumerate(zip(left, right)):
        if a == b:
            continue
        if a is None or b is None:
            return None
        if difference >= 0:
            return None
        difference = position
    if difference < 0:
        return None
    merged = list(left)
    merged[difference] = None
    return tuple(merged)


def prime_implicants(
    num_variables: int, minterms: Iterable[int], dont_cares: Iterable[int] = ()
) -> Set[Implicant]:
    """All prime implicants of the function given by its on-set and DC-set."""
    current: Set[Implicant] = {
        _minterm_to_implicant(term, num_variables)
        for term in set(minterms) | set(dont_cares)
    }
    primes: Set[Implicant] = set()
    while current:
        combined_sources: Set[Implicant] = set()
        next_level: Set[Implicant] = set()
        items = sorted(current, key=_implicant_sort_key)
        for index, left in enumerate(items):
            for right in items[index + 1 :]:
                merged = _combine(left, right)
                if merged is not None:
                    next_level.add(merged)
                    combined_sources.add(left)
                    combined_sources.add(right)
        primes.update(current - combined_sources)
        current = next_level
    return primes


def _implicant_sort_key(implicant: Implicant) -> Tuple:
    return tuple(2 if value is None else int(value) for value in implicant)


def minimise(
    num_variables: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
) -> Cover:
    """Minimise a boolean function given by minterm indices.

    Minterm ``m`` assigns variable ``j`` the value of bit
    ``num_variables - 1 - j`` of ``m`` (variable 0 is the most significant
    bit), matching the usual truth-table convention.
    """
    on_set = sorted(set(minterms))
    dc_set = set(dont_cares) - set(on_set)
    if not on_set:
        return Cover(num_variables=num_variables, implicants=())
    if num_variables == 0:
        return Cover(num_variables=0, implicants=((),))

    primes = prime_implicants(num_variables, on_set, dc_set)

    # Coverage bookkeeping on packed bitmasks: bit p of a coverage mask stands
    # for on-set minterm on_set[p], so subset/overlap tests on the greedy
    # cover are single integer operations.
    coverage: Dict[Implicant, int] = {}
    for prime in primes:
        covered = 0
        for position, term in enumerate(on_set):
            if _implicant_matches(prime, _minterm_to_implicant(term, num_variables)):
                covered |= 1 << position
        if covered:
            coverage[prime] = covered

    chosen: List[Implicant] = []
    uncovered = (1 << len(on_set)) - 1

    # Essential prime implicants first.
    for position in range(len(on_set)):
        term_bit = 1 << position
        covering = [prime for prime, covered in coverage.items() if covered & term_bit]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            uncovered &= ~coverage[covering[0]]

    # Greedy cover for the rest.
    while uncovered:
        best = max(
            coverage.items(),
            key=lambda item: ((item[1] & uncovered).bit_count(), -_specificity(item[0])),
        )[0]
        if not coverage[best] & uncovered:
            # No progress is possible; should not happen, but guard anyway.
            break
        chosen.append(best)
        uncovered &= ~coverage[best]

    ordered = tuple(sorted(set(chosen), key=_implicant_sort_key))
    return Cover(num_variables=num_variables, implicants=ordered)


def _specificity(implicant: Implicant) -> int:
    return sum(1 for value in implicant if value is not None)


def truth_table_minimise(
    assignments: Dict[Tuple[bool, ...], bool],
    reachable_only: bool = True,
) -> Cover:
    """Minimise a function given as a mapping from assignments to values.

    Assignments missing from the mapping are treated as don't-cares when
    ``reachable_only`` is true (the usual case: unreachable observations may
    be classified arbitrarily), and as off-set points otherwise.
    """
    if not assignments:
        return Cover(num_variables=0, implicants=())
    num_variables = len(next(iter(assignments)))
    minterms = []
    specified = set()
    for assignment, value in assignments.items():
        index = _assignment_to_index(assignment)
        specified.add(index)
        if value:
            minterms.append(index)
    dont_cares: Set[int] = set()
    if reachable_only:
        dont_cares = set(range(2 ** num_variables)) - specified
    return minimise(num_variables, minterms, dont_cares)


def _assignment_to_index(assignment: Sequence[bool]) -> int:
    index = 0
    for value in assignment:
        index = (index << 1) | int(bool(value))
    return index
