"""Two-level minimisation of boolean functions (exact and heuristic backends).

The synthesizer produces decision conditions as sets of observations.  To
present them the way MCK presents its synthesized ``define`` statements (and
the way the paper states conditions (2) and (3)), we minimise the
characteristic function of the condition over the observation features.

Two backends share the :class:`~repro.core.cover.Cover` result type:

* :func:`minimise` — the classic **Quine–McCluskey** procedure with a greedy
  prime-implicant cover (essential primes first, then largest coverage).  It
  is exact in the sense that the returned implicants cover exactly the
  on-set and never a point of the off-set; the cover is not guaranteed to be
  of globally minimal size, which is acceptable for presentation purposes.
  Its cost grows with the *number of specified-or-don't-care minterms*, so
  it degrades exponentially when a sparse truth table over many variables
  turns the complement into don't-cares.
* :func:`~repro.core.espresso.espresso_minimise` — the heuristic cube-list
  minimiser (EXPAND / IRREDUNDANT / REDUCE), whose cost scales with the
  number of *specified* rows only.  Covers are prime and irredundant but may
  be slightly larger than the exact optimum.

:func:`truth_table_minimise` is the front door used by
:mod:`repro.core.predicates`: it picks the backend by variable count
(:data:`ESPRESSO_VARIABLE_THRESHOLD`, override with ``method=``) and
represents the don't-care set implicitly — as the complement of the
specified assignments — so no caller ever materialises ``2**k`` points.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.cover import (
    Cover,
    Implicant,
    assignment_to_index,
    implicant_covers_index,
    minterm_to_implicant,
)
from repro.core.espresso import espresso_minimise

__all__ = [
    "Cover",
    "Implicant",
    "ESPRESSO_VARIABLE_THRESHOLD",
    "MINIMISE_METHODS",
    "minimise",
    "prime_implicants",
    "truth_table_minimise",
]

#: Valid ``method=`` values accepted by :func:`truth_table_minimise` and the
#: describe/render entry points that forward to it.
MINIMISE_METHODS = ("auto", "qm", "espresso")

#: Above this many variables :func:`truth_table_minimise` switches from the
#: exact Quine–McCluskey backend to the espresso-style heuristic when the
#: backend is not forced with ``method=``.  At eight variables the implicit
#: don't-care complement is at most 256 minterms, which QM handles in
#: milliseconds; beyond that its prime enumeration blows up (the ROADMAP
#: repro: ~2 minutes for a 10-variable condition with 7 specified rows).
ESPRESSO_VARIABLE_THRESHOLD = 8


def _combine(left: Implicant, right: Implicant) -> Implicant | None:
    """Combine two implicants differing in exactly one specified position."""
    difference = -1
    for position, (a, b) in enumerate(zip(left, right)):
        if a == b:
            continue
        if a is None or b is None:
            return None
        if difference >= 0:
            return None
        difference = position
    if difference < 0:
        return None
    merged = list(left)
    merged[difference] = None
    return tuple(merged)


def prime_implicants(
    num_variables: int, minterms: Iterable[int], dont_cares: Iterable[int] = ()
) -> Set[Implicant]:
    """All prime implicants of the function given by its on-set and DC-set."""
    current: Set[Implicant] = {
        minterm_to_implicant(term, num_variables)
        for term in set(minterms) | set(dont_cares)
    }
    primes: Set[Implicant] = set()
    while current:
        combined_sources: Set[Implicant] = set()
        next_level: Set[Implicant] = set()
        items = sorted(current, key=_implicant_sort_key)
        for index, left in enumerate(items):
            for right in items[index + 1 :]:
                merged = _combine(left, right)
                if merged is not None:
                    next_level.add(merged)
                    combined_sources.add(left)
                    combined_sources.add(right)
        primes.update(current - combined_sources)
        current = next_level
    return primes


def _implicant_sort_key(implicant: Implicant) -> Tuple:
    return tuple(2 if value is None else int(value) for value in implicant)


def minimise(
    num_variables: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
) -> Cover:
    """Minimise a boolean function given by minterm indices (Quine–McCluskey).

    Minterm ``m`` assigns variable ``j`` the value of bit
    ``num_variables - 1 - j`` of ``m`` (variable 0 is the most significant
    bit), matching the usual truth-table convention.  ``dont_cares`` may be
    any iterable (including a lazy generator): it is consumed once.
    """
    on_set = sorted(set(minterms))
    dc_set = set(dont_cares) - set(on_set)
    if not on_set:
        return Cover(num_variables=num_variables, implicants=())
    if num_variables == 0:
        return Cover(num_variables=0, implicants=((),))

    primes = prime_implicants(num_variables, on_set, dc_set)

    # Coverage bookkeeping on packed bitmasks: bit p of a coverage mask stands
    # for on-set minterm on_set[p], so subset/overlap tests on the greedy
    # cover are single integer operations.  The primes are iterated in sorted
    # order because greedy ties below break by iteration position: implicants
    # contain ``None``, whose hash is id-based before Python 3.12, so raw set
    # order — and hence the chosen cover — would vary from process to process.
    coverage: Dict[Implicant, int] = {}
    for prime in sorted(primes, key=_implicant_sort_key):
        covered = 0
        for position, term in enumerate(on_set):
            if implicant_covers_index(prime, term, num_variables):
                covered |= 1 << position
        if covered:
            coverage[prime] = covered

    chosen: List[Implicant] = []
    uncovered = (1 << len(on_set)) - 1

    # Essential prime implicants first.
    for position in range(len(on_set)):
        term_bit = 1 << position
        covering = [prime for prime, covered in coverage.items() if covered & term_bit]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            uncovered &= ~coverage[covering[0]]

    # Greedy cover for the rest.
    while uncovered:
        best = max(
            coverage.items(),
            key=lambda item: ((item[1] & uncovered).bit_count(), -_specificity(item[0])),
        )[0]
        if not coverage[best] & uncovered:
            # No progress is possible; should not happen, but guard anyway.
            break
        chosen.append(best)
        uncovered &= ~coverage[best]

    ordered = tuple(sorted(set(chosen), key=_implicant_sort_key))
    return Cover(num_variables=num_variables, implicants=ordered)


def _specificity(implicant: Implicant) -> int:
    return sum(1 for value in implicant if value is not None)


def truth_table_minimise(
    assignments: Dict[Tuple[bool, ...], bool],
    reachable_only: bool = True,
    method: str = "auto",
) -> Cover:
    """Minimise a function given as a mapping from assignments to values.

    Assignments missing from the mapping are treated as don't-cares when
    ``reachable_only`` is true (the usual case: unreachable observations may
    be classified arbitrarily), and as off-set points otherwise.  The
    don't-care set is only ever represented implicitly, as the complement of
    the specified assignments — it is never materialised as a
    ``2**num_variables`` collection.

    ``method`` selects the backend: ``"qm"`` (exact Quine–McCluskey),
    ``"espresso"`` (heuristic, prime and irredundant but possibly
    non-minimal), or ``"auto"`` (the default): QM up to
    :data:`ESPRESSO_VARIABLE_THRESHOLD` variables, espresso above, where QM's
    implicit-complement expansion becomes intractable.
    """
    if method not in MINIMISE_METHODS:
        raise ValueError(f"unknown minimisation method {method!r}")
    if not assignments:
        return Cover(num_variables=0, implicants=())
    num_variables = len(next(iter(assignments)))
    on_set: List[int] = []
    off_set: List[int] = []
    for assignment, value in assignments.items():
        (on_set if value else off_set).append(assignment_to_index(assignment))

    if method == "auto":
        method = "espresso" if num_variables > ESPRESSO_VARIABLE_THRESHOLD else "qm"

    if method == "espresso":
        return espresso_minimise(
            num_variables, on_set, off_set if reachable_only else None
        )

    dont_cares: Iterable[int] = ()
    if reachable_only:
        # Lazy complement of the specified assignments; only the exact
        # backend expands it, and auto only routes small tables here.
        specified = set(on_set) | set(off_set)
        dont_cares = (
            index for index in range(2**num_variables) if index not in specified
        )
    return minimise(num_variables, on_set, dont_cares)
