"""Explicit-state epistemic model checking under the clock semantics.

The checker evaluates formulas of :mod:`repro.logic` over a
:class:`~repro.systems.space.LevelledSpace`.  Internally, satisfaction sets
are represented per time level as **packed bitsets** — one arbitrary-precision
Python ``int`` per level, bit ``j`` standing for state ``j``
(:data:`~repro.core.bitset.BitSat` = ``List[int]``).  This matches the
structure imposed by the clock semantics: the knowledge operators only relate
points at the same time, so every epistemic and propositional operator can be
evaluated level by level, while the bounded temporal operators are evaluated
by backward induction over the levels.

The packed representation makes the propositional connectives single integer
operations (``&``/``|``/``^``), and evaluates ``Knows(i, phi)`` with two mask
operations per observation block, using the observation-partition block masks
cached on the space (:meth:`LevelledSpace.observation_masks`).  Satisfaction
results are memoized per checker keyed on the structural formula hash (cached
on the immutable formula nodes, see :func:`repro.logic.formula.structural_hash`),
so the synthesis loop's repeated ``Knows``/``CommonBelief`` queries hit cache
across rounds.  The legacy ``List[Set[int]]`` representation remains available
through :meth:`ModelChecker.check` (a thin :func:`~repro.core.bitset.to_level_sets`
adapter over :meth:`ModelChecker.check_bits`) and, as an executable
specification, through :class:`repro.core.reference.SetChecker`.

Semantics of the operators (Section 2 of the paper):

* ``Knows(i, phi)`` holds at a point iff ``phi`` holds at every point of the
  same level with the same observation for ``i``.
* ``KnowsNonfaulty(i, phi)`` is ``K_i (i in N => phi)``.
* ``EveryoneBelieves(phi)`` holds at ``p`` iff ``KnowsNonfaulty(i, phi)``
  holds at ``p`` for every agent ``i`` in ``N(p)``.
* ``CommonBelief(phi)`` is the greatest fixpoint
  ``nu X . EveryoneBelieves(phi AND X)``.
* ``Nu(var, phi)`` is evaluated by iterating from the full set of points.
* The temporal operators are interpreted over the finite-horizon DAG with the
  final level treated as absorbing (each final-level point is its own unique
  successor), mirroring the bounded-time MCK scripts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitset import BitSat, blocks_within, to_level_sets
from repro.obs import profile as obs_profile
from repro.logic.formula import (
    Always,
    And,
    Atom,
    Bottom,
    CommonBelief,
    EvAlways,
    EvEventually,
    EvNext,
    EveryoneBelieves,
    Eventually,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Nu,
    Or,
    Top,
    Var,
    check_positive,
)
from repro.systems.space import LevelledSpace, Point

#: The legacy satisfaction-set form: one set of state indices per built level.
#: Produced by :meth:`ModelChecker.check`; the engine itself works on
#: :data:`~repro.core.bitset.BitSat`.
SatSet = List[Set[int]]


class PackedQueryMixin:
    """Query helpers over a ``check_bits`` engine.

    Shared by every checker that exposes ``self.space`` and a packed
    :meth:`check_bits` (the bitset and symbolic engines), so the query layer
    — the satisfaction notions the rest of the stack consumes — cannot
    drift between backends.  Engines with a cheaper native comparison may
    override individual queries (the symbolic checker answers ``holds_*``
    by BDD handle equality).
    """

    def check_bits(self, formula: Formula) -> BitSat:  # pragma: no cover
        raise NotImplementedError

    def holds_at(self, formula: Formula, point: Point) -> bool:
        """Whether the formula holds at a specific point."""
        time, index = point
        return bool((self.check_bits(formula)[time] >> index) & 1)

    def holds_initially(self, formula: Formula) -> bool:
        """Whether the formula holds at every initial (time 0) point.

        This is the satisfaction notion used for MCK ``spec`` statements.
        """
        return self.check_bits(formula)[0] == self.space.level_mask(0)

    def holds_everywhere(self, formula: Formula) -> bool:
        """Whether the formula holds at every reachable point."""
        bits = self.check_bits(formula)
        return all(
            bits[time] == self.space.level_mask(time)
            for time in range(len(self.space.levels))
        )

    def counterexamples(self, formula: Formula, limit: Optional[int] = None) -> List[Point]:
        """Points at which the formula fails (up to ``limit`` of them)."""
        bits = self.check_bits(formula)
        found: List[Point] = []
        for time in range(len(self.space.levels)):
            failing = self.space.level_mask(time) & ~bits[time]
            while failing:
                low = failing & -failing
                found.append((time, low.bit_length() - 1))
                if limit is not None and len(found) >= limit:
                    return found
                failing ^= low
        return found

    def satisfying_observations(
        self, formula: Formula, time: int, agent: int
    ) -> Set[Tuple]:
        """Observations of ``agent`` at ``time`` whose states all satisfy ``formula``.

        For formulas of the form ``K_agent``/``B^N_agent`` applied to anything,
        satisfaction is constant across an observation group, so this returns
        exactly the observations at which the agent's knowledge condition
        holds — the raw material of synthesis.
        """
        satisfied = self.check_bits(formula)[time]
        masks = self.space.observation_masks(time, agent)
        return {
            observation
            for observation, block in masks.items()
            if not block & ~satisfied
        }


class ModelChecker(PackedQueryMixin):
    """Model checker for a (possibly partially built) levelled state space."""

    def __init__(self, space: LevelledSpace) -> None:
        self.space = space
        self._bit_cache: Dict[Formula, BitSat] = {}
        self._set_cache: Dict[Formula, SatSet] = {}

    # ----------------------------------------------------------------- queries

    def check_bits(self, formula: Formula) -> BitSat:
        """The packed satisfaction set of a closed formula (one int per level).

        This is the engine's native representation; bit ``j`` of entry
        ``time`` is set iff the formula holds at point ``(time, j)``.
        """
        check_positive(formula)
        return self._eval(formula, {})

    def check(self, formula: Formula) -> SatSet:
        """The satisfaction set of a closed formula over all built levels.

        Legacy adapter: unpacks :meth:`check_bits` into per-level
        ``Set[int]`` objects.  The unpacked form is memoized as well, so
        repeated calls return the same object.
        """
        cached = self._set_cache.get(formula)
        if cached is None:
            cached = to_level_sets(self.check_bits(formula))
            self._set_cache[formula] = cached
        return cached

    # -------------------------------------------------------------- evaluation

    def _levels(self) -> int:
        return len(self.space.levels)

    def _masks(self) -> List[int]:
        return [self.space.level_mask(time) for time in range(self._levels())]

    def _full(self) -> BitSat:
        return self._masks()

    def _empty(self) -> BitSat:
        return [0] * self._levels()

    def _eval(self, formula: Formula, env: Dict[str, BitSat]) -> BitSat:
        cacheable = not env
        if cacheable and formula in self._bit_cache:
            return self._bit_cache[formula]
        result = self._eval_uncached(formula, env)
        if cacheable:
            self._bit_cache[formula] = result
        return result

    def _eval_uncached(self, formula: Formula, env: Dict[str, BitSat]) -> BitSat:
        if isinstance(formula, Top):
            return self._full()
        if isinstance(formula, Bottom):
            return self._empty()
        if isinstance(formula, Atom):
            return self._eval_atom(formula)
        if isinstance(formula, Var):
            if formula.name not in env:
                raise ValueError(f"unbound fixpoint variable {formula.name!r}")
            return list(env[formula.name])
        if isinstance(formula, Not):
            operand = self._eval(formula.operand, env)
            return [
                self.space.level_mask(time) & ~operand[time]
                for time in range(self._levels())
            ]
        if isinstance(formula, And):
            result = self._full()
            for operand in formula.operands:
                operand_sat = self._eval(operand, env)
                result = [result[time] & operand_sat[time] for time in range(self._levels())]
            return result
        if isinstance(formula, Or):
            result = self._empty()
            for operand in formula.operands:
                operand_sat = self._eval(operand, env)
                result = [result[time] | operand_sat[time] for time in range(self._levels())]
            return result
        if isinstance(formula, Implies):
            antecedent = self._eval(formula.antecedent, env)
            consequent = self._eval(formula.consequent, env)
            return [
                (self.space.level_mask(time) & ~antecedent[time]) | consequent[time]
                for time in range(self._levels())
            ]
        if isinstance(formula, Iff):
            left = self._eval(formula.left, env)
            right = self._eval(formula.right, env)
            return [
                self.space.level_mask(time) & ~(left[time] ^ right[time])
                for time in range(self._levels())
            ]
        if isinstance(formula, Knows):
            return self._eval_knows(formula.agent, formula.operand, env, relative=False)
        if isinstance(formula, KnowsNonfaulty):
            return self._eval_knows(formula.agent, formula.operand, env, relative=True)
        if isinstance(formula, EveryoneBelieves):
            return self._eval_everyone_believes(formula.operand, env)
        if isinstance(formula, CommonBelief):
            return self._eval_common_belief(formula.operand, env)
        if isinstance(formula, Nu):
            return self._eval_nu(formula, env)
        if isinstance(formula, Next):
            return self._eval_next(formula.operand, env, universal=True)
        if isinstance(formula, EvNext):
            return self._eval_next(formula.operand, env, universal=False)
        if isinstance(formula, Always):
            return self._eval_globally(formula.operand, env, universal=True)
        if isinstance(formula, EvAlways):
            return self._eval_globally(formula.operand, env, universal=False)
        if isinstance(formula, Eventually):
            return self._eval_eventually(formula.operand, env, universal=True)
        if isinstance(formula, EvEventually):
            return self._eval_eventually(formula.operand, env, universal=False)
        raise TypeError(f"unsupported formula node {type(formula).__name__}")

    # -- atomic propositions --------------------------------------------------

    def _eval_atom(self, atom: Atom) -> BitSat:
        # Packed atom interpretations are computed and cached on the space
        # (per level and key), so they are shared by every checker over the
        # same space — e.g. the spec checker and the implementation verifier
        # of one harness task.
        key = atom.key
        return [
            self.space.atom_mask(time, key) for time in range(len(self.space.levels))
        ]

    # -- epistemic operators --------------------------------------------------

    def _knows_bits_at(
        self, time: int, agent: int, target: int, relative: bool
    ) -> int:
        """States of one level where ``K_agent`` (or ``B^N_agent``) of a packed
        target set holds.

        A whole observation block satisfies the operator iff no block member
        (restricted to the nonfaulty states for the relative reading) falls
        outside the target — two mask operations per block.
        """
        restrict = self.space.nonfaulty_mask(time, agent) if relative else -1
        return blocks_within(
            self.space.observation_masks(time, agent).values(), restrict, target
        )

    def _eval_knows(
        self, agent: int, operand: Formula, env: Dict[str, BitSat], relative: bool
    ) -> BitSat:
        operand_sat = self._eval(operand, env)
        return [
            self._knows_bits_at(time, agent, operand_sat[time], relative)
            for time in range(self._levels())
        ]

    def _everyone_believes_bits_at(self, time: int, target: int) -> int:
        """``EB_N`` applied to one level's packed target set.

        A point satisfies ``EB_N`` iff every agent that is nonfaulty *at that
        point* believes the target, i.e. the intersection over agents of
        ``believes(agent) | ~nonfaulty(agent)``.
        """
        result = self.space.level_mask(time)
        for agent in range(self.space.model.num_agents):
            believes = self._knows_bits_at(time, agent, target, relative=True)
            result &= believes | (result & ~self.space.nonfaulty_mask(time, agent))
            if not result:
                break
        return result

    def _eval_everyone_believes(
        self, operand: Formula, env: Dict[str, BitSat]
    ) -> BitSat:
        operand_sat = self._eval(operand, env)
        return [
            self._everyone_believes_bits_at(time, operand_sat[time])
            for time in range(self._levels())
        ]

    def _eval_common_belief(self, operand: Formula, env: Dict[str, BitSat]) -> BitSat:
        operand_sat = self._eval(operand, env)
        # The fixpoint is per level: EB_N only relates points of the same
        # time, so each level's greatest fixpoint can be iterated on its own
        # bitmask until it stabilises.
        result: BitSat = []
        for time in range(self._levels()):
            current = self.space.level_mask(time)
            while True:
                next_bits = self._everyone_believes_bits_at(
                    time, operand_sat[time] & current
                )
                if next_bits == current:
                    break
                current = next_bits
            result.append(current)
        return result

    def _eval_nu(self, formula: Nu, env: Dict[str, BitSat]) -> BitSat:
        current = self._full()
        while True:
            inner = dict(env)
            inner[formula.variable] = current
            next_bits = self._eval(formula.operand, inner)
            if next_bits == current:
                return current
            current = next_bits

    # -- temporal operators ---------------------------------------------------

    @obs_profile.kernel("bitset.exist_step")
    def _exist_step(self, time: int, target: int) -> int:
        """States at ``time`` with some successor inside the packed target set.

        Unions the predecessor masks of the target's set bits — linear in the
        *population* of the target rather than in the size of the level.
        """
        predecessors = self.space.predecessor_masks(time)
        bits = 0
        while target:
            low = target & -target
            bits |= predecessors[low.bit_length() - 1]
            target ^= low
        return bits

    def _step_bits(self, time: int, target: int, universal: bool) -> int:
        """States at ``time`` whose successors (all/some) satisfy ``target``.

        The universal step is the complement of "some successor misses the
        target", so both readings reduce to :meth:`_exist_step`; the universal
        one iterates the complement of the target, which is typically sparse
        for the paper's ``AG``-shaped specifications.  Only called for levels
        with built successor edges (the final level is absorbing and handled
        by the callers directly).
        """
        if universal:
            bad = self.space.level_mask(time + 1) & ~target
            return self.space.level_mask(time) & ~self._exist_step(time, bad)
        return self._exist_step(time, target)

    def _eval_next(
        self, operand: Formula, env: Dict[str, BitSat], universal: bool
    ) -> BitSat:
        operand_sat = self._eval(operand, env)
        last = self._levels() - 1
        result: BitSat = [
            self._step_bits(time, operand_sat[time + 1], universal)
            for time in range(last)
        ]
        # The final level is absorbing (each point its own successor), so
        # AX phi and EX phi both coincide with phi there.
        result.append(operand_sat[last])
        return result

    def _eval_globally(
        self, operand: Formula, env: Dict[str, BitSat], universal: bool
    ) -> BitSat:
        operand_sat = self._eval(operand, env)
        last = self._levels() - 1
        result: BitSat = [0] * self._levels()
        result[last] = operand_sat[last]
        for time in range(last - 1, -1, -1):
            step = self._step_bits(time, result[time + 1], universal)
            result[time] = operand_sat[time] & step
        return result

    def _eval_eventually(
        self, operand: Formula, env: Dict[str, BitSat], universal: bool
    ) -> BitSat:
        operand_sat = self._eval(operand, env)
        last = self._levels() - 1
        result: BitSat = [0] * self._levels()
        result[last] = operand_sat[last]
        for time in range(last - 1, -1, -1):
            step = self._step_bits(time, result[time + 1], universal)
            result[time] = operand_sat[time] | step
        return result
