"""The paper's primary contribution, reimplemented.

This subpackage contains the epistemic model checker and the
knowledge-based-program synthesizer that play the role of MCK in the paper:

* :mod:`repro.core.checker` — model checking of knowledge, common belief
  (greatest fixpoints) and bounded CTL temporal operators over levelled state
  spaces, under the clock semantics of knowledge, on packed per-level
  bitsets.
* :mod:`repro.core.bitset` — the packed satisfaction-set representation and
  its conversions to/from the legacy ``List[Set[int]]`` form.
* :mod:`repro.core.reference` — the retained set-based evaluator
  (:class:`~repro.core.reference.SetChecker`), the oracle for property tests
  and the baseline for the checker benchmark.
* :mod:`repro.core.synthesis` — synthesis of the unique clock-semantics
  implementation of the knowledge-based programs for SBA and EBA.
* :mod:`repro.core.predicates` — synthesized conditions as sets of
  observations, comparison against hypothesised closed-form conditions, and
  rendering as minimised boolean formulas.
* :mod:`repro.core.cover` — the shared sum-of-products :class:`Cover`
  representation and the certification helpers that check any returned cover
  against its on/off specification.
* :mod:`repro.core.minimize` — exact Quine–McCluskey two-level minimisation
  and the backend-switching ``truth_table_minimise`` front door.
* :mod:`repro.core.espresso` — the espresso-style heuristic cube-list
  minimiser (EXPAND / IRREDUNDANT / REDUCE on positional bit-pair cubes)
  used for wide observation alphabets.
"""

from repro.core.bitset import BitSat, from_level_sets, to_level_sets
from repro.core.checker import ModelChecker, SatSet
from repro.core.reference import SetChecker
from repro.core.synthesis import (
    EBASynthesisResult,
    SBASynthesisResult,
    synthesize_eba,
    synthesize_sba,
)
from repro.core.predicates import ConditionTable, ObservationPredicate

__all__ = [
    "ModelChecker",
    "SetChecker",
    "SatSet",
    "BitSat",
    "from_level_sets",
    "to_level_sets",
    "SBASynthesisResult",
    "EBASynthesisResult",
    "synthesize_sba",
    "synthesize_eba",
    "ConditionTable",
    "ObservationPredicate",
]
