"""The paper's primary contribution, reimplemented.

This subpackage contains the epistemic model checker and the
knowledge-based-program synthesizer that play the role of MCK in the paper:

* :mod:`repro.core.checker` — model checking of knowledge, common belief
  (greatest fixpoints) and bounded CTL temporal operators over levelled state
  spaces, under the clock semantics of knowledge.
* :mod:`repro.core.synthesis` — synthesis of the unique clock-semantics
  implementation of the knowledge-based programs for SBA and EBA.
* :mod:`repro.core.predicates` — synthesized conditions as sets of
  observations, comparison against hypothesised closed-form conditions, and
  rendering as minimised boolean formulas.
* :mod:`repro.core.minimize` — Quine–McCluskey two-level minimisation.
* :mod:`repro.core.bdd` — a from-scratch reduced ordered BDD package.
* :mod:`repro.core.symbolic` — BDD-encoded reachability (ablation).
"""

from repro.core.checker import ModelChecker, SatSet
from repro.core.synthesis import (
    EBASynthesisResult,
    SBASynthesisResult,
    synthesize_eba,
    synthesize_sba,
)
from repro.core.predicates import ConditionTable, ObservationPredicate

__all__ = [
    "ModelChecker",
    "SatSet",
    "SBASynthesisResult",
    "EBASynthesisResult",
    "synthesize_sba",
    "synthesize_eba",
    "ConditionTable",
    "ObservationPredicate",
]
