"""Sum-of-products covers of boolean functions, and their certification.

This module holds the representation shared by the two minimisation backends
(:mod:`repro.core.minimize` — exact Quine–McCluskey — and
:mod:`repro.core.espresso` — the heuristic cube-list minimiser): a
:class:`Cover` is a tuple of :data:`Implicant` terms over ``k`` named boolean
variables, renderable as the DNF conditions that MCK substitutes for template
variables.

Because the heuristic backend only *approximates* minimality, every cover it
returns can be **certified** against the specification it was minimised from:
:func:`certify_cover` checks, without ever enumerating the ``2**k`` point
space, that

* every on-set point is covered,
* no off-set point is covered (don't-cares — everything unspecified — may go
  either way),
* each implicant is prime (no literal can be dropped without hitting the
  off-set) and none is redundant, when the backend claims so.

The off-set may be given explicitly (the usual case: the specification is a
truth table over the *reachable* observations, everything else is a
don't-care) or implicitly as the complement of the on-set (``off_set=None``:
a fully specified function).  The implicit case never materialises the
complement: an implicant with ``f`` free variables covers exactly ``2**f``
points, so it stays inside the on-set iff it covers ``2**f`` on-set points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set, Tuple

#: An implicant over ``k`` boolean variables: a tuple with one entry per
#: variable, each ``True`` (positive literal), ``False`` (negative literal) or
#: ``None`` (don't care / variable eliminated).
Implicant = Tuple[Optional[bool], ...]


@dataclass(frozen=True)
class Cover:
    """A minimised sum-of-products cover of a boolean function."""

    num_variables: int
    implicants: Tuple[Implicant, ...]

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the cover on a full variable assignment."""
        return any(implicant_matches(implicant, assignment) for implicant in self.implicants)

    def evaluate_index(self, index: int) -> bool:
        """Evaluate the cover on a minterm index (variable 0 = MSB)."""
        return any(
            implicant_covers_index(implicant, index, self.num_variables)
            for implicant in self.implicants
        )

    def render(self, names: Sequence[str]) -> str:
        """Render as a human-readable DNF using the given variable names.

        Literals within a term appear in variable order (the order of
        ``names``); negative literals are prefixed with ``~``.
        """
        if not self.implicants:
            return "False"
        terms = []
        for implicant in self.implicants:
            literals = []
            for position, polarity in enumerate(implicant):
                if polarity is None:
                    continue
                literal = names[position] if polarity else f"~{names[position]}"
                literals.append(literal)
            terms.append(" & ".join(literals) if literals else "True")
        return " | ".join(terms)

    def literal_count(self) -> int:
        """Total number of literals across all implicants (a cost measure)."""
        return sum(
            1 for implicant in self.implicants for value in implicant if value is not None
        )


def implicant_matches(implicant: Implicant, assignment: Sequence[bool]) -> bool:
    """Whether the implicant covers the given full assignment."""
    return all(
        polarity is None or bool(assignment[position]) == polarity
        for position, polarity in enumerate(implicant)
    )


def implicant_covers_index(implicant: Implicant, index: int, num_variables: int) -> bool:
    """Whether the implicant covers the given minterm index."""
    for position, polarity in enumerate(implicant):
        if polarity is None:
            continue
        if bool((index >> (num_variables - 1 - position)) & 1) != polarity:
            return False
    return True


def minterm_to_implicant(minterm: int, num_variables: int) -> Implicant:
    """The fully specified implicant of a single minterm index."""
    return tuple(
        bool((minterm >> (num_variables - 1 - position)) & 1)
        for position in range(num_variables)
    )


def assignment_to_index(assignment: Sequence[bool]) -> int:
    """Pack a tuple of variable values into a minterm index (variable 0 = MSB)."""
    index = 0
    for value in assignment:
        index = (index << 1) | int(bool(value))
    return index


def free_count(implicant: Implicant) -> int:
    """Number of unconstrained variables of the implicant."""
    return sum(1 for value in implicant if value is None)


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverCertificate:
    """Outcome of checking a cover against its on/off specification.

    ``ok`` requires exact agreement on the specified points; the primality and
    redundancy fields are advisory (they are only violations when the backend
    *claimed* a prime/irredundant cover).
    """

    #: On-set minterm indices the cover fails to cover.
    uncovered_on: Tuple[int, ...]
    #: Off-set minterm indices the cover wrongly covers.
    violated_off: Tuple[int, ...]
    #: Implicants that are not prime (some literal can still be dropped).
    non_prime: Tuple[Implicant, ...]
    #: Implicants whose on-set points are all covered by other implicants.
    redundant: Tuple[Implicant, ...]

    @property
    def ok(self) -> bool:
        """True when the cover matches the specification exactly."""
        return not self.uncovered_on and not self.violated_off

    @property
    def prime_and_irredundant(self) -> bool:
        """True when additionally every implicant is prime and none redundant."""
        return self.ok and not self.non_prime and not self.redundant


def _implicant_on_count(implicant: Implicant, on_set: Set[int], num_variables: int) -> int:
    return sum(
        1 for term in on_set if implicant_covers_index(implicant, term, num_variables)
    )


def _covers_off(
    implicant: Implicant,
    on_set: Set[int],
    off_set: Optional[Set[int]],
    num_variables: int,
) -> bool:
    """Whether the implicant covers any off-set point.

    With an explicit off-set this is a direct membership scan.  With the
    implicit complement off-set (``off_set=None``) the implicant covers
    ``2**free`` points, so it avoids the off-set iff all of them are on-set
    points — a count, not an enumeration.
    """
    if off_set is not None:
        return any(
            implicant_covers_index(implicant, term, num_variables) for term in off_set
        )
    return _implicant_on_count(implicant, on_set, num_variables) != (
        1 << free_count(implicant)
    )


def certify_cover(
    cover: Cover,
    on_set: Iterable[int],
    off_set: Optional[Iterable[int]] = None,
) -> CoverCertificate:
    """Certify a cover against its on-set and (explicit or implicit) off-set.

    ``off_set=None`` means the function is fully specified: the off-set is the
    complement of the on-set.  Unspecified points (present in neither set when
    ``off_set`` is given) are don't-cares and are not checked.
    """
    on = set(on_set)
    off = None if off_set is None else set(off_set)
    if off is not None and on & off:
        raise ValueError("on-set and off-set overlap")
    k = cover.num_variables

    uncovered_on = tuple(sorted(term for term in on if not cover.evaluate_index(term)))
    if off is not None:
        violated_off = tuple(sorted(term for term in off if cover.evaluate_index(term)))
    else:
        violated_off = tuple(
            sorted(
                {
                    term
                    for implicant in cover.implicants
                    if _covers_off(implicant, on, None, k)
                    for term in _off_witnesses(implicant, on, k)
                }
            )
        )

    non_prime = []
    for implicant in cover.implicants:
        for position, polarity in enumerate(implicant):
            if polarity is None:
                continue
            raised = implicant[:position] + (None,) + implicant[position + 1 :]
            if not _covers_off(raised, on, off, k):
                non_prime.append(implicant)
                break

    redundant = []
    for index, implicant in enumerate(cover.implicants):
        others = cover.implicants[:index] + cover.implicants[index + 1 :]
        owned = [
            term
            for term in on
            if implicant_covers_index(implicant, term, k)
            and not any(implicant_covers_index(other, term, k) for other in others)
        ]
        if not owned:
            redundant.append(implicant)

    return CoverCertificate(
        uncovered_on=uncovered_on,
        violated_off=violated_off,
        non_prime=tuple(non_prime),
        redundant=tuple(redundant),
    )


def _off_witnesses(implicant: Implicant, on_set: Set[int], num_variables: int) -> list:
    """A few concrete complement points covered by an implicant (for reports).

    Walks the implicant's points lazily and stops after the first witness, so
    the full ``2**free`` expansion is never materialised.
    """
    free_positions = [
        position for position, value in enumerate(implicant) if value is None
    ]
    base = 0
    for position, value in enumerate(implicant):
        if value:
            base |= 1 << (num_variables - 1 - position)
    for pattern in range(1 << len(free_positions)):
        term = base
        for offset, position in enumerate(free_positions):
            if (pattern >> offset) & 1:
                term |= 1 << (num_variables - 1 - position)
        if term not in on_set:
            return [term]
    return []
