"""Synthesis of knowledge-based program implementations (clock semantics).

Under the clock semantics, a knowledge-based program has a unique
implementation (Fagin et al., chapter 7; Huang & van der Meyden), and it can
be computed constructively: the knowledge conditions at time ``m`` depend only
on the set of points reachable at time ``m``, which is determined by the
actions taken at earlier times.  The synthesizer therefore builds the levelled
state space one level at a time, evaluating the knowledge conditions of the
program at each level to fix the decision actions, and records the resulting
conditions as predicates over observations.

Two programs from the paper are supported:

* :func:`synthesize_sba` — the SBA program ``P`` (Section 5): do nothing until
  ``B^N_i CB_N ∃v`` holds for some value ``v``; then decide the least such
  value.  The construction is exact and single-pass.
* :func:`synthesize_eba` — the EBA program ``P0`` (Section 8): decide 0 when
  ``init_i = 0`` or the agent knows some agent has decided 0; decide 1 when
  the agent knows that no agent decides 0 now or in the future.  The
  decide-1 condition refers to the future behaviour of the synthesized
  protocol itself, so the implementation is computed as a fixpoint over
  whole-space passes and then verified (see :class:`EBASynthesisResult`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitset import bits_from_indices, blocks_within
from repro.core.predicates import ConditionTable, build_predicate
from repro.engines import DEFAULT_ENGINE, check_bits, checker_for, validate_engine
from repro.logic.atoms import decides_now, init_is, some_decided_value
from repro.logic.builders import big_or, common_belief_exists, neg
from repro.logic.formula import EvEventually, Knows, Or
from repro.symbolic.checker import (
    SymbolicChecker,
    eba_decide_zero_conditions,
    sba_level_conditions,
)
from repro.symbolic.encode import SpaceEncoder
from repro.systems.actions import Action, JointAction, NOOP
from repro.systems.model import BAModel
from repro.systems.space import LevelledSpace

#: Label used in EBA condition tables for the decide-0 knowledge condition.
DECIDE_ZERO = "decide0"
#: Label used in EBA condition tables for the decide-1 knowledge condition.
DECIDE_ONE = "decide1"


@dataclass
class SynthesizedRule:
    """A decision protocol given by a table over (agent, time, observation).

    This is the concrete protocol produced by synthesis: the knowledge tests
    of the knowledge-based program have been replaced by predicates of the
    agent's observable state, exactly as MCK replaces template variables by
    ``define`` statements.
    """

    model: BAModel
    table: Dict[Tuple[int, int], Dict[Tuple, Action]] = field(default_factory=dict)

    def action_for(self, agent: int, time: int, observation: Tuple) -> Action:
        """The action prescribed for an observation (``NOOP`` if unknown)."""
        return self.table.get((agent, time), {}).get(observation, NOOP)

    def __call__(self, agent: int, local: Tuple, time: int) -> Action:
        observation = self.model.exchange.observation(agent, local)
        return self.action_for(agent, time, observation)


# ---------------------------------------------------------------------------
# SBA synthesis
# ---------------------------------------------------------------------------


@dataclass
class SBASynthesisResult:
    """Result of synthesizing the SBA knowledge-based program ``P``."""

    model: BAModel
    space: LevelledSpace
    conditions: ConditionTable
    rule: SynthesizedRule

    def earliest_decision_times(self) -> Dict[int, Set[int]]:
        """For each time, the agents that decide at that time in some state."""
        earliest: Dict[int, Set[int]] = {}
        for (agent, time), actions in self.rule.table.items():
            if any(action is not NOOP for action in actions.values()):
                earliest.setdefault(time, set()).add(agent)
        return earliest


def _level_knowledge_conditions(
    space: LevelledSpace, level: int
) -> Dict[Tuple[int, int], int]:
    """Satisfaction of ``B^N_i CB_N ∃v`` per (agent, value) at one level.

    This is a specialised evaluator that works on a single level only, which
    is all the clock semantics requires; it avoids re-evaluating lower levels
    on every synthesis step.  Satisfaction is returned and manipulated as a
    packed bitmask per (agent, value) — bit ``j`` stands for state ``j`` of
    the level — using the observation-partition block masks cached on the
    space, so the ``EB_N`` fixpoint iterates over machine-word operations.
    """
    model = space.model
    full = space.level_mask(level)

    nonfaulty_masks = [space.nonfaulty_mask(level, agent) for agent in model.agents()]
    block_masks = [
        list(space.observation_masks(level, agent).values()) for agent in model.agents()
    ]

    def everyone_believes(target: int) -> int:
        result = full
        for agent in model.agents():
            restrict = nonfaulty_masks[agent]
            believes = blocks_within(block_masks[agent], restrict, target)
            result &= believes | (full & ~restrict)
            if not result:
                break
        return result

    conditions: Dict[Tuple[int, int], int] = {}
    for value in model.values():
        exists_value_bits = space.atom_mask(level, ("exists", value))
        # Greatest fixpoint of X -> EB_N(exists_v /\ X), within the level.
        current = full
        while True:
            next_bits = everyone_believes(exists_value_bits & current)
            if next_bits == current:
                break
            current = next_bits
        common_belief = current
        # B^N_i CB_N exists_v, per agent.
        for agent in model.agents():
            conditions[(agent, value)] = blocks_within(
                block_masks[agent], nonfaulty_masks[agent], common_belief
            )
    return conditions


def sba_condition_evaluator(
    space: LevelledSpace, engine: str, growing: bool = True, encoder=None
):
    """A per-level evaluator of the SBA knowledge conditions for an engine.

    Returns a callable ``level -> {(agent, value): bitmask}`` with the same
    meaning as :func:`_level_knowledge_conditions`.  The bitset engine uses
    the specialised per-level bitmask fixpoint; the symbolic engine its BDD
    twin (sharing one :class:`~repro.symbolic.encode.SpaceEncoder` across
    levels); the set engine evaluates the formula ``B^N_i CB_N ∃v`` on the
    (possibly partial) space through the reference checker.

    ``growing`` says whether the space may gain levels between calls (the
    synthesis loop).  Over a completed space (``growing=False``, the
    implementation verifier) the set engine shares one checker across
    levels instead of re-running the whole-space fixpoint per level; the
    bitset and symbolic evaluators cache on the space/encoder either way.

    ``encoder`` optionally hands the symbolic engine an existing
    :class:`~repro.symbolic.encode.SpaceEncoder` over the same space (e.g.
    a :class:`~repro.symbolic.checker.SymbolicChecker`'s), so its per-level
    relation and atom BDD caches are reused instead of rebuilt.
    """
    validate_engine(engine)
    if engine == "bitset":
        return lambda level: _level_knowledge_conditions(space, level)
    if engine == "symbolic":
        if encoder is None:
            encoder = SpaceEncoder(space)
        elif encoder.space is not space:
            raise ValueError("the provided encoder is over a different space")
        return lambda level: sba_level_conditions(encoder, level)

    shared: List = []

    def set_conditions(level: int) -> Dict[Tuple[int, int], int]:
        if growing:
            # A fresh reference checker per level: the space has grown since
            # the previous level, so cached satisfaction sets would be stale.
            checker = checker_for(space, "set")
        else:
            if not shared:
                shared.append(checker_for(space, "set"))
            checker = shared[0]
        return {
            (agent, value): bits_from_indices(
                checker.check(common_belief_exists(agent, value))[level]
            )
            for agent in space.model.agents()
            for value in space.model.values()
        }

    return set_conditions


def synthesize_sba(
    model: BAModel,
    horizon: Optional[int] = None,
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> SBASynthesisResult:
    """Synthesize the unique clock-semantics implementation of program ``P``.

    ``engine`` selects the satisfaction backend used for the knowledge
    conditions (see :mod:`repro.engines`); every engine produces the same
    rule table and condition predicates.
    """
    space = LevelledSpace.initial(model, horizon=horizon, max_states=max_states)
    conditions = ConditionTable()
    rule = SynthesizedRule(model=model)
    evaluate_conditions = sba_condition_evaluator(space, engine)

    for level in range(space.horizon + 1):
        level_conditions = evaluate_conditions(level)
        states = space.levels[level]

        for agent in model.agents():
            groups = space.observation_groups(level, agent)
            reachable = set(groups)
            features_of = {
                observation: model.observation_features(states[members[0]], agent)
                for observation, members in groups.items()
            }
            decision_table: Dict[Tuple, Action] = {}
            for observation, members in groups.items():
                representative = members[0]
                chosen: Action = NOOP
                for value in model.values():
                    if (level_conditions[(agent, value)] >> representative) & 1:
                        chosen = value
                        break
                decision_table[observation] = chosen
            rule.table[(agent, level)] = decision_table

            for value in model.values():
                positive = {
                    observation
                    for observation, members in groups.items()
                    if (level_conditions[(agent, value)] >> members[0]) & 1
                }
                conditions.add(
                    build_predicate(agent, level, positive, reachable, features_of),
                    label=value,
                )

        joint_actions = _joint_actions_from_rule(space, level, rule)
        space.set_actions(level, joint_actions)
        if level < space.horizon:
            space.extend()

    return SBASynthesisResult(model=model, space=space, conditions=conditions, rule=rule)


def _joint_actions_from_rule(
    space: LevelledSpace, level: int, rule: SynthesizedRule
) -> List[JointAction]:
    model = space.model
    joint_actions: List[JointAction] = []
    for state in space.levels[level]:
        actions: List[Action] = []
        for agent in model.agents():
            local = state.locals[agent]
            if local.decided or not model.can_act(state, agent):
                actions.append(NOOP)
            else:
                actions.append(rule(agent, local, level))
        joint_actions.append(tuple(actions))
    return joint_actions


# ---------------------------------------------------------------------------
# EBA synthesis
# ---------------------------------------------------------------------------


@dataclass
class EBASynthesisResult:
    """Result of synthesizing the EBA knowledge-based program ``P0``."""

    model: BAModel
    space: LevelledSpace
    conditions: ConditionTable
    rule: SynthesizedRule
    iterations: int
    converged: bool


def _decide_zero_conditions_at_level(
    space: LevelledSpace, level: int
) -> Dict[int, int]:
    """Satisfaction of ``init_i = 0 \\/ K_i(some agent has decided 0)`` per agent.

    Returned as a packed bitmask per agent (bit ``j`` = state ``j`` of the
    level), like :func:`_level_knowledge_conditions`.  The atom bitmasks come
    from the space's cache, so the two calls per EBA pass share the scans.
    """
    model = space.model
    some_decided_zero = space.atom_mask(level, ("some_decided", 0))
    conditions: Dict[int, int] = {}
    for agent in model.agents():
        knows = blocks_within(
            space.observation_masks(level, agent).values(), -1, some_decided_zero
        )
        conditions[agent] = knows | space.atom_mask(level, ("init", agent, 0))
    return conditions


class EBAZeroConditionEvaluator:
    """Per-level evaluator of the EBA decide-0 conditions for an engine.

    Calling the evaluator with a level returns ``{agent: bitmask}`` with the
    same meaning as :func:`_decide_zero_conditions_at_level`; backends as in
    :func:`sba_condition_evaluator`.  :meth:`make_checker` builds the
    whole-space checker the decide-1 condition of the *same* pass should
    use: for the symbolic engine it shares this evaluator's
    :class:`~repro.symbolic.encode.SpaceEncoder`, so the per-level relation
    and atom BDD caches are built once per pass.
    """

    def __init__(self, space: LevelledSpace, engine: str, growing: bool = True) -> None:
        self.space = space
        self.engine = validate_engine(engine)
        self.growing = growing
        self._encoder = None
        self._set_checker = None
        if engine == "symbolic":
            self._encoder = SpaceEncoder(space)

    def mark_complete(self) -> None:
        """Declare that the space will not grow further.

        Afterwards the set engine's per-level evaluations share one
        checker (whole-space satisfaction sets stay valid) instead of
        re-running the full fixpoint per level.
        """
        self.growing = False

    def __call__(self, level: int) -> Dict[int, int]:
        if self.engine == "bitset":
            return _decide_zero_conditions_at_level(self.space, level)
        if self.engine == "symbolic":
            return eba_decide_zero_conditions(self._encoder, level)
        if self.growing:
            checker = checker_for(self.space, "set")
        else:
            if self._set_checker is None:
                self._set_checker = checker_for(self.space, "set")
            checker = self._set_checker
        return {
            agent: bits_from_indices(
                checker.check(
                    Or((init_is(agent, 0), Knows(agent, some_decided_value(0))))
                )[level]
            )
            for agent in self.space.model.agents()
        }

    def make_checker(self):
        """A whole-space checker for this engine, sharing any encoder state."""
        if self._encoder is not None:
            return SymbolicChecker(self.space, self._encoder)
        return checker_for(self.space, self.engine)


def eba_zero_condition_evaluator(
    space: LevelledSpace, engine: str, growing: bool = True
) -> EBAZeroConditionEvaluator:
    """The per-level EBA decide-0 evaluator for an engine (see the class)."""
    return EBAZeroConditionEvaluator(space, engine, growing=growing)


def _eba_pass(
    model: BAModel,
    horizon: Optional[int],
    max_states: Optional[int],
    prior_rule: Optional[SynthesizedRule],
    engine: str = DEFAULT_ENGINE,
) -> Tuple[LevelledSpace, ConditionTable, SynthesizedRule]:
    """One whole-space pass of EBA synthesis.

    Decide-0 conditions are evaluated exactly, level by level.  Decide-1
    actions during the build are taken from ``prior_rule`` (none on the first
    pass); after the space is complete, the decide-1 knowledge condition
    ``K_i(no agent decides 0 now or in the future)`` is evaluated on it and a
    new rule table is assembled.
    """
    space = LevelledSpace.initial(model, horizon=horizon, max_states=max_states)
    conditions = ConditionTable()
    building_rule = SynthesizedRule(model=model)
    evaluate_zero_conditions = eba_zero_condition_evaluator(space, engine)

    for level in range(space.horizon + 1):
        zero_conditions = evaluate_zero_conditions(level)
        for agent in model.agents():
            groups = space.observation_groups(level, agent)
            decision_table: Dict[Tuple, Action] = {}
            for observation, members in groups.items():
                representative = members[0]
                if (zero_conditions[agent] >> representative) & 1:
                    decision_table[observation] = 0
                elif prior_rule is not None:
                    decision_table[observation] = prior_rule.action_for(
                        agent, level, observation
                    )
                else:
                    decision_table[observation] = NOOP
            building_rule.table[(agent, level)] = decision_table

        joint_actions = _joint_actions_from_rule(space, level, building_rule)
        space.set_actions(level, joint_actions)
        if level < space.horizon:
            space.extend()

    # Evaluate the decide-1 condition on the completed space; the evaluator
    # hands out a checker that shares its per-pass caches where the engine
    # has any (the symbolic encoder), and its own re-evaluations may now
    # share state too — the space is final.
    evaluate_zero_conditions.mark_complete()
    checker = evaluate_zero_conditions.make_checker()
    someone_decides_zero_now = big_or(
        decides_now(agent, 0) for agent in model.agents()
    )
    future_zero = EvEventually(someone_decides_zero_now)

    final_rule = SynthesizedRule(model=model)
    for level in range(space.horizon + 1):
        zero_conditions = evaluate_zero_conditions(level)
        states = space.levels[level]
        for agent in model.agents():
            no_future_zero = Knows(agent, neg(future_zero))
            knows_safe = check_bits(checker, no_future_zero)[level]
            groups = space.observation_groups(level, agent)
            reachable = set(groups)
            features_of = {
                observation: model.observation_features(states[members[0]], agent)
                for observation, members in groups.items()
            }
            decision_table: Dict[Tuple, Action] = {}
            zero_positive = set()
            one_positive = set()
            for observation, members in groups.items():
                representative = members[0]
                if (zero_conditions[agent] >> representative) & 1:
                    decision_table[observation] = 0
                    zero_positive.add(observation)
                elif (knows_safe >> representative) & 1:
                    decision_table[observation] = 1
                    one_positive.add(observation)
                else:
                    decision_table[observation] = NOOP
            final_rule.table[(agent, level)] = decision_table
            conditions.add(
                build_predicate(agent, level, zero_positive, reachable, features_of),
                label=DECIDE_ZERO,
            )
            conditions.add(
                build_predicate(agent, level, one_positive, reachable, features_of),
                label=DECIDE_ONE,
            )

    return space, conditions, final_rule


def synthesize_eba(
    model: BAModel,
    horizon: Optional[int] = None,
    max_states: Optional[int] = None,
    max_iterations: int = 6,
    engine: str = DEFAULT_ENGINE,
) -> EBASynthesisResult:
    """Synthesize an implementation of the EBA program ``P0``.

    The computation iterates whole-space passes until the derived rule table
    stops changing (the usual knowledge-based-program fixpoint); for the
    exchanges of the paper (``E_min`` and ``E_basic``) this converges within
    a few iterations.  ``engine`` selects the satisfaction backend used for
    the knowledge conditions (see :mod:`repro.engines`).  The caller can
    verify the result against the knowledge-based program with
    :func:`repro.kbp.implementation.verify_eba_implementation`.
    """
    validate_engine(engine)
    prior_rule: Optional[SynthesizedRule] = None
    space: Optional[LevelledSpace] = None
    conditions = ConditionTable()
    iterations = 0
    converged = False

    for iterations in range(1, max_iterations + 1):
        space, conditions, new_rule = _eba_pass(
            model, horizon, max_states, prior_rule, engine=engine
        )
        if prior_rule is not None and new_rule.table == prior_rule.table:
            converged = True
            prior_rule = new_rule
            break
        prior_rule = new_rule

    assert prior_rule is not None and space is not None
    return EBASynthesisResult(
        model=model,
        space=space,
        conditions=conditions,
        rule=prior_rule,
        iterations=iterations,
        converged=converged,
    )
