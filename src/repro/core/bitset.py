"""Packed bitset representation of per-level satisfaction sets.

The clock semantics evaluates every operator level by level, so a
satisfaction set is naturally "one subset of state indices per time level".
This module fixes the packed representation used by the fast checker: each
level's subset is a single arbitrary-precision Python ``int`` in which bit
``j`` is set iff state ``j`` of that level satisfies the formula
(:data:`BitSat` = ``List[int]``).

With this encoding the propositional connectives collapse to single integer
operations (``&``, ``|``, ``^``, and masked complement), the epistemic
operators become a handful of mask tests per observation block, and fixpoint
convergence checks become integer equality — all of which CPython executes
over machine words rather than hash-table entries.  Python's two's-complement
semantics for ``~`` on non-negative ints are safe here because every
complement is immediately conjoined with a level mask (or another
non-negative mask), which discards the sign extension.

The module also provides the conversion helpers (:func:`to_level_sets`,
:func:`from_level_sets`) that bridge to the legacy ``List[Set[int]]``
representation still exposed by :meth:`repro.core.checker.ModelChecker.check`
and used by the reference oracle in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Set

from repro.obs import profile as obs_profile

#: A packed satisfaction set: one bitmask per built time level.
BitSat = List[int]


def bits_from_indices(indices: Iterable[int]) -> int:
    """Pack an iterable of state indices into a bitmask."""
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


def iter_indices(bits: int) -> Iterator[int]:
    """Yield the indices of the set bits of a mask, in increasing order."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


@obs_profile.kernel("bitset.blocks_within")
def blocks_within(blocks: Iterable[int], restrict: int, target: int) -> int:
    """Union of the blocks all of whose (restricted) members lie in ``target``.

    The shared kernel of the knowledge operators: a block of an observation
    partition satisfies ``K_i``/``B^N_i`` of ``target`` iff no block member —
    restricted to ``restrict`` (the nonfaulty mask for the belief reading,
    ``-1`` for plain knowledge) — falls outside ``target``.  Used by both the
    checker and the specialised per-level evaluators in synthesis, so the two
    cannot drift apart.
    """
    missing = restrict & ~target
    satisfied = 0
    for block in blocks:
        if not block & missing:
            satisfied |= block
    return satisfied


def to_level_sets(bitsat: Sequence[int]) -> List[Set[int]]:
    """Unpack a :data:`BitSat` into the legacy ``List[Set[int]]`` form."""
    return [set(iter_indices(bits)) for bits in bitsat]


def from_level_sets(sets: Sequence[Set[int]]) -> BitSat:
    """Pack a legacy ``List[Set[int]]`` satisfaction set into a :data:`BitSat`."""
    return [bits_from_indices(level) for level in sets]
