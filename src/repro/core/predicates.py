"""Synthesized decision conditions as predicates over observations.

The clock-semantics synthesizer determines, for every agent, time and
decision label, the set of *observations* at which the corresponding
knowledge condition holds.  This module wraps those sets as
:class:`ObservationPredicate` objects that can be

* queried (``holds(observation)``),
* compared against closed-form hypotheses such as the paper's conditions
  (2) and (3) — see :meth:`ConditionTable.check_hypothesis`,
* rendered as simplified boolean conditions over the exchange's named
  observable features (the analogue of MCK's synthesized ``define``
  statements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.core.minimize import MINIMISE_METHODS, Cover, truth_table_minimise

#: A hypothesis maps (agent, time, features) to the predicted truth value.
Hypothesis = Callable[[int, int, Mapping[str, Hashable]], bool]


@dataclass(frozen=True)
class ObservationPredicate:
    """A predicate over the observations reachable at a given agent and time."""

    agent: int
    time: int
    positive: FrozenSet[Tuple]
    reachable: FrozenSet[Tuple]
    features_of: Mapping[Tuple, Mapping[str, Hashable]] = field(default_factory=dict)

    def holds(self, observation: Tuple) -> bool:
        """Whether the condition holds at the given observation."""
        return observation in self.positive

    def is_reachable(self, observation: Tuple) -> bool:
        """Whether the observation is reachable at this agent and time."""
        return observation in self.reachable

    def always_false(self) -> bool:
        """True when the condition holds at no reachable observation."""
        return not self.positive

    def always_true(self) -> bool:
        """True when the condition holds at every reachable observation."""
        return self.positive == self.reachable

    def describe(self, method: str = "auto") -> str:
        """Render the condition as a simplified boolean formula.

        Non-boolean features (such as ``count``) are expanded into equality
        literals ``feature=value`` per value occurring among the reachable
        observations; boolean features are used directly.  The result is the
        analogue of the predicates MCK substitutes for template variables.

        ``method`` selects the minimisation backend (``"auto"``, ``"qm"`` or
        ``"espresso"``, see :func:`repro.core.minimize.truth_table_minimise`);
        the default picks by feature-variable count, so wide observation
        alphabets render in milliseconds instead of minutes.
        """
        if method not in MINIMISE_METHODS:
            # Validate before the constant shortcuts so a typo'd method fails
            # on every predicate, not just the non-constant ones.
            raise ValueError(f"unknown minimisation method {method!r}")
        if self.always_false():
            return "False"
        if self.always_true():
            return "True"
        names, cover = self.minimised_cover(method=method)
        return cover.render(names)

    def minimised_cover(self, method: str = "auto") -> Tuple[List[str], Cover]:
        """The variable names and minimised cover used by :meth:`describe`."""
        names, table = self._boolean_table()
        return names, truth_table_minimise(table, method=method)

    def _boolean_table(self) -> Tuple[List[str], Dict[Tuple[bool, ...], bool]]:
        # The observation table is sorted before minimisation: ``reachable``
        # is a frozenset of tuples that usually contain strings, so its
        # iteration order varies with PYTHONHASHSEED, and the minimisers'
        # covers depend on the order rows are presented.  Sorting makes
        # ``describe()`` byte-identical across processes and hash seeds.
        ordered = sorted(self.reachable, key=repr)
        feature_values: Dict[str, set] = {}
        for observation in ordered:
            for feature, value in self.features_of[observation].items():
                feature_values.setdefault(feature, set()).add(value)

        names: List[str] = []
        encoders: List[Tuple[str, Hashable]] = []
        for feature in sorted(feature_values):
            values = feature_values[feature]
            if values <= {True, False}:
                names.append(feature)
                encoders.append((feature, True))
            else:
                for value in sorted(values, key=repr):
                    names.append(f"{feature}={value}")
                    encoders.append((feature, value))

        table: Dict[Tuple[bool, ...], bool] = {}
        for observation in ordered:
            features = self.features_of[observation]
            assignment = tuple(
                bool(features[feature] == expected) if expected is not True
                else bool(features[feature])
                for feature, expected in encoders
            )
            table[assignment] = observation in self.positive
        return names, table


@dataclass
class ConditionTable:
    """Synthesized conditions indexed by (agent, time, label).

    For SBA the label is the decision value ``v`` (the condition
    ``B^N_i CB_N ∃v``); for EBA the labels are ``"decide0"`` and
    ``"decide1"``.
    """

    conditions: Dict[Tuple[int, int, Hashable], ObservationPredicate] = field(
        default_factory=dict
    )

    def add(self, predicate: ObservationPredicate, label: Hashable) -> None:
        """Record the predicate for (agent, time, label)."""
        self.conditions[(predicate.agent, predicate.time, label)] = predicate

    def get(self, agent: int, time: int, label: Hashable) -> Optional[ObservationPredicate]:
        """The predicate for (agent, time, label), if recorded."""
        return self.conditions.get((agent, time, label))

    def labels(self) -> List[Hashable]:
        """All distinct labels in the table."""
        return sorted({label for (_, _, label) in self.conditions}, key=repr)

    def times(self) -> List[int]:
        """All times for which conditions were recorded."""
        return sorted({time for (_, time, _) in self.conditions})

    def agents(self) -> List[int]:
        """All agents for which conditions were recorded."""
        return sorted({agent for (agent, _, _) in self.conditions})

    # ------------------------------------------------------------ hypotheses

    def check_hypothesis(
        self, label: Hashable, hypothesis: Hypothesis
    ) -> "HypothesisReport":
        """Compare the synthesized condition for ``label`` with a hypothesis.

        The hypothesis is evaluated on every reachable observation (through
        its named features) and must agree with the synthesized condition
        everywhere for the report to count as confirmed.
        """
        mismatches: List[Tuple[int, int, Tuple, bool, bool]] = []
        checked = 0
        for (agent, time, this_label), predicate in sorted(
            self.conditions.items(), key=lambda item: (item[0][1], item[0][0], repr(item[0][2]))
        ):
            if this_label != label:
                continue
            for observation in sorted(predicate.reachable, key=repr):
                checked += 1
                predicted = bool(
                    hypothesis(agent, time, predicate.features_of[observation])
                )
                actual = predicate.holds(observation)
                if predicted != actual:
                    mismatches.append((agent, time, observation, actual, predicted))
        return HypothesisReport(label=label, checked=checked, mismatches=mismatches)

    def describe(self, method: str = "auto") -> str:
        """Human-readable rendering of every synthesized condition.

        ``method`` is forwarded to each predicate's
        :meth:`ObservationPredicate.describe`.
        """
        lines: List[str] = []
        for (agent, time, label), predicate in sorted(
            self.conditions.items(), key=lambda item: (item[0][1], item[0][0], repr(item[0][2]))
        ):
            lines.append(
                f"agent {agent}, time {time}, {label}: {predicate.describe(method=method)}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class HypothesisReport:
    """Result of comparing a synthesized condition with a hypothesis."""

    label: Hashable
    checked: int
    mismatches: List[Tuple[int, int, Tuple, bool, bool]]

    @property
    def confirmed(self) -> bool:
        """True when the hypothesis agrees with the synthesized condition."""
        return not self.mismatches

    def summary(self) -> str:
        """A one-line summary suitable for experiment logs."""
        status = "confirmed" if self.confirmed else f"{len(self.mismatches)} mismatches"
        return f"hypothesis for {self.label!r}: {status} over {self.checked} observations"


def build_predicate(
    agent: int,
    time: int,
    positive: Iterable[Tuple],
    reachable: Iterable[Tuple],
    features_of: Mapping[Tuple, Mapping[str, Hashable]],
) -> ObservationPredicate:
    """Convenience constructor validating that positives are reachable."""
    positive_set = frozenset(positive)
    reachable_set = frozenset(reachable)
    if not positive_set <= reachable_set:
        raise ValueError("positive observations must be reachable")
    return ObservationPredicate(
        agent=agent,
        time=time,
        positive=positive_set,
        reachable=reachable_set,
        features_of=dict(features_of),
    )
