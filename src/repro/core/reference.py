"""Reference set-based satisfaction engine (executable specification).

This module preserves the original ``Set[int]``-per-level evaluator that
:class:`repro.core.checker.ModelChecker` replaced with packed bitsets.  It is
kept deliberately: the set-based code is the most literal transcription of
the operator semantics from Section 2 of the paper, so it serves as

* the **oracle** for the property tests in
  ``tests/property/test_bitset_equivalence.py`` (bitset and set evaluation
  must agree on every operator over randomized spaces), and
* the **baseline** for the performance benchmark
  ``benchmarks/test_perf_checker.py`` (which records the bitset engine's
  speedup into ``BENCH_checker.json``).

It is not used on any production path; use
:class:`repro.core.checker.ModelChecker` instead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.logic.formula import (
    Always,
    And,
    Atom,
    Bottom,
    CommonBelief,
    EvAlways,
    EvEventually,
    EvNext,
    EveryoneBelieves,
    Eventually,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Nu,
    Or,
    Top,
    Var,
    check_positive,
)
from repro.systems.space import LevelledSpace, Point

#: A satisfaction set: one set of state indices per built time level.
SatSet = List[Set[int]]


class SetChecker:
    """The legacy set-based model checker, retained as oracle and baseline."""

    def __init__(self, space: LevelledSpace) -> None:
        self.space = space
        self._cache: Dict[Formula, SatSet] = {}

    # ----------------------------------------------------------------- queries

    def check(self, formula: Formula) -> SatSet:
        """The satisfaction set of a closed formula over all built levels."""
        check_positive(formula)
        return self._eval(formula, {})

    def holds_at(self, formula: Formula, point: Point) -> bool:
        """Whether the formula holds at a specific point."""
        time, index = point
        return index in self.check(formula)[time]

    def holds_initially(self, formula: Formula) -> bool:
        """Whether the formula holds at every initial (time 0) point."""
        satisfied = self.check(formula)[0]
        return len(satisfied) == len(self.space.levels[0])

    def holds_everywhere(self, formula: Formula) -> bool:
        """Whether the formula holds at every reachable point."""
        sat = self.check(formula)
        return all(
            len(sat[time]) == len(level) for time, level in enumerate(self.space.levels)
        )

    # -------------------------------------------------------------- evaluation

    def _levels(self) -> int:
        return len(self.space.levels)

    def _full(self) -> SatSet:
        return [set(range(len(level))) for level in self.space.levels]

    def _empty(self) -> SatSet:
        return [set() for _ in self.space.levels]

    def _eval(self, formula: Formula, env: Dict[str, SatSet]) -> SatSet:
        cacheable = not env
        if cacheable and formula in self._cache:
            return self._cache[formula]
        result = self._eval_uncached(formula, env)
        if cacheable:
            self._cache[formula] = result
        return result

    def _eval_uncached(self, formula: Formula, env: Dict[str, SatSet]) -> SatSet:
        if isinstance(formula, Top):
            return self._full()
        if isinstance(formula, Bottom):
            return self._empty()
        if isinstance(formula, Atom):
            return self._eval_atom(formula)
        if isinstance(formula, Var):
            if formula.name not in env:
                raise ValueError(f"unbound fixpoint variable {formula.name!r}")
            return [set(level) for level in env[formula.name]]
        if isinstance(formula, Not):
            operand = self._eval(formula.operand, env)
            return [
                set(range(len(level))) - operand[time]
                for time, level in enumerate(self.space.levels)
            ]
        if isinstance(formula, And):
            result = self._full()
            for operand in formula.operands:
                operand_sat = self._eval(operand, env)
                result = [result[time] & operand_sat[time] for time in range(self._levels())]
            return result
        if isinstance(formula, Or):
            result = self._empty()
            for operand in formula.operands:
                operand_sat = self._eval(operand, env)
                result = [result[time] | operand_sat[time] for time in range(self._levels())]
            return result
        if isinstance(formula, Implies):
            antecedent = self._eval(formula.antecedent, env)
            consequent = self._eval(formula.consequent, env)
            return [
                (set(range(len(level))) - antecedent[time]) | consequent[time]
                for time, level in enumerate(self.space.levels)
            ]
        if isinstance(formula, Iff):
            left = self._eval(formula.left, env)
            right = self._eval(formula.right, env)
            result = []
            for time, level in enumerate(self.space.levels):
                everything = set(range(len(level)))
                agree = (left[time] & right[time]) | (
                    (everything - left[time]) & (everything - right[time])
                )
                result.append(agree)
            return result
        if isinstance(formula, Knows):
            return self._eval_knows(formula.agent, formula.operand, env, relative=False)
        if isinstance(formula, KnowsNonfaulty):
            return self._eval_knows(formula.agent, formula.operand, env, relative=True)
        if isinstance(formula, EveryoneBelieves):
            return self._eval_everyone_believes(formula.operand, env)
        if isinstance(formula, CommonBelief):
            return self._eval_common_belief(formula.operand, env)
        if isinstance(formula, Nu):
            return self._eval_nu(formula, env)
        if isinstance(formula, Next):
            return self._eval_next(formula.operand, env, universal=True)
        if isinstance(formula, EvNext):
            return self._eval_next(formula.operand, env, universal=False)
        if isinstance(formula, Always):
            return self._eval_globally(formula.operand, env, universal=True)
        if isinstance(formula, EvAlways):
            return self._eval_globally(formula.operand, env, universal=False)
        if isinstance(formula, Eventually):
            return self._eval_eventually(formula.operand, env, universal=True)
        if isinstance(formula, EvEventually):
            return self._eval_eventually(formula.operand, env, universal=False)
        raise TypeError(f"unsupported formula node {type(formula).__name__}")

    # -- atomic propositions --------------------------------------------------

    def _eval_atom(self, atom: Atom) -> SatSet:
        result: SatSet = []
        for time, level in enumerate(self.space.levels):
            satisfied = {
                index
                for index in range(len(level))
                if self.space.eval_atom((time, index), atom.key)
            }
            result.append(satisfied)
        return result

    # -- epistemic operators --------------------------------------------------

    def _eval_knows(
        self, agent: int, operand: Formula, env: Dict[str, SatSet], relative: bool
    ) -> SatSet:
        operand_sat = self._eval(operand, env)
        result: SatSet = []
        for time in range(self._levels()):
            groups = self.space.observation_groups(time, agent)
            satisfied: Set[int] = set()
            for members in groups.values():
                if relative:
                    holds = all(
                        (not self.space.nonfaulty((time, index), agent))
                        or index in operand_sat[time]
                        for index in members
                    )
                else:
                    holds = all(index in operand_sat[time] for index in members)
                if holds:
                    satisfied.update(members)
            result.append(satisfied)
        return result

    def _eval_everyone_believes(
        self, operand: Formula, env: Dict[str, SatSet]
    ) -> SatSet:
        num_agents = self.space.model.num_agents
        beliefs = [
            self._eval_knows(agent, operand, env, relative=True)
            for agent in range(num_agents)
        ]
        result: SatSet = []
        for time, level in enumerate(self.space.levels):
            satisfied: Set[int] = set()
            for index in range(len(level)):
                point = (time, index)
                believers_ok = all(
                    index in beliefs[agent][time]
                    for agent in range(num_agents)
                    if self.space.nonfaulty(point, agent)
                )
                if believers_ok:
                    satisfied.add(index)
            result.append(satisfied)
        return result

    def _eval_common_belief(self, operand: Formula, env: Dict[str, SatSet]) -> SatSet:
        operand_sat = self._eval(operand, env)
        current = self._full()
        while True:
            # EB_N (phi /\ X), with phi and X already evaluated to sets.
            conjunction = [operand_sat[time] & current[time] for time in range(self._levels())]
            next_set = self._everyone_believes_sets(conjunction)
            if next_set == current:
                return current
            current = next_set

    def _everyone_believes_sets(self, target: SatSet) -> SatSet:
        """``EB_N`` applied to an already-computed satisfaction set."""
        num_agents = self.space.model.num_agents
        result: SatSet = []
        for time, level in enumerate(self.space.levels):
            groups = [
                self.space.observation_groups(time, agent) for agent in range(num_agents)
            ]
            believes: List[Set[int]] = []
            for agent in range(num_agents):
                satisfied: Set[int] = set()
                for members in groups[agent].values():
                    holds = all(
                        (not self.space.nonfaulty((time, index), agent))
                        or index in target[time]
                        for index in members
                    )
                    if holds:
                        satisfied.update(members)
                believes.append(satisfied)
            level_result: Set[int] = set()
            for index in range(len(level)):
                point = (time, index)
                if all(
                    index in believes[agent]
                    for agent in range(num_agents)
                    if self.space.nonfaulty(point, agent)
                ):
                    level_result.add(index)
            result.append(level_result)
        return result

    def _eval_nu(self, formula: Nu, env: Dict[str, SatSet]) -> SatSet:
        current = self._full()
        while True:
            inner = dict(env)
            inner[formula.variable] = current
            next_set = self._eval(formula.operand, inner)
            if next_set == current:
                return current
            current = next_set

    # -- temporal operators ---------------------------------------------------

    def _successor_sets(self, time: int) -> Sequence[List[int]]:
        """Successor index lists at ``time``; final level is absorbing."""
        if time < len(self.space.successors):
            return self.space.successors[time]
        return [[index] for index in range(len(self.space.levels[time]))]

    def _eval_next(
        self, operand: Formula, env: Dict[str, SatSet], universal: bool
    ) -> SatSet:
        operand_sat = self._eval(operand, env)
        result: SatSet = []
        last = self._levels() - 1
        for time, level in enumerate(self.space.levels):
            satisfied: Set[int] = set()
            successors = self._successor_sets(time)
            target_time = time + 1 if time < last else time
            for index in range(len(level)):
                targets = successors[index]
                if universal:
                    holds = all(target in operand_sat[target_time] for target in targets)
                else:
                    holds = any(target in operand_sat[target_time] for target in targets)
                if holds:
                    satisfied.add(index)
            result.append(satisfied)
        return result

    def _eval_globally(
        self, operand: Formula, env: Dict[str, SatSet], universal: bool
    ) -> SatSet:
        operand_sat = self._eval(operand, env)
        last = self._levels() - 1
        result: SatSet = [set() for _ in range(self._levels())]
        result[last] = set(operand_sat[last])
        for time in range(last - 1, -1, -1):
            successors = self._successor_sets(time)
            satisfied: Set[int] = set()
            for index in range(len(self.space.levels[time])):
                if index not in operand_sat[time]:
                    continue
                targets = successors[index]
                if universal:
                    holds = all(target in result[time + 1] for target in targets)
                else:
                    holds = any(target in result[time + 1] for target in targets)
                if holds:
                    satisfied.add(index)
            result[time] = satisfied
        return result

    def _eval_eventually(
        self, operand: Formula, env: Dict[str, SatSet], universal: bool
    ) -> SatSet:
        operand_sat = self._eval(operand, env)
        last = self._levels() - 1
        result: SatSet = [set() for _ in range(self._levels())]
        result[last] = set(operand_sat[last])
        for time in range(last - 1, -1, -1):
            successors = self._successor_sets(time)
            satisfied: Set[int] = set()
            for index in range(len(self.space.levels[time])):
                if index in operand_sat[time]:
                    satisfied.add(index)
                    continue
                targets = successors[index]
                if universal:
                    holds = all(target in result[time + 1] for target in targets)
                else:
                    holds = any(target in result[time + 1] for target in targets)
                if holds:
                    satisfied.add(index)
            result[time] = satisfied
        return result
