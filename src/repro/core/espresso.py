"""Espresso-style heuristic two-level minimisation on packed cube lists.

The exact Quine–McCluskey backend (:mod:`repro.core.minimize`) enumerates the
prime implicants of the function *including its don't-care set*.  The
synthesized decision conditions make that explosive: the specification is a
truth table over the handful of *reachable* observations, so over ``k``
feature variables all but a few of the ``2**k`` points are don't-cares and QM
effectively minimises a near-complete function (the ROADMAP repro spends ~2
minutes on a 10-variable condition with 7 reachable rows).

This module takes the opposite approach, after Espresso-II (Brayton et al.):
keep a small *cube list* that covers the on-set, and improve it with the
classic three-phase loop

* **EXPAND** — raise literals of each cube (making it cover more points) as
  long as an oracle certifies the cube stays inside on ∪ DC.  The oracle
  never materialises the don't-care set: with an explicit off-set it checks
  that no off-point falls inside the raised cube; with the implicit
  complement off-set it counts covered on-points against the cube's
  ``2**free`` volume.  A maximally raised cube is prime by construction.
* **IRREDUNDANT** — drop cubes whose on-points are covered by the rest
  (relatively essential cubes first, then a greedy set cover).
* **REDUCE** — shrink each cube to the supercube of the on-points only it
  covers, freeing EXPAND to grow it in a different direction on the next
  pass.

Cubes are packed in positional bit-pair notation reusing the integer-bitmask
idioms of :mod:`repro.core.bitset`: variable ``j`` owns bits ``2j`` ("admits
False") and ``2j+1`` ("admits True"), so a cube over ``k`` variables is one
``2k``-bit Python int.  Intersection is ``&``, containment is a subset test
(``a | b == b``), the supercube is ``|``, and a cube covers a minterm iff the
minterm's cube is a bit-subset of it.

The module also provides the independent :func:`tautology` oracle (unate
recursion with binate branching) used to certify tautology claims — e.g.
that a cover covers the whole space — without enumerating ``2**k`` points.

The returned :class:`~repro.core.cover.Cover` objects are certified by the
property-test suite via :func:`repro.core.cover.certify_cover`: they cover
the on-set exactly, never touch the off-set, and are prime and irredundant.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.cover import Cover, Implicant

#: A packed cube: variable ``j`` owns bit ``2j`` (admits ``False``) and bit
#: ``2j+1`` (admits ``True``); both set means the variable is free.
Cube = int

#: How many improvement passes (REDUCE → EXPAND → IRREDUNDANT) to attempt
#: before settling for the best cover seen.  The loop stops as soon as a pass
#: fails to improve the (cube count, literal count) cost, so this is a
#: backstop, not a tuning knob.
MAX_PASSES = 8


# ---------------------------------------------------------------------------
# Cube primitives
# ---------------------------------------------------------------------------


def full_cube(num_variables: int) -> Cube:
    """The universal cube (every variable free)."""
    return (1 << (2 * num_variables)) - 1


def minterm_cube(minterm: int, num_variables: int) -> Cube:
    """The fully specified cube of a single minterm (variable 0 = MSB)."""
    cube = 0
    for position in range(num_variables):
        value = (minterm >> (num_variables - 1 - position)) & 1
        cube |= 1 << (2 * position + value)
    return cube


def implicant_to_cube(implicant: Implicant) -> Cube:
    """Pack a tuple-form implicant into positional bit-pair notation."""
    cube = 0
    for position, polarity in enumerate(implicant):
        if polarity is None:
            cube |= 3 << (2 * position)
        else:
            cube |= 1 << (2 * position + int(polarity))
    return cube


def cube_to_implicant(cube: Cube, num_variables: int) -> Implicant:
    """Unpack a cube into the tuple form shared with the QM backend."""
    literals: List[Optional[bool]] = []
    for position in range(num_variables):
        pair = (cube >> (2 * position)) & 3
        if pair == 3:
            literals.append(None)
        elif pair == 2:
            literals.append(True)
        elif pair == 1:
            literals.append(False)
        else:
            raise ValueError(f"empty cube at variable {position}")
    return tuple(literals)


def cube_contains(outer: Cube, inner: Cube) -> bool:
    """Whether every point of ``inner`` is a point of ``outer``."""
    return inner | outer == outer


def cube_free_count(cube: Cube, num_variables: int) -> int:
    """Number of free (both-bits-set) variables of the cube."""
    free = 0
    for position in range(num_variables):
        if (cube >> (2 * position)) & 3 == 3:
            free += 1
    return free


def cube_literal_count(cube: Cube, num_variables: int) -> int:
    """Number of bound variables of the cube (its literal cost)."""
    return num_variables - cube_free_count(cube, num_variables)


# ---------------------------------------------------------------------------
# The expansion oracle
# ---------------------------------------------------------------------------

#: Returns True when a candidate cube leaks outside on ∪ DC (i.e. the raise
#: that produced it must be rejected).
BlockedOracle = Callable[[Cube], bool]


def _explicit_off_oracle(off_cubes: Sequence[Cube]) -> BlockedOracle:
    """Oracle for the explicit off-set: blocked iff some off-point is covered.

    An off minterm cube ``m`` lies inside candidate ``c`` iff ``m`` is a
    bit-subset of ``c``; don't-cares never block, so they are simply absent.
    """

    def blocked(candidate: Cube) -> bool:
        return any(cube_contains(candidate, off) for off in off_cubes)

    return blocked


def _implicit_off_oracle(
    on_cubes: Sequence[Cube], num_variables: int
) -> BlockedOracle:
    """Oracle for the implicit complement off-set (fully specified function).

    A candidate with ``f`` free variables covers exactly ``2**f`` points; it
    stays inside the on-set iff all of them are on-points, i.e. iff it covers
    ``2**f`` on minterms.  This turns the exponential complement into a count
    over the (small, explicit) on-set.
    """

    def blocked(candidate: Cube) -> bool:
        covered = sum(1 for on in on_cubes if cube_contains(candidate, on))
        return covered != 1 << cube_free_count(candidate, num_variables)

    return blocked


# ---------------------------------------------------------------------------
# EXPAND / IRREDUNDANT / REDUCE
# ---------------------------------------------------------------------------


def _expand_cube(
    cube: Cube,
    num_variables: int,
    blocked: BlockedOracle,
    off_cubes: Sequence[Cube],
) -> Cube:
    """Raise literals of ``cube`` until it is prime with respect to on ∪ DC.

    Raising order is the classic directed-expansion heuristic: literals whose
    raise conflicts with the fewest off-points go first (zero-conflict raises
    are free real estate), so the cube grows toward the sparse side of the
    off-set.  Every raise is validated by the oracle against the *current*
    cube, so the result never leaks outside on ∪ DC regardless of order.
    """
    bound = [
        position
        for position in range(num_variables)
        if (cube >> (2 * position)) & 3 != 3
    ]

    def conflict_count(position: int) -> int:
        candidate = cube | (3 << (2 * position))
        return sum(1 for off in off_cubes if cube_contains(candidate, off))

    bound.sort(key=conflict_count)
    for position in bound:
        candidate = cube | (3 << (2 * position))
        if not blocked(candidate):
            cube = candidate
    return cube


def _coverage_masks(
    cubes: Sequence[Cube], on_cubes: Sequence[Cube]
) -> List[int]:
    """Per cube, the bitmask of on-set positions it covers (bitset idiom)."""
    masks = []
    for cube in cubes:
        mask = 0
        for position, on in enumerate(on_cubes):
            if cube_contains(cube, on):
                mask |= 1 << position
        masks.append(mask)
    return masks


def _irredundant(
    cubes: List[Cube], on_cubes: Sequence[Cube], num_variables: int
) -> List[Cube]:
    """A subset of ``cubes`` still covering every on-point, greedily minimal.

    Relatively essential cubes (sole cover of some on-point) are kept first;
    the remainder is a greedy set cover preferring cubes that add the most
    uncovered on-points, breaking ties toward fewer literals.
    """
    cubes = sorted(set(cubes))
    coverage = _coverage_masks(cubes, on_cubes)
    all_on = (1 << len(on_cubes)) - 1

    kept: List[Cube] = []
    covered = 0
    for position in range(len(on_cubes)):
        bit = 1 << position
        owners = [index for index, mask in enumerate(coverage) if mask & bit]
        if len(owners) == 1 and cubes[owners[0]] not in kept:
            kept.append(cubes[owners[0]])
            covered |= coverage[owners[0]]

    while covered != all_on:
        best_index = max(
            range(len(cubes)),
            key=lambda index: (
                (coverage[index] & ~covered).bit_count(),
                cube_free_count(cubes[index], num_variables),
            ),
        )
        if not coverage[best_index] & ~covered:
            # No cube adds coverage: the input did not cover the on-set.
            raise ValueError("cube list does not cover the on-set")
        kept.append(cubes[best_index])
        covered |= coverage[best_index]
    return kept


def _reduce(
    cubes: List[Cube], on_cubes: Sequence[Cube], num_variables: int
) -> List[Cube]:
    """Shrink each cube to the supercube of the on-points only it covers.

    Processed largest-first (the espresso ordering), updating as it goes, so
    total on-set coverage is preserved; cubes left covering nothing of their
    own are dropped.  The shrunken cubes give the next EXPAND room to grow in
    a different direction than the one that produced the current local
    optimum.
    """
    order = sorted(
        range(len(cubes)),
        key=lambda index: cube_free_count(cubes[index], num_variables),
        reverse=True,
    )
    current: List[Optional[Cube]] = list(cubes)
    for index in order:
        owned = [
            on
            for on in on_cubes
            if cube_contains(current[index], on)
            and not any(
                other is not None
                and other_index != index
                and cube_contains(other, on)
                for other_index, other in enumerate(current)
            )
        ]
        if not owned:
            current[index] = None
            continue
        supercube = 0
        for on in owned:
            supercube |= on
        current[index] = supercube
    return [cube for cube in current if cube is not None]


# ---------------------------------------------------------------------------
# The minimiser
# ---------------------------------------------------------------------------


def espresso_minimise(
    num_variables: int,
    on_set: Iterable[int],
    off_set: Optional[Iterable[int]] = None,
    max_passes: int = MAX_PASSES,
) -> Cover:
    """Heuristically minimise a function given by on-set (and off-set) minterms.

    ``off_set=None`` means the function is fully specified (off = complement
    of on, handled by the counting oracle); otherwise every minterm in
    neither set is a don't-care.  Neither case ever materialises the
    ``2**num_variables`` point space.

    The result covers the on-set exactly, never covers an off-point, and its
    implicants are prime and irredundant (certifiable with
    :func:`repro.core.cover.certify_cover`); unlike Quine–McCluskey it may
    miss the globally minimal cover, which is acceptable for presenting
    synthesized conditions.
    """
    on = sorted(set(on_set))
    off = None if off_set is None else sorted(set(off_set))
    if off is not None and set(on) & set(off):
        raise ValueError("on-set and off-set overlap")
    if not on:
        return Cover(num_variables=num_variables, implicants=())
    if num_variables == 0:
        return Cover(num_variables=0, implicants=((),))
    if off is not None and not off:
        # Everything specified is on and the rest is don't-care: True.
        return Cover(
            num_variables=num_variables, implicants=((None,) * num_variables,)
        )

    on_cubes = [minterm_cube(term, num_variables) for term in on]
    if off is None:
        off_cubes: List[Cube] = []
        blocked = _implicit_off_oracle(on_cubes, num_variables)
    else:
        off_cubes = [minterm_cube(term, num_variables) for term in off]
        blocked = _explicit_off_oracle(off_cubes)

    def expand_all(cubes: List[Cube]) -> List[Cube]:
        expanded = [
            _expand_cube(cube, num_variables, blocked, off_cubes) for cube in cubes
        ]
        # Drop cubes swallowed by another expanded cube (single-containment
        # filter; cheaper than full irredundancy and keeps the lists short).
        survivors: List[Cube] = []
        for cube in sorted(set(expanded), key=lambda c: -c.bit_count()):
            if not any(cube_contains(kept, cube) for kept in survivors):
                survivors.append(cube)
        return survivors

    def cost(cubes: List[Cube]) -> Tuple[int, int]:
        return (
            len(cubes),
            sum(cube_literal_count(cube, num_variables) for cube in cubes),
        )

    cubes = _irredundant(expand_all(on_cubes), on_cubes, num_variables)
    best, best_cost = cubes, cost(cubes)
    for _ in range(max_passes):
        reduced = _reduce(cubes, on_cubes, num_variables)
        cubes = _irredundant(expand_all(reduced), on_cubes, num_variables)
        new_cost = cost(cubes)
        if new_cost < best_cost:
            best, best_cost = cubes, new_cost
        else:
            break

    implicants = sorted(
        (cube_to_implicant(cube, num_variables) for cube in best),
        key=lambda implicant: tuple(
            2 if value is None else int(value) for value in implicant
        ),
    )
    return Cover(num_variables=num_variables, implicants=tuple(implicants))


# ---------------------------------------------------------------------------
# The unate-recursion tautology oracle
# ---------------------------------------------------------------------------


def tautology(num_variables: int, cubes: Sequence[Cube]) -> bool:
    """Whether the cube list covers every point, by unate recursion.

    The classic espresso tautology check: a unate cover (no variable appears
    in both polarities) is a tautology iff it contains the universal cube;
    otherwise branch on the most binate variable and recurse on both
    cofactors.  Never enumerates the ``2**num_variables`` point space.
    """
    universe = full_cube(num_variables)

    def cofactor(cube_list: List[Cube], position: int, value: int) -> List[Cube]:
        admit = 1 << (2 * position + value)
        raised = 3 << (2 * position)
        return [cube | raised for cube in cube_list if cube & admit]

    def recurse(cube_list: List[Cube]) -> bool:
        if any(cube == universe for cube in cube_list):
            return True
        if not cube_list:
            return False
        best_position, best_balance = -1, 0
        for position in range(num_variables):
            only_false = only_true = 0
            for cube in cube_list:
                pair = (cube >> (2 * position)) & 3
                if pair == 1:
                    only_false += 1
                elif pair == 2:
                    only_true += 1
            balance = min(only_false, only_true)
            if balance > best_balance:
                best_position, best_balance = position, balance
        if best_position < 0:
            # Unate cover: a tautology iff it contains the universal cube
            # (already checked above), so points taking the missing polarity
            # of any bound variable are uncovered.
            return False
        return recurse(cofactor(cube_list, best_position, 0)) and recurse(
            cofactor(cube_list, best_position, 1)
        )

    return recurse(list(cubes))


def cover_is_tautology(cover: Cover) -> bool:
    """Certify that a :class:`Cover` covers the whole space (unate recursion)."""
    if cover.num_variables == 0:
        return bool(cover.implicants)
    return tautology(
        cover.num_variables,
        [implicant_to_cube(implicant) for implicant in cover.implicants],
    )
