"""Request-scoped trace IDs and nested spans.

A trace is opened per HTTP request (or per CLI invocation when desired):
the ID is honoured from an incoming ``X-Repro-Trace-Id`` header when it is
well-formed, generated otherwise, and echoed back in the response.  The ID
is contextvar-propagated so every span recorded on the same thread of
execution — session queries, artefact builds, kernel stages — carries it
without plumbing arguments through the stack.

Spans nest: each ``with span("build.space"):`` block records its parent
span's name and emits one structured JSON log record on the
``repro.trace`` logger at DEBUG when it closes.  With no active trace the
span contextmanager is a near-no-op (one contextvar read), so library
code can be instrumented unconditionally.
"""

from __future__ import annotations

import contextvars
import json
import logging
import re
import time
import uuid
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "HEADER",
    "begin",
    "current_trace_id",
    "end",
    "new_trace_id",
    "request_trace",
    "span",
]

#: Header used to propagate trace IDs across the HTTP boundary.
HEADER = "X-Repro-Trace-Id"

#: Accepted shape for externally supplied trace IDs.
_VALID_ID = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

_LOG = logging.getLogger("repro.trace")


class _TraceState:
    __slots__ = ("trace_id", "stack")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.stack: List[str] = []


_TRACE: contextvars.ContextVar[Optional[_TraceState]] = contextvars.ContextVar(
    "repro_trace", default=None)


def new_trace_id() -> str:
    return uuid.uuid4().hex


def current_trace_id() -> Optional[str]:
    state = _TRACE.get()
    return state.trace_id if state is not None else None


def begin(incoming: Optional[str] = None) -> Tuple[contextvars.Token, str]:
    """Open a trace, honouring a well-formed incoming ID.

    Returns the reset token and the effective trace ID.  Malformed or
    missing incoming IDs get a fresh one (never trust the wire).
    """
    if incoming and _VALID_ID.match(incoming):
        trace_id = incoming
    else:
        trace_id = new_trace_id()
    token = _TRACE.set(_TraceState(trace_id))
    return token, trace_id


def end(token: contextvars.Token) -> None:
    _TRACE.reset(token)


@contextmanager
def request_trace(incoming: Optional[str] = None) -> Iterator[str]:
    """Contextmanager form of :func:`begin`/:func:`end`."""
    token, trace_id = begin(incoming)
    try:
        yield trace_id
    finally:
        end(token)


@contextmanager
def span(name: str, **fields: object) -> Iterator[None]:
    """Record one nested span; no-op outside an active trace."""
    state = _TRACE.get()
    if state is None:
        yield
        return
    parent = state.stack[-1] if state.stack else None
    state.stack.append(name)
    start = time.perf_counter()
    error: Optional[str] = None
    try:
        yield
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        elapsed = time.perf_counter() - start
        state.stack.pop()
        if _LOG.isEnabledFor(logging.DEBUG):
            record = {
                "event": "span",
                "trace_id": state.trace_id,
                "span": name,
                "parent": parent,
                "seconds": round(elapsed, 6),
            }
            if error is not None:
                record["error"] = error
            if fields:
                record["fields"] = {key: str(value)
                                    for key, value in fields.items()}
            _LOG.debug("%s", json.dumps(record, sort_keys=True))
