"""Observability substrate: metrics, tracing, profiling, and logging.

The package is deliberately dependency-free (stdlib only) and must never
import from ``repro.api``/``repro.core``/``repro.harness`` — those layers
import *us* so they can instrument themselves.

- :mod:`repro.obs.metrics` — process-local, thread-safe metrics registry
  (counters, gauges, fixed-bucket histograms) with Prometheus-style text
  exposition and JSON snapshots that merge across pre-fork workers.
- :mod:`repro.obs.trace` — request-scoped trace IDs (contextvar-propagated,
  honoured from ``X-Repro-Trace-Id``) with nested spans emitted as
  structured JSON log records.
- :mod:`repro.obs.profile` — opt-in kernel profiling (``REPRO_PROFILE=1`` /
  ``--profile``) with negligible overhead when off.
- :mod:`repro.obs.log` — stdlib logging setup shared by the CLI and the
  service (``--log-format text|json``).
"""

from repro.obs import log, metrics, profile, trace

__all__ = ["log", "metrics", "profile", "trace"]
