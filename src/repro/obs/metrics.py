"""Process-local, thread-safe metrics registry with Prometheus exposition.

The registry is deliberately small: counters, gauges, and fixed-bucket
histograms, each supporting dynamic label sets.  Metrics are get-or-create
(`registry.counter(name, ...)` returns the existing metric on repeat
calls), so every layer can declare the series it needs without a central
manifest.

Two output forms:

- :meth:`MetricsRegistry.exposition` — Prometheus text format
  (``text/plain; version=0.0.4``) for ``GET /metrics``.
- :meth:`MetricsRegistry.snapshot` — a JSON-able dict.  Pre-fork workers
  publish their snapshot into the shared ``stats/`` directory and any
  worker renders the whole front via :func:`render_exposition`, which
  attaches a ``worker`` label per source so per-worker series stay
  distinguishable (aggregate = sum over the label, as in any Prometheus
  setup).

Hot call sites pre-bind their label set (``metric.labels(...)``) and pay
one ``list.append`` per event — atomic under the GIL, folded into the
series lazily at read time; cold sites use the locked keyword forms.  A
:data:`NULL` registry with no-op metrics exists so benchmarks can measure
the instrumentation-off baseline.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "render_exposition",
    "CONTENT_TYPE",
]

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds): sub-millisecond cache hits up to
#: minute-scale cold builds.  The implicit final bucket is +Inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in items)
    return "{" + rendered + "}" if rendered else ""


class _Metric:
    """Base class: one named metric holding per-labelset series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, object] = {}  # guarded by: _lock
        # Per-series append-only event buffers fed by bound children; folded
        # into _series lazily (reads, or overflow past _FOLD_THRESHOLD).
        # The dict itself is guarded; the buffered lists are appended to
        # lock-free and drained under the lock (see _drain).
        self._pending: Dict[LabelKey, List[float]] = {}  # guarded by: _lock

    def _pending_buffer(self, key: LabelKey) -> List[float]:
        with self._lock:
            return self._pending.setdefault(key, [])

    def _drain(self, buf: List[float]) -> List[float]:
        # Appenders don't hold the lock, so take a point-in-time copy and
        # delete exactly that prefix; an append racing in between survives
        # for the next fold.  Both the slice and the del are single ops on
        # a builtin list, atomic under the GIL.
        items = buf[:]
        del buf[:len(items)]
        return items

    def _fold_locked(self) -> None:
        """Fold pending event buffers into series; caller holds the lock."""

    def _fold(self) -> None:
        with self._lock:
            self._fold_locked()

    def _snapshot_series(self) -> List[dict]:
        raise NotImplementedError

    def snapshot(self) -> dict:
        with self._lock:
            self._fold_locked()
            data = {"type": self.kind, "help": self.help,
                    "series": self._snapshot_series()}
        return data


#: Pending-event buffers are folded into their series when they grow past
#: this; bounds memory between scrapes on hot unscraped processes.
_FOLD_THRESHOLD = 4096


class _BoundCounter:
    """A counter series with its label key precomputed.

    Hot call sites (cache hits, per-request counts) bind once; each event
    is then one ``list.append`` into a per-series pending buffer — atomic
    under the GIL, no lock, no label sorting.  Buffers are folded into the
    series under the metric lock at snapshot time (or when they grow past
    :data:`_FOLD_THRESHOLD`), so exposition never sees a partial event and
    memory stays bounded.
    """

    __slots__ = ("_metric", "_buf")

    def __init__(self, metric: "_Metric", key: LabelKey) -> None:
        self._metric = metric
        self._buf = metric._pending_buffer(key)

    def inc(self, amount: float = 1) -> None:
        buf = self._buf
        buf.append(amount)
        if len(buf) >= _FOLD_THRESHOLD:
            self._metric._fold()


class _BoundHistogram:
    """A histogram series with its label key precomputed (see _BoundCounter).

    Observations append raw values; even the bucket search happens at fold
    time, off the per-event path.
    """

    __slots__ = ("_metric", "_buf")

    def __init__(self, metric: "Histogram", key: LabelKey) -> None:
        self._metric = metric
        self._buf = metric._pending_buffer(key)

    def observe(self, value: float) -> None:
        buf = self._buf
        buf.append(value)
        if len(buf) >= _FOLD_THRESHOLD:
            self._metric._fold()


class Counter(_Metric):
    """Monotonically increasing counter with optional labels."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def labels(self, **labels: object) -> _BoundCounter:
        """Pre-bind a label set for append-only increments."""
        return _BoundCounter(self, _label_key(labels))

    def _fold_locked(self) -> None:
        for key, buf in self._pending.items():
            if buf:
                self._series[key] = (
                    self._series.get(key, 0) + sum(self._drain(buf)))

    def value(self, **labels: object) -> float:
        with self._lock:
            self._fold_locked()
            return self._series.get(_label_key(labels), 0)

    def _snapshot_series(self) -> List[dict]:
        return [{"labels": dict(key), "value": value}
                for key, value in sorted(self._series.items())]


class Gauge(_Metric):
    """Last-value gauge with optional labels."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    _snapshot_series = Counter._snapshot_series


class Histogram(_Metric):
    """Fixed-bucket histogram; buckets are inclusive upper bounds."""

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help, lock)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))

    def observe(self, value: float, **labels: object) -> None:
        self._observe_key(_label_key(labels), value)

    def labels(self, **labels: object) -> _BoundHistogram:
        """Pre-bind a label set for append-only observations."""
        return _BoundHistogram(self, _label_key(labels))

    def _observe_key(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._record_locked(key, (value,))

    def _record_locked(self, key: LabelKey, values: Iterable[float]) -> None:
        series = self._series.get(key)
        if series is None:
            # [per-bucket counts (+Inf last), sum, count]
            series = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._series[key] = series
        counts = series[0]
        buckets = self.buckets
        for value in values:
            counts[bisect_left(buckets, value)] += 1
            series[1] += value
            series[2] += 1

    def _fold_locked(self) -> None:
        for key, buf in self._pending.items():
            if buf:
                self._record_locked(key, self._drain(buf))

    def _snapshot_series(self) -> List[dict]:
        return [{"labels": dict(key), "counts": list(counts),
                 "sum": total, "count": count}
                for key, (counts, total, count) in sorted(self._series.items())]

    def snapshot(self) -> dict:
        data = super().snapshot()
        data["buckets"] = list(self.buckets)
        return data


class _NullMetric:
    """No-op stand-in: measures the instrumentation-off baseline."""

    def inc(self, amount: float = 1, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def labels(self, **labels: object) -> "_NullMetric":
        return self

    def value(self, **labels: object) -> float:
        return 0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Thread-safe collection of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}  # guarded by: _lock

    def _get_or_create(self, name: str, factory) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(
            name, lambda: Counter(name, help, self._lock))
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} already registered as {metric.kind}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(
            name, lambda: Gauge(name, help, self._lock))
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} already registered as {metric.kind}")
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, self._lock, buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} already registered as {metric.kind}")
        return metric

    def reset(self) -> None:
        """Drop all recorded series (metric definitions survive).

        Used by forked grid workers: the child inherits the parent's
        registry contents over fork and must start its cell from zero.
        """
        with self._lock:
            for metric in self._metrics.values():
                metric._series.clear()
                # Clear in place: bound children hold direct buffer refs.
                for buf in metric._pending.values():
                    del buf[:]

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def exposition(self) -> str:
        return render_exposition([(None, self.snapshot())])


class _NullRegistry(MetricsRegistry):
    """Registry whose metrics never record anything."""

    def counter(self, name: str, help: str = "") -> Counter:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    gauge = counter  # type: ignore[assignment]

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_LATENCY_BUCKETS):  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]


#: The process-wide default registry.
REGISTRY = MetricsRegistry()

#: Registry of no-op metrics (instrumentation-off baseline for benchmarks).
NULL = _NullRegistry()


def render_exposition(
    snapshots: Sequence[Tuple[Optional[str], Mapping[str, Mapping]]],
) -> str:
    """Render Prometheus text from (worker_label, snapshot) pairs.

    With a single ``None``-labelled snapshot the output is the plain
    process exposition; with labelled snapshots every series additionally
    carries a ``worker`` label so one response covers the whole pre-fork
    front.
    """
    merged: Dict[str, dict] = {}
    per_metric: Dict[str, List[Tuple[Optional[str], Mapping]]] = {}
    for worker, snapshot in snapshots:
        for name, data in snapshot.items():
            merged.setdefault(name, {"type": data.get("type", "untyped"),
                                     "help": data.get("help", ""),
                                     "buckets": data.get("buckets")})
            for series in data.get("series", ()):
                per_metric.setdefault(name, []).append((worker, series))

    lines: List[str] = []
    for name in sorted(merged):
        meta = merged[name]
        if meta["help"]:
            lines.append(f"# HELP {name} {meta['help']}")
        lines.append(f"# TYPE {name} {meta['type']}")
        entries = per_metric.get(name, [])

        def _labels(worker: Optional[str], series: Mapping,
                    extra: Sequence[Tuple[str, str]] = ()) -> str:
            items = sorted(series.get("labels", {}).items())
            if worker is not None:
                items.append(("worker", worker))
            return _render_labels(list(items) + list(extra))

        entries.sort(key=lambda entry: ((entry[0] or ""),
                                        sorted(entry[1].get("labels", {}).items())))
        if meta["type"] == "histogram":
            bounds = list(meta["buckets"] or []) + [float("inf")]
            for worker, series in entries:
                cumulative = 0
                for bound, count in zip(bounds, series["counts"]):
                    cumulative += count
                    labels = _labels(worker, series,
                                     [("le", _format_bound(bound))])
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _labels(worker, series)
                lines.append(f"{name}_sum{labels} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{labels} {series['count']}")
        else:
            for worker, series in entries:
                labels = _labels(worker, series)
                lines.append(f"{name}{labels} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n" if lines else ""
