"""Opt-in kernel profiling with negligible overhead when off.

Hot kernels (bitset block-mask intersections, predecessor images, BDD
``ite``/``and_exists``) are wrapped once at definition time with
:func:`kernel`.  The wrapper's off-path is a single global ``None`` check —
no timing, no allocation — so instrumentation can stay on the definitions
permanently.  Profiling activates when:

- the process environment has ``REPRO_PROFILE`` set to a truthy value
  (checked per grid child via :func:`maybe_enable_from_env`, because fork
  inherits the parent's already-imported modules), or
- :func:`enable` is called programmatically (the CLI ``--profile`` flag
  sets the environment variable so forked children inherit it).

Nested kernels double-count by design (``and_exists`` internally issues
``ite`` calls): each row answers "how much wall-clock passed inside this
kernel", which is the question the ROADMAP's fast-path decision needs.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "kernel",
    "enable",
    "disable",
    "active",
    "maybe_enable_from_env",
    "consume_summary",
    "summary",
    "render_table",
]

ENV_VAR = "REPRO_PROFILE"

#: Cap on stored per-call durations (median/max stay exact up to this;
#: calls and total seconds are always exact).
MAX_SAMPLES = 100_000


class _ProfileState:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> [calls, total_seconds, samples]
        self._kernels: Dict[str, list] = {}

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self._kernels.get(name)
            if entry is None:
                entry = [0, 0.0, []]
                self._kernels[name] = entry
            entry[0] += 1
            entry[1] += seconds
            samples: List[float] = entry[2]
            if len(samples) < MAX_SAMPLES:
                samples.append(seconds)

    def summary(self) -> dict:
        with self._lock:
            kernels = {}
            for name, (calls, total, samples) in sorted(self._kernels.items()):
                ordered = sorted(samples)
                median = ordered[len(ordered) // 2] if ordered else 0.0
                kernels[name] = {
                    "calls": calls,
                    "total_seconds": round(total, 6),
                    "median_seconds": round(median, 9),
                    "max_seconds": round(ordered[-1], 6) if ordered else 0.0,
                }
            return {"kernels": kernels}

    def reset(self) -> None:
        with self._lock:
            self._kernels.clear()


_ACTIVE: Optional[_ProfileState] = None


def kernel(name: str) -> Callable[[Callable], Callable]:
    """Decorator: time calls to a hot kernel when profiling is active."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            state = _ACTIVE
            if state is None:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                state.record(name, time.perf_counter() - start)

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def enable() -> None:
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _ProfileState()


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> bool:
    return _ACTIVE is not None


def maybe_enable_from_env() -> bool:
    """Enable profiling when ``REPRO_PROFILE`` is truthy; return activity.

    Called at the top of every forked grid child: the child inherits the
    parent's imported modules, so an import-time check would miss an
    environment variable set after import (e.g. by ``--profile``).
    """
    if os.environ.get(ENV_VAR, "") not in ("", "0"):
        enable()
    return active()


def summary() -> Optional[dict]:
    """Per-kernel summary dict, or None when profiling is inactive."""
    state = _ACTIVE
    return state.summary() if state is not None else None


def consume_summary() -> Optional[dict]:
    """Return the summary and reset counts (profiling stays active)."""
    state = _ACTIVE
    if state is None:
        return None
    result = state.summary()
    state.reset()
    return result


def render_table(profile_summary: dict) -> str:
    """Human-readable per-kernel table from a :func:`summary` dict."""
    rows = [("kernel", "calls", "total_s", "median_s", "max_s")]
    for name, stats in sorted(profile_summary.get("kernels", {}).items()):
        rows.append((
            name,
            str(stats["calls"]),
            f"{stats['total_seconds']:.6f}",
            f"{stats['median_seconds']:.6f}",
            f"{stats['max_seconds']:.6f}",
        ))
    if len(rows) == 1:
        return "profile: no kernel calls recorded"
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(width) for cell, width in zip(row[1:], widths[1:])]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
