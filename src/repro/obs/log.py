"""Logging setup shared by the CLI and the service.

``setup("text")`` (the default) reproduces the byte-exact output of the
``print`` calls it replaced: informational records go to stdout and
warnings/errors to stderr as bare ``%(message)s`` lines, flushed per
record — the serve banner stays machine-parseable and existing tests and
scripts that read it keep working.

``setup("json")`` switches both streams to one-JSON-object-per-line
records carrying timestamp, level, logger name, message, and the active
trace ID (when a request trace is open), which makes multi-worker logs
mergeable and greppable by trace.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional

from repro.obs import trace

__all__ = ["setup", "get_logger", "active_format", "JsonFormatter"]

#: Logger namespace the handlers are attached to.
ROOT = "repro"

#: The format most recently configured by :func:`setup`.
_ACTIVE_FORMAT = "text"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class JsonFormatter(logging.Formatter):
    """One JSON object per line; includes the active trace ID if any."""

    def format(self, record: logging.LogRecord) -> str:
        data = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = trace.current_trace_id()
        if trace_id is not None:
            data["trace_id"] = trace_id
        if record.exc_info:
            data["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(data, sort_keys=True)


class _MaxLevelFilter(logging.Filter):
    def __init__(self, max_level: int) -> None:
        super().__init__()
        self.max_level = max_level

    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno <= self.max_level


def setup(log_format: str = "text", level: str = "info",
          logger_name: str = ROOT) -> logging.Logger:
    """Configure the ``repro`` logger tree; idempotent.

    Informational records (<= INFO) go to stdout, warnings and above to
    stderr, matching the stream split of the ``print`` diagnostics this
    replaced.  Repeat calls reconfigure (handlers installed by a previous
    ``setup`` are replaced), so tests and long-lived processes can switch
    format or level safely.
    """
    global _ACTIVE_FORMAT
    if log_format not in ("text", "json"):
        raise ValueError(f"unknown log format: {log_format!r}")
    _ACTIVE_FORMAT = log_format
    logger = logging.getLogger(logger_name)
    logger.setLevel(_LEVELS.get(level.lower(), logging.INFO))
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)

    if log_format == "json":
        formatter: logging.Formatter = JsonFormatter()
    else:
        formatter = logging.Formatter("%(message)s")

    out = logging.StreamHandler(sys.stdout)
    out.addFilter(_MaxLevelFilter(logging.INFO))
    err = logging.StreamHandler(sys.stderr)
    err.setLevel(logging.WARNING)
    for handler in (out, err):
        handler.setFormatter(formatter)
        handler._repro_obs = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    return logger


def active_format() -> str:
    """The format most recently configured by :func:`setup`.

    Lets callers that normally bypass logging for byte-compatibility
    (e.g. the HTTP access log) detect JSON mode, where every line on the
    diagnostic streams must be a JSON record.
    """
    return _ACTIVE_FORMAT


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger under the ``repro`` namespace (``repro`` itself if None)."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)
