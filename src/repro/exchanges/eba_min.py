"""The ``E_min`` information exchange for Eventual Byzantine Agreement.

From Section 9.1 of the paper (and Alpturer, Halpern & van der Meyden,
PODC'23): agent ``i``'s local state is ``<time, init, decided, jd>`` where
``jd`` records a value that the agent has heard some agent *just decided*
(or ``None`` for the paper's ``⊥``).

When an agent decides a value ``v`` it broadcasts just ``v``; otherwise it
sends nothing.  On reception, ``jd`` is set to 0 if some received message is
0, else to 1 if some received message is 1, else to ``None``.

The exchange satisfies the side conditions of the paper's knowledge-based
program ``P0``, so implementations of ``P0`` with respect to ``E_min`` are
optimal EBA protocols for this exchange.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, NamedTuple, Optional, Tuple

from repro.systems.actions import Action, NOOP
from repro.systems.exchange import InformationExchange


class EMinLocal(NamedTuple):
    """Local state of an ``E_min`` agent."""

    init: int
    decided: bool
    decision: Optional[int]
    jd: Optional[int]


class EMinExchange(InformationExchange):
    """Agents broadcast only the value they have just decided."""

    name = "emin"

    def __init__(self, num_agents: int, num_values: int, max_faulty: int) -> None:
        if num_values != 2:
            raise ValueError("the EBA exchanges are defined for V = {0, 1}")
        super().__init__(num_agents, num_values, max_faulty)

    def initial_local(self, agent: int, init_value: int) -> EMinLocal:
        return EMinLocal(init=init_value, decided=False, decision=None, jd=None)

    def message(
        self, agent: int, local: EMinLocal, action: Action, time: int
    ) -> Optional[Hashable]:
        if action is not NOOP:
            return ("decide", action)
        return None

    def update(
        self,
        agent: int,
        local: EMinLocal,
        action: Action,
        received: Mapping[int, Hashable],
        time: int,
    ) -> EMinLocal:
        jd = just_decided_value(received.values())
        return local._replace(jd=jd)

    def observation(self, agent: int, local: EMinLocal) -> Tuple:
        return (local.init, local.decided, local.decision, local.jd)

    def observation_features(self, agent: int, local: EMinLocal) -> Dict[str, Hashable]:
        return {
            "init": local.init,
            "decided": local.decided,
            "decision": local.decision,
            "jd": local.jd,
        }


def just_decided_value(messages) -> Optional[int]:
    """The value recorded in ``jd`` from a round's received messages.

    Zero takes precedence over one; if no decision message was received the
    result is ``None`` (the paper's ``⊥``).
    """
    values = {
        message[1]
        for message in messages
        if isinstance(message, tuple) and message and message[0] == "decide"
    }
    if 0 in values:
        return 0
    if 1 in values:
        return 1
    return None
