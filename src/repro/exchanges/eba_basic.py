"""The ``E_basic`` information exchange for Eventual Byzantine Agreement.

From Section 9.2 of the paper: ``E_basic`` extends ``E_min`` with a counter
``num1``.  An agent that decides broadcasts its decision value; an undecided
agent with initial value 1 broadcasts ``(init, 1)``; an undecided agent with
initial value 0 sends nothing.  Each round ``num1`` is set to the number of
``(init, 1)`` messages received in that round, and ``jd`` records a decision
value heard in that round (as in ``E_min``).

The counter enables the early decision on 1: once ``num1 > n - time`` the
agent knows that no agent will ever decide 0 (there are not enough silent
agents left to hide an initial 0), which is the knowledge condition of the
paper's program ``P0`` for deciding 1.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, NamedTuple, Optional, Tuple

from repro.exchanges.eba_min import just_decided_value
from repro.systems.actions import Action, NOOP
from repro.systems.exchange import InformationExchange


class EBasicLocal(NamedTuple):
    """Local state of an ``E_basic`` agent."""

    init: int
    decided: bool
    decision: Optional[int]
    jd: Optional[int]
    num1: int


class EBasicExchange(InformationExchange):
    """``E_min`` plus a count of ``(init, 1)`` messages received last round."""

    name = "ebasic"

    def __init__(self, num_agents: int, num_values: int, max_faulty: int) -> None:
        if num_values != 2:
            raise ValueError("the EBA exchanges are defined for V = {0, 1}")
        super().__init__(num_agents, num_values, max_faulty)

    def initial_local(self, agent: int, init_value: int) -> EBasicLocal:
        return EBasicLocal(
            init=init_value, decided=False, decision=None, jd=None, num1=0
        )

    def message(
        self, agent: int, local: EBasicLocal, action: Action, time: int
    ) -> Optional[Hashable]:
        if action is not NOOP:
            return ("decide", action)
        if not local.decided and local.init == 1:
            return ("init", 1)
        return None

    def update(
        self,
        agent: int,
        local: EBasicLocal,
        action: Action,
        received: Mapping[int, Hashable],
        time: int,
    ) -> EBasicLocal:
        jd = just_decided_value(received.values())
        num1 = sum(
            1
            for message in received.values()
            if isinstance(message, tuple) and message and message[0] == "init"
        )
        return local._replace(jd=jd, num1=num1)

    def observation(self, agent: int, local: EBasicLocal) -> Tuple:
        return (local.init, local.decided, local.decision, local.jd, local.num1)

    def observation_features(self, agent: int, local: EBasicLocal) -> Dict[str, Hashable]:
        return {
            "init": local.init,
            "decided": local.decided,
            "decision": local.decision,
            "jd": local.jd,
            "num1": local.num1,
        }
