"""The FloodSet information exchange (Lynch, *Distributed Algorithms* 6.2.1).

Each agent maintains the set of decision values it has seen so far, starting
with its own initial preference.  In every round every non-crashed agent
broadcasts its set, and each agent unions the sets it receives into its own.

The local state mirrors the MCK model in the paper's appendix: an array
``w : V -> Bool`` of seen values (here a tuple of booleans) plus the implicit
time.  The observation consists of the seen array — exactly the variables
declared ``observable`` in the script (``values_received``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, NamedTuple, Optional, Tuple

from repro.systems.actions import Action
from repro.systems.exchange import InformationExchange


class FloodSetLocal(NamedTuple):
    """Local state of a FloodSet agent."""

    init: int
    decided: bool
    decision: Optional[int]
    seen: Tuple[bool, ...]


class FloodSetExchange(InformationExchange):
    """FloodSet: broadcast the set of values seen so far."""

    name = "floodset"

    def initial_local(self, agent: int, init_value: int) -> FloodSetLocal:
        seen = tuple(value == init_value for value in self.values())
        return FloodSetLocal(init=init_value, decided=False, decision=None, seen=seen)

    def message(
        self, agent: int, local: FloodSetLocal, action: Action, time: int
    ) -> Optional[Hashable]:
        return local.seen

    def update(
        self,
        agent: int,
        local: FloodSetLocal,
        action: Action,
        received: Mapping[int, Hashable],
        time: int,
    ) -> FloodSetLocal:
        seen = merge_seen(local.seen, received.values())
        return local._replace(seen=seen)

    def observation(self, agent: int, local: FloodSetLocal) -> Tuple:
        return (local.seen,)

    def observation_features(self, agent: int, local: FloodSetLocal) -> Dict[str, Hashable]:
        return {
            f"values_received[{value}]": local.seen[value] for value in self.values()
        }


def merge_seen(seen: Tuple[bool, ...], messages) -> Tuple[bool, ...]:
    """Union a seen-values array with the arrays carried by received messages."""
    merged = list(seen)
    for message in messages:
        for value, flag in enumerate(message):
            if flag:
                merged[value] = True
    return tuple(merged)
