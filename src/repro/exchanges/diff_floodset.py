"""FloodSet with the current and previous message counts (the Diff protocol).

The second Castañeda-et-al. variant (Section 7.3 of the paper): in addition to
the count of messages received in the most recent round, each agent remembers
the previous value of that count.  For Eventual Byzantine Agreement the
difference between the two counts enables earlier decisions; the paper's model
checking experiments show that for *Simultaneous* BA it does not improve on
the single-count exchange — a result this reproduction re-derives.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, NamedTuple, Optional, Tuple

from repro.exchanges.floodset import merge_seen
from repro.systems.actions import Action
from repro.systems.exchange import InformationExchange


class DiffFloodSetLocal(NamedTuple):
    """Local state of a Diff agent."""

    init: int
    decided: bool
    decision: Optional[int]
    seen: Tuple[bool, ...]
    count: int
    prev_count: int


class DiffFloodSetExchange(InformationExchange):
    """FloodSet plus the counts of the last two rounds."""

    name = "diff"

    def initial_local(self, agent: int, init_value: int) -> DiffFloodSetLocal:
        seen = tuple(value == init_value for value in self.values())
        return DiffFloodSetLocal(
            init=init_value,
            decided=False,
            decision=None,
            seen=seen,
            count=self.num_agents,
            prev_count=self.num_agents,
        )

    def message(
        self, agent: int, local: DiffFloodSetLocal, action: Action, time: int
    ) -> Optional[Hashable]:
        return local.seen

    def update(
        self,
        agent: int,
        local: DiffFloodSetLocal,
        action: Action,
        received: Mapping[int, Hashable],
        time: int,
    ) -> DiffFloodSetLocal:
        seen = merge_seen(local.seen, received.values())
        return local._replace(
            seen=seen, count=len(received), prev_count=local.count
        )

    def observation(self, agent: int, local: DiffFloodSetLocal) -> Tuple:
        return (local.seen, local.count, local.prev_count)

    def observation_features(
        self, agent: int, local: DiffFloodSetLocal
    ) -> Dict[str, Hashable]:
        features: Dict[str, Hashable] = {
            f"values_received[{value}]": local.seen[value] for value in self.values()
        }
        features["count"] = local.count
        features["prev_count"] = local.prev_count
        return features
