"""Information-exchange protocols studied in the paper.

For the Simultaneous Byzantine Agreement (SBA) problem, Section 7:

* :class:`~repro.exchanges.floodset.FloodSetExchange` — Lynch's FloodSet:
  each agent broadcasts the set of values it has seen.
* :class:`~repro.exchanges.count_floodset.CountFloodSetExchange` — FloodSet
  plus a count of the messages received in the most recent round
  (Castañeda et al.).
* :class:`~repro.exchanges.diff_floodset.DiffFloodSetExchange` — FloodSet
  plus the current and previous round's counts.
* :class:`~repro.exchanges.dwork_moses.DworkMosesExchange` — the variables of
  the Dwork–Moses protocol derived from the full-information analysis of
  common knowledge (failure sets, ``exists0`` and the waste estimate).

For the Eventual Byzantine Agreement (EBA) problem, Section 9:

* :class:`~repro.exchanges.eba_min.EMinExchange` — agents broadcast only the
  value they have just decided.
* :class:`~repro.exchanges.eba_basic.EBasicExchange` — additionally, agents
  with initial value 1 broadcast ``(init, 1)`` and everyone counts those
  messages (``num1``), enabling an early decision on 1.
"""

from repro.exchanges.floodset import FloodSetExchange, FloodSetLocal
from repro.exchanges.count_floodset import CountFloodSetExchange, CountFloodSetLocal
from repro.exchanges.diff_floodset import DiffFloodSetExchange, DiffFloodSetLocal
from repro.exchanges.dwork_moses import DworkMosesExchange, DworkMosesLocal
from repro.exchanges.eba_min import EMinExchange, EMinLocal
from repro.exchanges.eba_basic import EBasicExchange, EBasicLocal

__all__ = [
    "FloodSetExchange",
    "FloodSetLocal",
    "CountFloodSetExchange",
    "CountFloodSetLocal",
    "DiffFloodSetExchange",
    "DiffFloodSetLocal",
    "DworkMosesExchange",
    "DworkMosesLocal",
    "EMinExchange",
    "EMinLocal",
    "EBasicExchange",
    "EBasicLocal",
    "exchange_by_name",
]


def exchange_by_name(name: str, num_agents: int, num_values: int, max_faulty: int):
    """Construct an information exchange from its short name.

    Recognised names: ``floodset``, ``count``, ``diff``, ``dwork-moses``,
    ``emin``, ``ebasic``.
    """
    registry = {
        "floodset": FloodSetExchange,
        "count": CountFloodSetExchange,
        "diff": DiffFloodSetExchange,
        "dwork-moses": DworkMosesExchange,
        "emin": EMinExchange,
        "ebasic": EBasicExchange,
    }
    try:
        factory = registry[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown exchange {name!r}; expected one of {sorted(registry)}"
        ) from exc
    return factory(num_agents, num_values, max_faulty)
