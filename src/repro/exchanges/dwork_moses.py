"""The Dwork–Moses information exchange (Section 7.4 of the paper).

The Dwork–Moses protocol is derived from an analysis of common knowledge in
the full-information protocol for the crash failures model.  The derived
protocol does not keep full-information state; it maintains only:

* ``exists0`` — whether the agent is aware of some agent with initial value 0,
* ``known_faulty`` (the paper's ``F ∪ RF``) — the set of agents the agent
  knows to be faulty, either by failing to receive a message from them
  (``F``) or by hearing about them from others (``RF``),
* ``newly_faulty`` (``NF``) — the agents newly discovered faulty in the last
  round, which is what the agent broadcasts,
* ``waste`` — the agent's estimate of the number of *wasted* failures, where
  a failure is wasted if it was not needed to delay a clean round.  The
  estimate is ``max_k (d_k - k)`` over the rounds ``k`` executed so far, with
  ``d_k`` the number of agents known faulty by the end of round ``k``.

In every round the agent broadcasts the pair ``(NF, exists0)``.  The derived
decision rule (see :class:`repro.protocols.dwork_moses.DworkMosesProtocol`)
decides as soon as ``time >= t + 1 - waste``, the point at which the existence
of a clean round has become common knowledge.

The exchange is defined for the binary value domain ``V = {0, 1}``, as in the
original paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Mapping, NamedTuple, Optional, Tuple

from repro.systems.actions import Action
from repro.systems.exchange import InformationExchange


class DworkMosesLocal(NamedTuple):
    """Local state of a Dwork–Moses agent."""

    init: int
    decided: bool
    decision: Optional[int]
    exists0: bool
    known_faulty: FrozenSet[int]
    newly_faulty: FrozenSet[int]
    waste: int


class DworkMosesExchange(InformationExchange):
    """Broadcast ``(NF, exists0)``; track known-faulty sets and the waste."""

    name = "dwork-moses"

    def __init__(self, num_agents: int, num_values: int, max_faulty: int) -> None:
        if num_values != 2:
            raise ValueError("the Dwork-Moses protocol is defined for V = {0, 1}")
        super().__init__(num_agents, num_values, max_faulty)

    def initial_local(self, agent: int, init_value: int) -> DworkMosesLocal:
        return DworkMosesLocal(
            init=init_value,
            decided=False,
            decision=None,
            exists0=(init_value == 0),
            known_faulty=frozenset(),
            newly_faulty=frozenset(),
            waste=0,
        )

    def message(
        self, agent: int, local: DworkMosesLocal, action: Action, time: int
    ) -> Optional[Hashable]:
        return (local.newly_faulty, local.exists0)

    def update(
        self,
        agent: int,
        local: DworkMosesLocal,
        action: Action,
        received: Mapping[int, Hashable],
        time: int,
    ) -> DworkMosesLocal:
        exists0 = local.exists0 or any(flag for _, flag in received.values())

        silent = frozenset(
            other for other in range(self.num_agents) if other not in received
        )
        reported: FrozenSet[int] = frozenset()
        for newly, _ in received.values():
            reported |= newly

        known = local.known_faulty | silent | reported
        newly_faulty = known - local.known_faulty
        round_number = time + 1
        # A failure arriving in a sender's NF broadcast was *newly known to
        # the sender in the previous round*, so it counts towards
        # d_{round-1}, not d_round — attributing it to the receiving round
        # under-estimates the waste and can break simultaneity: the direct
        # witness of two same-round crashes decides at t + 1 - 1 while an
        # agent that only heard about them decides at t + 1 (found by the
        # random-run property test at n=4, t=2 with asymmetric last-round
        # delivery).  The waste is therefore max over both attributions:
        # everything known by the end of the previous round (own knowledge
        # plus reports) against round-1, and the full new set against round.
        waste = max(
            local.waste,
            len(local.known_faulty | reported) - (round_number - 1),
            len(known) - round_number,
        )

        return local._replace(
            exists0=exists0,
            known_faulty=known,
            newly_faulty=newly_faulty,
            waste=waste,
        )

    def observation(self, agent: int, local: DworkMosesLocal) -> Tuple:
        return (local.exists0, local.known_faulty, local.newly_faulty, local.waste)

    def observation_features(
        self, agent: int, local: DworkMosesLocal
    ) -> Dict[str, Hashable]:
        return {
            "exists0": local.exists0,
            "known_faulty": local.known_faulty,
            "newly_faulty": local.newly_faulty,
            "num_known_faulty": len(local.known_faulty),
            "waste": local.waste,
        }
