"""FloodSet with a count of messages received in the most recent round.

This is the first of the Castañeda-et-al. variants considered in Section 7.2
of the paper.  The messages are the same as in FloodSet, but each agent also
maintains a variable ``count`` holding the number of agents from which it
received a message in the most recent round.  An agent is treated as sending
itself a message in every round, so ``count >= 1`` whenever the agent has not
crashed.

The count provides extra knowledge: ``count <= 1`` implies every other agent
has crashed, in which case common knowledge among the nonfaulty agents
degenerates to the agent's own knowledge and an early decision is safe (the
paper's condition (3)).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, NamedTuple, Optional, Tuple

from repro.exchanges.floodset import merge_seen
from repro.systems.actions import Action
from repro.systems.exchange import InformationExchange


class CountFloodSetLocal(NamedTuple):
    """Local state of a Count-FloodSet agent."""

    init: int
    decided: bool
    decision: Optional[int]
    seen: Tuple[bool, ...]
    count: int


class CountFloodSetExchange(InformationExchange):
    """FloodSet plus the number of messages received in the last round."""

    name = "count"

    def initial_local(self, agent: int, init_value: int) -> CountFloodSetLocal:
        seen = tuple(value == init_value for value in self.values())
        return CountFloodSetLocal(
            init=init_value,
            decided=False,
            decision=None,
            seen=seen,
            count=self.num_agents,
        )

    def message(
        self, agent: int, local: CountFloodSetLocal, action: Action, time: int
    ) -> Optional[Hashable]:
        return local.seen

    def update(
        self,
        agent: int,
        local: CountFloodSetLocal,
        action: Action,
        received: Mapping[int, Hashable],
        time: int,
    ) -> CountFloodSetLocal:
        seen = merge_seen(local.seen, received.values())
        return local._replace(seen=seen, count=len(received))

    def observation(self, agent: int, local: CountFloodSetLocal) -> Tuple:
        return (local.seen, local.count)

    def observation_features(
        self, agent: int, local: CountFloodSetLocal
    ) -> Dict[str, Hashable]:
        features: Dict[str, Hashable] = {
            f"values_received[{value}]": local.seen[value] for value in self.values()
        }
        features["count"] = local.count
        return features
