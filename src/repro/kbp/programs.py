"""Declarative descriptions of the paper's knowledge-based programs.

A knowledge-based program is a prioritised list of guarded commands whose
guards are formulas of the logic of knowledge about the *running agent*
(written here as functions from the agent identifier to a formula).  The
programs are not directly executable — they are specifications whose
implementations replace the guards by concrete predicates of the local state
(Fagin et al., chapter 7); see :mod:`repro.core.synthesis` for the
construction and :mod:`repro.kbp.implementation` for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.logic.atoms import decides_now, init_is, some_decided_value
from repro.logic.builders import big_or, common_belief_exists, neg
from repro.logic.formula import EvEventually, Formula, Knows
from repro.systems.actions import Action


@dataclass(frozen=True)
class GuardedCommand:
    """One ``if <knowledge guard> then <action>`` clause of a program."""

    label: str
    guard: Callable[[int], Formula]
    action: Callable[[int], Optional[Action]]
    description: str

    def guard_for(self, agent: int) -> Formula:
        """The knowledge guard instantiated for a particular agent."""
        return self.guard(agent)


@dataclass(frozen=True)
class KnowledgeBasedProgram:
    """A prioritised list of guarded commands (first applicable clause fires)."""

    name: str
    commands: Tuple[GuardedCommand, ...]
    description: str


def sba_program_p(num_values: int) -> KnowledgeBasedProgram:
    """The SBA program ``P`` (Section 5, equation (1)).

    ``do noop until ∃v . B^N_i CB_N ∃v; decide the least such v``.  Each value
    gets its own guarded command, in increasing order of the value, which
    encodes the least-value tie-break.
    """
    commands = []
    for value in range(num_values):
        commands.append(
            GuardedCommand(
                label=f"decide-{value}",
                guard=lambda agent, value=value: common_belief_exists(agent, value),
                action=lambda agent, value=value: value,
                description=(
                    f"decide {value} when B^N_i CB_N (some agent has initial value {value})"
                ),
            )
        )
    return KnowledgeBasedProgram(
        name="P (SBA)",
        commands=tuple(commands),
        description=(
            "Do nothing until there is common belief among the nonfaulty agents "
            "that some initial value exists; then decide the least such value."
        ),
    )


def eba_program_p0(num_agents: int) -> KnowledgeBasedProgram:
    """The EBA program ``P0`` (Section 8).

    Decide 0 when ``init_i = 0`` or the agent knows some agent has decided 0;
    decide 1 when the agent knows no agent decides 0 now or in the future.
    """

    def decide_zero_guard(agent: int) -> Formula:
        return big_or([init_is(agent, 0), Knows(agent, some_decided_value(0))])

    def decide_one_guard(agent: int) -> Formula:
        someone_decides_zero = big_or(
            decides_now(other, 0) for other in range(num_agents)
        )
        return Knows(agent, neg(EvEventually(someone_decides_zero)))

    commands = (
        GuardedCommand(
            label="decide-0",
            guard=decide_zero_guard,
            action=lambda agent: 0,
            description="decide 0 when init is 0 or some agent is known to have decided 0",
        ),
        GuardedCommand(
            label="decide-1",
            guard=decide_one_guard,
            action=lambda agent: 1,
            description="decide 1 when the agent knows no agent decides 0 now or later",
        ),
    )
    return KnowledgeBasedProgram(
        name="P0 (EBA)",
        commands=commands,
        description=(
            "Repeat until decided: decide 0 on an initial 0 or on knowledge of a 0 "
            "decision; decide 1 on knowledge that no agent ever decides 0."
        ),
    )
