"""A SIGALRM-based wall-clock guard for work that cannot be forked.

The grid runner enforces per-cell budgets by forking and killing; two places
cannot do that and still need a budget: ``run_case(in_process=True)`` (the
benchmarks' no-fork path) and the scheduler's own pre-fork space builds.
:func:`wall_clock_limit` covers both with an interval timer that raises
:class:`WallClockExceeded` in the guarded frame.

Signals only deliver to the main thread, so off the main thread (or on
platforms without ``SIGALRM``) the guard degrades to a no-op with an explicit
:class:`RuntimeWarning` — a silent no-op is exactly the bug this module
exists to fix.  Best-effort by nature: code stuck inside one long C-level
operation (a huge arbitrary-precision multiply) reaches no bytecode boundary
where the raise can happen; the forked runner remains the hard guarantee.
"""

from __future__ import annotations

import signal
import threading
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional


class WallClockExceeded(Exception):
    """The guarded block ran past its wall-clock budget."""


def _signals_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def wall_clock_limit(
    seconds: Optional[float], label: str = "guarded block"
) -> Iterator[bool]:
    """Raise :class:`WallClockExceeded` if the block outlives ``seconds``.

    ``seconds=None`` (or non-positive) disables the guard.  Yields whether
    the budget is actually enforced, so callers can fall back to a stricter
    strategy when it is not.  Not reentrant: nesting would cancel the outer
    timer when the inner block exits.
    """
    if seconds is None or seconds <= 0:
        yield False
        return
    if not _signals_usable():
        warnings.warn(
            f"wall-clock budget for {label} is not enforced: SIGALRM is only "
            "deliverable on the main thread of a POSIX process",
            RuntimeWarning,
            stacklevel=3,
        )
        yield False
        return

    def _expired(signum, frame):  # noqa: ARG001 - signal handler shape
        raise WallClockExceeded(
            f"{label} exceeded its {seconds:g}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
