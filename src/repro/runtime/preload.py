"""The :class:`Preloader`: read-only space artefacts built before forking.

Both fork planes use one discipline, the per-worker preload idiom: the
parent process builds the space artefacts its children will need *before*
forking, the fork inherits them copy-on-write, and nothing in the parent
mutates them afterwards — so N children share one build at zero copy cost,
and a child warming additional (formula-specific) masks dirties only its own
pages.

* The grid scheduler groups pending cells by :class:`~repro.runtime.plan.
  SpaceKey`, calls :meth:`Preloader.ensure` for each group at the largest
  horizon any of its cells needs, forks the group's cells, then
  :meth:`Preloader.release`\\ s the group so the parent's footprint stays one
  group wide.
* ``repro serve --preload SPEC`` parses a scenario frontier
  (:func:`parse_frontier`), preloads every distinct space the frontier's
  checking cells would build, and forks workers that answer their first
  queries warm.

Sessions consume a preloader through ``Session(preloaded=...)``: space
lookups that miss the cache are served from the preloaded artefacts
(counted in ``stats().preloaded``) instead of building.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.scenario import TASK_FIELDS, Scenario
from repro.runtime.plan import (
    SHARED_SPACE_TASKS,
    SpaceArtefacts,
    SpaceKey,
    build_space_artefacts,
    model_key,
    resolve_horizon,
)
from repro.systems.space import LevelledSpace

#: Frontier spec names understood by ``serve --preload`` (the experiment
#: grids, i.e. the traffic shapes the paper's tables imply).
FRONTIER_NAMES = (
    "table1", "table2", "table3", "ablation-temporal", "ablation-failures",
)


class Preloader:
    """A table of read-only :class:`SpaceArtefacts`, built parent-side.

    Single-writer by design: the owning (parent) process populates it via
    :meth:`ensure`/:meth:`preload_cells`; sessions — in this process or in
    forked children — only read.  Reads race benignly against a concurrent
    background preload (``serve --preload`` with one worker): a key is
    either fully published or absent, never half-built, because artefacts
    are only inserted after their build completes.
    """

    def __init__(self) -> None:
        self._artefacts: Dict[SpaceKey, SpaceArtefacts] = {}
        self._models: Dict[Tuple, object] = {}

    # ------------------------------------------------------------- population

    def ensure(
        self, scenario: Scenario, horizon: Optional[int] = None
    ) -> SpaceArtefacts:
        """Build (or reuse) the artefacts for a scenario's space.

        ``horizon`` is the largest horizon the artefacts must serve (the
        scenario's own resolved horizon by default).  An existing build that
        already covers it — or that busted the state budget, which no taller
        rebuild can fix — is reused; otherwise the space is rebuilt at the
        larger horizon (never extended in place: sessions may already hold
        the published object, whose recorded horizon must not change under
        them).
        """
        key = SpaceKey.from_scenario(scenario)
        target = horizon if horizon is not None else resolve_horizon(scenario)
        existing = self._artefacts.get(key)
        if existing is not None and (
            existing.target_horizon >= target or existing.budget_exceeded
        ):
            return existing
        artefacts = build_space_artefacts(scenario, horizon=target)
        self._artefacts[key] = artefacts
        self._models[model_key(scenario)] = artefacts.model
        return artefacts

    def preload_cells(
        self, cells: Iterable[Tuple[str, Scenario]]
    ) -> Dict[str, int]:
        """Preload every distinct space a frontier's checking cells build.

        Cells whose task builds no shareable space (synthesis) are skipped —
        preloading a literature-protocol space they will never read would
        only cost memory.  Returns a small summary for logging.
        """
        demands: Dict[SpaceKey, Tuple[Scenario, int]] = {}
        skipped = 0
        for task, scenario in cells:
            if task not in SHARED_SPACE_TASKS:
                skipped += 1
                continue
            key = SpaceKey.from_scenario(scenario)
            horizon = resolve_horizon(scenario)
            known = demands.get(key)
            if known is None or horizon > known[1]:
                demands[key] = (scenario, horizon)
        for scenario, horizon in demands.values():
            self.ensure(scenario, horizon=horizon)
        return {
            "spaces": len(demands),
            "states": self.total_states(),
            "skipped_cells": skipped,
        }

    def release(self, key: SpaceKey) -> None:
        """Drop the parent's reference to one space's artefacts.

        Children forked while the artefacts were live keep their
        copy-on-write view; releasing only bounds the parent's footprint.
        The (tiny) model stays cached.
        """
        self._artefacts.pop(key, None)

    # ---------------------------------------------------------------- lookup

    def get(self, key: SpaceKey) -> Optional[SpaceArtefacts]:
        return self._artefacts.get(key)

    def space_for(
        self, scenario: Scenario, horizon: int
    ) -> Optional[LevelledSpace]:
        """The preloaded space for a scenario at a horizon, if covered.

        May raise :class:`~repro.systems.space.SpaceBudgetExceeded` when the
        preloaded build busted the same budget a fresh build would bust.
        """
        artefacts = self._artefacts.get(SpaceKey.from_scenario(scenario))
        if artefacts is None:
            return None
        return artefacts.space_for(horizon)

    def model_for(self, scenario: Scenario):
        """The preloaded model for a scenario's model slice, if any."""
        return self._models.get(model_key(scenario))

    def keys(self) -> List[SpaceKey]:
        return list(self._artefacts)

    def total_states(self) -> int:
        """Total states across all live artefacts (parent-side footprint)."""
        return sum(
            artefacts.space.num_states()
            for artefacts in self._artefacts.values()
            if artefacts.space is not None
        )

    def __len__(self) -> int:
        return len(self._artefacts)

    def __contains__(self, key: SpaceKey) -> bool:
        return key in self._artefacts


def parse_frontier(spec: str) -> List[Tuple[str, Scenario]]:
    """Parse a ``serve --preload`` scenario-frontier spec into (task, scenario).

    The spec names one of the experiment grids plus optional comma-separated
    options: ``table1``, ``table1:max-n=4``, ``table2:max-n=3,engine=set``.
    The grid's resolved cells *are* the frontier — the queries a service
    warmed for that table should answer without a cold build.  Raises
    ``ValueError`` for unknown names or malformed options, so the CLI can
    reject a typo before binding a socket.
    """
    # Local import: harness.tables imports this package at module level, so
    # hoisting would close an import cycle.  The race IMP01 guards against
    # cannot bite here: serve() calls parse_frontier on the main thread,
    # before the preload worker or any serving thread exists.
    from repro.harness.tables import (  # lint: disable=IMP01
        _resolved_cells,
        ablation_failure_models,
        ablation_temporal_only,
        table1_spec,
        table2_spec,
        table3_spec,
    )

    factories = {
        "table1": table1_spec,
        "table2": table2_spec,
        "table3": table3_spec,
        "ablation-temporal": ablation_temporal_only,
        "ablation-failures": ablation_failure_models,
    }
    name, _, raw_options = spec.partition(":")
    if name not in factories:
        raise ValueError(
            f"unknown preload frontier {name!r} "
            f"(expected one of {sorted(factories)})"
        )
    kwargs: Dict[str, object] = {}
    if raw_options:
        for part in raw_options.split(","):
            option, separator, value = part.partition("=")
            if not separator or not value:
                raise ValueError(
                    f"malformed preload option {part!r} (expected key=value)"
                )
            if option == "max-n":
                try:
                    kwargs["max_n"] = int(value)
                except ValueError as exc:
                    raise ValueError(
                        f"preload option max-n must be an integer, got {value!r}"
                    ) from exc
            elif option == "engine":
                kwargs["engine"] = value
            else:
                raise ValueError(
                    f"unknown preload option {option!r} "
                    "(expected max-n or engine)"
                )
    table_spec = factories[name](**kwargs)

    cells: List[Tuple[str, Scenario]] = []
    for _, _, task, params in _resolved_cells(table_spec, None):
        if task in TASK_FIELDS:
            cells.append((task, Scenario.from_task_params(task, params)))
    return cells
