"""The compute plane: engine-independent space planning and pre-fork builds.

Both fork planes — the grid scheduler (:func:`repro.harness.tables.run_table`)
and the pre-fork serving front (``repro serve --workers N``) — pay the same
dominant cold cost: every forked child rebuilds its
:class:`~repro.systems.space.LevelledSpace` from scratch, even when dozens of
cells or queries share one (exchange, n, t, failures) space.  This package is
the shared mechanism that amortises that cost:

* :mod:`repro.runtime.plan` — :class:`SpaceKey`, the engine-independent
  identity of a space, and :func:`build_space_artefacts`, the build pipeline
  extracted out of ``Session._space`` (space plus pre-warmed packed bitset
  masks, budget-tolerant, horizon-prefix-sharable);
* :mod:`repro.runtime.preload` — :class:`Preloader`, a read-only artefact
  set built in the parent process *before* forking so children inherit it
  copy-on-write, plus the ``serve --preload`` scenario-frontier parser;
* :mod:`repro.runtime.guard` — the SIGALRM wall-clock guard shared by
  in-process case runs and parent-side preloads.
"""

from repro.runtime.guard import WallClockExceeded, wall_clock_limit
from repro.runtime.plan import (
    SHARED_SPACE_TASKS,
    SpaceArtefacts,
    SpaceKey,
    SpacePlan,
    build_space_artefacts,
    cell_space_plan,
    model_cache_key,
    model_key,
    space_cache_key,
    space_plan,
)
from repro.runtime.preload import Preloader, parse_frontier

__all__ = [
    "SHARED_SPACE_TASKS",
    "Preloader",
    "SpaceArtefacts",
    "SpaceKey",
    "SpacePlan",
    "WallClockExceeded",
    "build_space_artefacts",
    "cell_space_plan",
    "model_cache_key",
    "model_key",
    "parse_frontier",
    "space_cache_key",
    "space_plan",
    "wall_clock_limit",
]
