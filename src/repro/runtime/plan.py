"""Space planning: the engine-independent identity and build pipeline.

This module is ``Session._model_key``/``Session._space`` factored out of the
session so that *both* fork planes can name and build a space without a
session: :class:`SpaceKey` is the identity of one literature-protocol space,
:func:`build_space_artefacts` is the build pipeline (space plus pre-warmed
packed bitset masks), and :func:`cell_space_plan` maps a grid cell onto the
space it would build — ``None`` for cells that build no shareable space.

Two properties of the key are load-bearing:

* **The engine is excluded.**  All satisfaction backends read the same
  levelled space; one build serves bitset, symbolic and set cells alike
  (exactly the invariant ``Session._space`` already encoded in its cache
  key).
* **The horizon is excluded.**  Levels are built incrementally and
  deterministically — the decision rule sees only (agent, local state,
  time) — so the space at horizon ``h`` is a *prefix* of the space at any
  larger horizon.  One build at the largest horizon a group of cells needs
  serves every smaller-horizon cell through :meth:`SpaceArtefacts.space_for`
  (Table 2's rounds sweeps are dozens of cells over a handful of spaces for
  precisely this reason).  Prefixes share the per-level state lists and the
  warmed mask caches; they are never mutated after a level is built, so
  sharing is safe in-process and free across forks (copy-on-write).

Only the session cache keys produced by :func:`model_cache_key` and
:func:`space_cache_key` are persisted (they feed the artefact store's string
keys); they reproduce the pre-refactor tuples byte for byte, so persistent
stores written before the compute plane stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.api.build import build_model, literature_protocol
from repro.api.scenario import Scenario
from repro.systems.space import (
    LevelledSpace,
    SpaceBudgetExceeded,
    joint_actions_for_level,
)

#: Tasks whose cells build the literature-protocol space a :class:`SpaceKey`
#: names.  The synthesis tasks are *not* here on purpose: synthesis grows its
#: own space incrementally under the synthesized rule (the actions at level m
#: depend on the conditions synthesized at earlier levels), so no prebuilt
#: literature-protocol space can serve it.
SHARED_SPACE_TASKS = ("sba-model-check", "sba-temporal-only", "eba-model-check")

#: Mask caches copied onto a prefix space, keyed by (time, ...) tuples.
_TIMED_CACHES = (
    "_group_cache",
    "_obs_mask_cache",
    "_nonfaulty_mask_cache",
    "_atom_mask_cache",
)


@dataclass(frozen=True)
class SpaceKey:
    """The engine- and horizon-independent identity of one levelled space.

    Everything that shapes the reachable states and recorded actions:
    the information exchange, the system size, the value domain, the failure
    model, the (named) decision protocol and the state budget.  Frozen and
    hashable so it can key preloader tables and scheduler groups directly.
    """

    exchange: str
    num_agents: int
    max_faulty: int
    num_values: int
    failures: str
    protocol: str
    max_states: Optional[int]

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "SpaceKey":
        return cls(
            exchange=scenario.exchange,
            num_agents=scenario.num_agents,
            max_faulty=scenario.max_faulty,
            num_values=scenario.num_values,
            failures=scenario.failures,
            protocol=literature_protocol(scenario).name,
            max_states=scenario.max_states,
        )


@dataclass(frozen=True)
class SpacePlan:
    """One cell's space demand: the key plus the horizon the cell checks to."""

    key: SpaceKey
    horizon: int


def model_key(scenario: Scenario) -> Tuple:
    """The model slice of a scenario (the pre-refactor ``Session._model_key``)."""
    return (
        scenario.exchange,
        scenario.num_agents,
        scenario.max_faulty,
        scenario.num_values,
        scenario.failures,
    )


def model_cache_key(scenario: Scenario) -> Tuple:
    """The session/store cache key of a scenario's model (stable tuple)."""
    return ("model",) + model_key(scenario)


def space_cache_key(scenario: Scenario, protocol_name: str, horizon: int) -> Tuple:
    """The session/store cache key of a scenario's space (stable tuple)."""
    return ("space",) + model_key(scenario) + (
        protocol_name, horizon, scenario.max_states,
    )


def resolve_horizon(scenario: Scenario, model=None) -> int:
    """The horizon a scenario's queries run to (``rounds`` or the default)."""
    if scenario.rounds is not None:
        return scenario.rounds
    if model is None:
        model = build_model(scenario)
    return model.default_horizon()


def space_plan(scenario: Scenario) -> SpacePlan:
    """The space a scenario's literature-protocol queries would build."""
    return SpacePlan(
        key=SpaceKey.from_scenario(scenario), horizon=resolve_horizon(scenario)
    )


def cell_space_plan(task: str, params: Mapping[str, object]) -> Optional[SpacePlan]:
    """The space plan of one grid cell, or None when nothing is shareable.

    Ad-hoc tasks (tests register those straight into the runner's ``TASKS``)
    and the synthesis tasks return None: the scheduler runs such cells on the
    per-cell rebuild path unchanged.
    """
    if task not in SHARED_SPACE_TASKS:
        return None
    try:
        scenario = Scenario.from_task_params(task, dict(params))
    except (TypeError, ValueError):
        return None
    return space_plan(scenario)


@dataclass
class SpaceArtefacts:
    """One built space plus everything needed to serve it read-only.

    ``built_horizon`` is the last level whose states, actions and (below the
    top) successors are complete *and* within the state budget; with
    ``budget_exceeded`` the build stopped early and levels past
    ``built_horizon`` are unreachable under this budget for any fresh build
    too.  After construction the artefacts are treated as read-only: levels
    and masks are only ever *read* by sessions (in-process) or inherited
    copy-on-write by forked children; nothing mutates them in the parent.
    """

    key: SpaceKey
    model: object
    protocol: object
    space: Optional[LevelledSpace]
    built_horizon: int
    target_horizon: int
    budget_exceeded: bool = False

    def space_for(self, horizon: int) -> Optional[LevelledSpace]:
        """The space at exactly ``horizon``, served from this build.

        Returns the built space itself at the exact horizon, a prefix view
        for smaller horizons, or None when this build stopped short of the
        request without busting its budget (the caller builds fresh).  When
        the budget *was* busted below the requested horizon, raises
        :class:`SpaceBudgetExceeded` — a fresh build of the same scenario
        would bust at the same extension, so raising here is equivalence,
        not a shortcut.
        """
        if horizon > self.built_horizon:
            if self.budget_exceeded:
                raise SpaceBudgetExceeded(
                    f"state budget of {self.key.max_states} states exceeded "
                    f"(preloaded build of {self.key} stopped at level "
                    f"{self.built_horizon})"
                )
            return None
        assert self.space is not None
        if horizon == self.target_horizon and not self.budget_exceeded:
            return self.space
        return _prefix_space(self.space, horizon)


def _cache_time(cache_key) -> int:
    """The level a mask-cache entry belongs to (keys are time or (time, ...))."""
    return cache_key[0] if isinstance(cache_key, tuple) else cache_key


def _prefix_space(source: LevelledSpace, horizon: int) -> LevelledSpace:
    """A horizon-``horizon`` view sharing the source's built levels and masks.

    The per-level lists are shared by reference (levels are append-only and
    never mutated once built); the outer lists and the mask caches are fresh
    containers, so a consumer warming *new* masks on the prefix never touches
    the source's caches.
    """
    prefix = LevelledSpace(
        model=source.model,
        horizon=horizon,
        levels=source.levels[: horizon + 1],
        index_of=source.index_of[: horizon + 1],
        actions=source.actions[: horizon + 1],
        successors=source.successors[:horizon],
        max_states=source.max_states,
    )
    for name in _TIMED_CACHES:
        cache = getattr(source, name, None)
        if cache:
            object.__setattr__(
                prefix,
                name,
                {
                    key: value
                    for key, value in cache.items()
                    if _cache_time(key) <= horizon
                },
            )
    level_masks = getattr(source, "_level_mask_cache", None)
    if level_masks:
        object.__setattr__(
            prefix,
            "_level_mask_cache",
            {time: mask for time, mask in level_masks.items() if time <= horizon},
        )
    predecessors = getattr(source, "_pred_mask_cache", None)
    if predecessors:
        object.__setattr__(
            prefix,
            "_pred_mask_cache",
            {time: masks for time, masks in predecessors.items() if time < horizon},
        )
    return prefix


def _warm_masks(space: LevelledSpace, built_horizon: int) -> None:
    """Precompute the packed bitset masks every checker consults.

    This is the copy-on-write payload: the per-(level, agent) observation
    partitions, nonfaulty masks, level masks and predecessor masks are what
    the satisfaction engines hit first on every query; computing them once in
    the parent means every forked child inherits them for free.  Atom masks
    are formula-specific and stay lazy.
    """
    agents = list(space.model.agents())
    for time in range(built_horizon + 1):
        space.level_mask(time)
        for agent in agents:
            space.observation_masks(time, agent)
            space.nonfaulty_mask(time, agent)
        if time < built_horizon and time < len(space.successors):
            space.predecessor_masks(time)


def build_space_artefacts(
    scenario: Scenario,
    horizon: Optional[int] = None,
    warm_masks: bool = True,
) -> SpaceArtefacts:
    """Build one scenario's space artefacts, budget-tolerantly.

    The build pipeline extracted from ``Session._space``: model, literature
    protocol, then the levelled space built level by level to ``horizon``
    (the scenario's resolved horizon by default).  Unlike
    :func:`~repro.systems.space.build_space`, a state-budget bust does not
    discard the work: every level completed within budget is kept and
    remains servable to smaller-horizon cells, which see exactly the space
    their own fresh build would have produced (the budget check is a running
    total over built levels, so the bust point is horizon-independent).
    """
    model = build_model(scenario)
    protocol = literature_protocol(scenario)
    target = horizon if horizon is not None else resolve_horizon(scenario, model)

    try:
        space = LevelledSpace.initial(
            model, horizon=target, max_states=scenario.max_states
        )
    except SpaceBudgetExceeded:
        return SpaceArtefacts(
            key=SpaceKey.from_scenario(scenario),
            model=model,
            protocol=protocol,
            space=None,
            built_horizon=-1,
            target_horizon=target,
            budget_exceeded=True,
        )

    built = 0
    budget_exceeded = False
    try:
        for level in range(target + 1):
            space.set_actions(
                level, joint_actions_for_level(space, level, protocol)
            )
            built = level
            if level < target:
                space.extend()
    except SpaceBudgetExceeded:
        # The over-budget level is fully constructed (extend() appends before
        # checking) but carries no actions; prefix serving never reaches it.
        budget_exceeded = True

    if warm_masks:
        _warm_masks(space, built)
    return SpaceArtefacts(
        key=SpaceKey.from_scenario(scenario),
        model=model,
        protocol=protocol,
        space=space,
        built_horizon=built,
        target_horizon=target,
        budget_exceeded=budget_exceeded,
    )
