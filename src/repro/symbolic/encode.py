"""Factored boolean encoding of a levelled state space.

A global state is a pair of an environment state (owned by the failure
model) and one local state per agent (owned by the exchange), so each level
of a :class:`~repro.systems.space.LevelledSpace` is encoded with one block
of boolean variables per *component*: the distinct environment states seen
at the level get a binary-coded ``env`` block, and each agent's distinct
local states get a binary-coded block of their own.  A state's code word is
the concatenation of its component ids, which makes the encoding *factored*:
anything that is a function of one component — an agent's observation, its
initial value, the failure status — is a BDD over that component's block
only, with size governed by the number of distinct component values rather
than the number of global states.

This factoring is what the epistemic operators exploit.  The clock-semantics
indistinguishability relation of agent ``i`` ("same observation") is a
relation over agent ``i``'s block alone: two states are related iff their
local components map to the same observation, so the relation BDD is built
from the level's distinct local states — never from the (exponentially
larger) set of global states.

Every variable position ``p`` owns an interleaved pair of BDD variables:
``2p`` for the current state and ``2p + 1`` for the next/primed copy, so
priming a set before a relational image is the order-preserving renaming
``2p -> 2p + 1``.

The :class:`SpaceEncoder` caches per level: the encoding, the reachable-set
BDD, the observation relations, atom BDDs, and the (edge-built) transition
relation to the next level.  Levels of a space are append-only, so cached
objects never go stale — the same contract the explicit engine's bitmask
caches rely on.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.symbolic.bdd import BDD
from repro.systems.space import LevelledSpace


def _width(count: int) -> int:
    """Bits needed to distinguish ``count`` values (at least one bit)."""
    return max(1, (count - 1).bit_length())


class LevelEncoding:
    """The variable layout and component id maps for one level of a space."""

    def __init__(self, space: LevelledSpace, level: int) -> None:
        self.level = level
        states = space.levels[level]
        model = space.model
        self.num_agents = model.num_agents

        env_ids: Dict[Hashable, int] = {}
        local_ids: List[Dict[Tuple, int]] = [{} for _ in range(self.num_agents)]
        codes: List[Tuple[int, ...]] = []
        for state in states:
            code = [env_ids.setdefault(state.env, len(env_ids))]
            for agent in range(self.num_agents):
                ids = local_ids[agent]
                code.append(ids.setdefault(state.locals[agent], len(ids)))
            codes.append(tuple(code))
        #: Distinct environment states at the level, id-indexed.
        self.env_ids = env_ids
        #: Per agent, the distinct local states at the level, id-indexed.
        self.local_ids = local_ids
        #: The component-id code word of every state, state-indexed —
        #: computed in the same pass that assigns the component ids.
        self.codes = codes

        # Variable positions: the env block first, then one block per agent.
        self.env_width = _width(len(env_ids))
        self.local_widths = [_width(len(ids)) for ids in local_ids]
        self.env_base = 0
        self.local_bases: List[int] = []
        base = self.env_width
        for width in self.local_widths:
            self.local_bases.append(base)
            base += width
        #: Total number of variable positions (current/primed pairs).
        self.num_positions = base

        #: index of each state within the level, keyed by its code word
        #: (env id plus per-agent local ids) — the inverse of the encoding.
        self.state_of_code: Dict[Tuple[int, ...], int] = {
            code: index for index, code in enumerate(codes)
        }

    # ----------------------------------------------------------- variable maps

    @staticmethod
    def var(position: int, primed: bool = False) -> int:
        """The BDD variable for a position (interleaved current/primed pair)."""
        return 2 * position + (1 if primed else 0)

    def variables(self, primed: bool = False) -> List[int]:
        """All BDD variables of the level (current or primed copy)."""
        return [self.var(position, primed) for position in range(self.num_positions)]

    def _block_literals(
        self, base: int, width: int, value: int, primed: bool
    ) -> Dict[int, bool]:
        return {
            self.var(base + bit, primed): bool((value >> bit) & 1)
            for bit in range(width)
        }

    def env_cube(self, bdd: BDD, env_id: int, primed: bool = False) -> int:
        """The minterm of an environment id over the env block."""
        return bdd.cube(self._block_literals(self.env_base, self.env_width, env_id, primed))

    def local_cube(self, bdd: BDD, agent: int, local_id: int, primed: bool = False) -> int:
        """The minterm of a local-state id over the agent's block."""
        return bdd.cube(
            self._block_literals(
                self.local_bases[agent], self.local_widths[agent], local_id, primed
            )
        )

    def assignment_of_code(
        self, code: Tuple[int, ...], primed: bool = False
    ) -> Dict[int, bool]:
        """The full variable assignment of a state code word."""
        assignment = self._block_literals(self.env_base, self.env_width, code[0], primed)
        for agent in range(self.num_agents):
            assignment.update(
                self._block_literals(
                    self.local_bases[agent],
                    self.local_widths[agent],
                    code[agent + 1],
                    primed,
                )
            )
        return assignment

    def prime_mapping(self) -> Dict[int, int]:
        """The order-preserving renaming from current to primed variables."""
        return {
            self.var(position): self.var(position, primed=True)
            for position in range(self.num_positions)
        }


class SpaceEncoder:
    """Shared BDD manager plus per-level caches for one levelled space.

    One encoder serves every symbolic query over a space (the checker, the
    synthesis loop, the implementation verifier), so relation and atom BDDs
    are built once per level no matter how many formulas are evaluated.
    """

    def __init__(self, space: LevelledSpace, bdd: Optional[BDD] = None) -> None:
        self.space = space
        self.bdd = bdd if bdd is not None else BDD()
        self._encodings: Dict[int, LevelEncoding] = {}
        self._reach: Dict[int, int] = {}
        self._obs_rel: Dict[Tuple[int, int], int] = {}
        self._nonfaulty: Dict[Tuple[int, int], int] = {}
        self._atoms: Dict[Tuple[int, Hashable], int] = {}
        self._transitions: Dict[int, int] = {}

    # ------------------------------------------------------------- per level

    def encoding(self, level: int) -> LevelEncoding:
        """The (cached) variable layout of a level."""
        cached = self._encodings.get(level)
        if cached is None:
            cached = LevelEncoding(self.space, level)
            self._encodings[level] = cached
        return cached

    def codes(self, level: int) -> List[Tuple[int, ...]]:
        """The code word of every state of the level, state-indexed."""
        return self.encoding(level).codes

    def state_cube(self, level: int, index: int, primed: bool = False) -> int:
        """The minterm BDD of one state of the level."""
        encoding = self.encoding(level)
        return self.bdd.cube(
            encoding.assignment_of_code(self.codes(level)[index], primed)
        )

    def reach(self, level: int) -> int:
        """The BDD of the set of reachable states at the level."""
        cached = self._reach.get(level)
        if cached is None:
            cached = self.bdd.big_or(
                self.state_cube(level, index)
                for index in range(len(self.space.levels[level]))
            )
            self._reach[level] = cached
        return cached

    # -------------------------------------------------------------- relations

    def observation_relation(self, level: int, agent: int) -> int:
        """Indistinguishability of ``agent`` at the level: same observation.

        A relation over the agent's current and primed local blocks only —
        built from the level's distinct local states, grouped by the
        observation they induce.
        """
        key = (level, agent)
        cached = self._obs_rel.get(key)
        if cached is None:
            encoding = self.encoding(level)
            model = self.space.model
            groups: Dict[Tuple, List[int]] = {}
            for local, local_id in encoding.local_ids[agent].items():
                observation = model.exchange.observation(agent, local)
                groups.setdefault(observation, []).append(local_id)
            bdd = self.bdd
            cached = bdd.big_or(
                bdd.apply_and(
                    bdd.big_or(
                        encoding.local_cube(bdd, agent, local_id)
                        for local_id in members
                    ),
                    bdd.big_or(
                        encoding.local_cube(bdd, agent, local_id, primed=True)
                        for local_id in members
                    ),
                )
                for members in groups.values()
            )
            self._obs_rel[key] = cached
        return cached

    def nonfaulty_bdd(self, level: int, agent: int) -> int:
        """The states of the level where ``agent`` is nonfaulty (an env function)."""
        key = (level, agent)
        cached = self._nonfaulty.get(key)
        if cached is None:
            encoding = self.encoding(level)
            failures = self.space.model.failures
            cached = self.bdd.big_or(
                encoding.env_cube(self.bdd, env_id)
                for env, env_id in encoding.env_ids.items()
                if failures.nonfaulty(env, agent)
            )
            self._nonfaulty[key] = cached
        return cached

    def transition(self, level: int) -> int:
        """The transition relation from the level to its successor level.

        Built from the explicitly recorded successor edges: current-state
        variables carry the level's encoding, primed variables carry the
        successor level's.  Only valid for levels whose edges exist.
        """
        cached = self._transitions.get(level)
        if cached is None:
            bdd = self.bdd
            successors = self.space.successors[level]
            target_cubes = [
                self.state_cube(level + 1, target, primed=True)
                for target in range(len(self.space.levels[level + 1]))
            ]
            cached = bdd.big_or(
                bdd.apply_and(
                    self.state_cube(level, index),
                    bdd.big_or(target_cubes[target] for target in targets),
                )
                for index, targets in enumerate(successors)
            )
            self._transitions[level] = cached
        return cached

    # ------------------------------------------------------------------ atoms

    def atom_bdd(self, level: int, key: Hashable) -> int:
        """The BDD of one atomic proposition at the level.

        Structured keys are dispatched to factored constructions (a function
        of one component becomes a BDD over that component's block); unknown
        keys fall back to an explicit per-state disjunction through the
        model's general interpreter, mirroring
        :meth:`~repro.systems.space.LevelledSpace.atom_mask`.
        """
        cache_key = (level, key)
        cached = self._atoms.get(cache_key)
        if cached is None:
            cached = self._compute_atom(level, key)
            self._atoms[cache_key] = cached
        return cached

    def _local_predicate(self, level: int, agent: int, predicate) -> int:
        """The BDD of a predicate of one agent's local state."""
        encoding = self.encoding(level)
        return self.bdd.big_or(
            encoding.local_cube(self.bdd, agent, local_id)
            for local, local_id in encoding.local_ids[agent].items()
            if predicate(local)
        )

    def _compute_atom(self, level: int, key: Hashable) -> int:
        bdd = self.bdd
        model = self.space.model
        kind = key[0] if isinstance(key, tuple) and key else key
        if kind == "init":
            _, agent, value = key
            return self._local_predicate(level, agent, lambda local: local.init == value)
        if kind == "exists":
            _, value = key
            return bdd.big_or(
                self._local_predicate(level, agent, lambda local: local.init == value)
                for agent in model.agents()
            )
        if kind == "decided":
            _, agent = key
            return self._local_predicate(level, agent, lambda local: bool(local.decided))
        if kind == "decision":
            _, agent, value = key
            return self._local_predicate(
                level,
                agent,
                lambda local: bool(local.decided) and local.decision == value,
            )
        if kind == "some_decided":
            _, value = key
            return bdd.big_or(
                self._local_predicate(
                    level,
                    agent,
                    lambda local: bool(local.decided) and local.decision == value,
                )
                for agent in model.agents()
            )
        if kind == "nonfaulty":
            _, agent = key
            return self.nonfaulty_bdd(level, agent)
        if kind == "time":
            _, when = key
            return self.reach(level) if level == when else self.bdd.false
        if kind == "obs":
            _, agent, feature, value = key
            def predicate(local, agent=agent, feature=feature, value=value):
                features = model.exchange.observation_features(agent, local)
                if feature not in features:
                    raise KeyError(
                        f"unknown observable feature {feature!r} for exchange "
                        f"{model.exchange.name!r}"
                    )
                return features[feature] == value
            return self._local_predicate(level, agent, predicate)
        # decides_now and anything unknown: a per-state disjunction through
        # the model's general interpreter (actions are per state, not per
        # component, so decides_now has no factored form in general).
        return bdd.big_or(
            self.state_cube(level, index)
            for index in range(len(self.space.levels[level]))
            if self.space.eval_atom((level, index), key)
        )

    # ------------------------------------------------------------ conversions

    def to_mask(self, level: int, node: int) -> int:
        """Convert a level BDD to the explicit engine's packed bitmask."""
        bdd = self.bdd
        encoding = self.encoding(level)
        bits = 0
        for index, code in enumerate(self.codes(level)):
            if bdd.evaluate(node, encoding.assignment_of_code(code)):
                bits |= 1 << index
        return bits

    def from_mask(self, level: int, mask: int) -> int:
        """Convert a packed bitmask to a level BDD (reachable states only)."""
        cubes = []
        index = 0
        while mask:
            if mask & 1:
                cubes.append(self.state_cube(level, index))
            mask >>= 1
            index += 1
        return self.bdd.big_or(cubes)
