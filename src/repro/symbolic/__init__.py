"""Symbolic (BDD-based) satisfaction backend.

This package is the repository's second satisfaction engine: a pure-Python
reduced-ordered binary decision diagram (ROBDD) library (:mod:`repro.symbolic.bdd`),
a factored boolean encoding of the levelled state space
(:mod:`repro.symbolic.encode`), and a :class:`~repro.symbolic.checker.SymbolicChecker`
that evaluates the :mod:`repro.logic` formula AST with relational images and
BDD fixpoints behind the same interface as the explicit bitset
:class:`~repro.core.checker.ModelChecker`.

Engine selection for the rest of the stack lives in :mod:`repro.engines`.
"""

from repro.symbolic.bdd import BDD
from repro.symbolic.checker import SymbolicChecker
from repro.symbolic.encode import LevelEncoding, SpaceEncoder

__all__ = ["BDD", "LevelEncoding", "SpaceEncoder", "SymbolicChecker"]
