"""Symbolic (BDD-backed) model checking of the knowledge-and-time logic.

:class:`SymbolicChecker` evaluates the same :mod:`repro.logic` formula AST as
the explicit bitset :class:`~repro.core.checker.ModelChecker`, over the same
:class:`~repro.systems.space.LevelledSpace`, and exposes the same query
interface — but every satisfaction set is a BDD over the factored state
variables of :mod:`repro.symbolic.encode` rather than a packed bitmask.

The operator semantics are those of Section 2 of the paper, computed
relationally:

* ``Knows(i, phi)`` fails at a state iff some observation-equivalent state
  satisfies ``~phi``; the failing set is the relational image of ``~phi``
  under the agent's observation relation, computed with a fused
  conjunction-and-quantify (:meth:`~repro.symbolic.bdd.BDD.and_exists`).
  Because the observation relation is factored over the agent's local-state
  block, the image is a function of that block alone.
* ``KnowsNonfaulty(i, phi)`` restricts the witnessing states to those where
  ``i`` is nonfaulty (``B^N_i phi = K_i (i in N => phi)``).
* ``EveryoneBelieves``/``CommonBelief`` iterate the belief operators to the
  greatest fixpoint per level; BDD canonicity makes convergence checks
  integer comparisons.
* The bounded temporal operators are pre-images over the edge-built
  transition relation, with the final level absorbing — exactly the clock
  semantics the bitset engine implements.

The module also hosts the symbolic twins of the specialised per-level
synthesis evaluators (:func:`sba_level_conditions`,
:func:`eba_decide_zero_conditions`), which
:mod:`repro.core.synthesis` dispatches to when ``engine="symbolic"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitset import BitSat, to_level_sets
from repro.core.checker import PackedQueryMixin
from repro.logic.formula import (
    Always,
    And,
    Atom,
    Bottom,
    CommonBelief,
    EvAlways,
    EvEventually,
    EvNext,
    EveryoneBelieves,
    Eventually,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsNonfaulty,
    Next,
    Not,
    Nu,
    Or,
    Top,
    Var,
    check_positive,
)
from repro.symbolic.encode import SpaceEncoder
from repro.systems.space import LevelledSpace

#: The legacy satisfaction-set form, for interface parity with ModelChecker.
SatSet = List[Set[int]]

#: Per-level satisfaction as BDD handles, the engine's native representation.
NodeSat = List[int]


class SymbolicChecker(PackedQueryMixin):
    """BDD-backed model checker with the explicit checker's interface.

    The generic query layer (``holds_at``, ``counterexamples``,
    ``satisfying_observations``) comes from
    :class:`~repro.core.checker.PackedQueryMixin` over :meth:`check_bits`;
    only the whole-level comparisons are overridden, because BDD canonicity
    answers them by handle equality without unpacking to bitmasks.
    """

    def __init__(
        self, space: LevelledSpace, encoder: Optional[SpaceEncoder] = None
    ) -> None:
        self.space = space
        self.encoder = encoder if encoder is not None else SpaceEncoder(space)
        self._node_cache: Dict[Formula, NodeSat] = {}
        self._bit_cache: Dict[Formula, BitSat] = {}
        self._set_cache: Dict[Formula, SatSet] = {}

    # ----------------------------------------------------------------- queries

    def check_nodes(self, formula: Formula) -> NodeSat:
        """The satisfaction set of a closed formula, one BDD per level."""
        check_positive(formula)
        return self._eval(formula, {})

    def check_bits(self, formula: Formula) -> BitSat:
        """The satisfaction set as packed per-level bitmasks.

        Identical in meaning to :meth:`ModelChecker.check_bits`; computed by
        evaluating the per-level BDDs at every state's code word.
        """
        cached = self._bit_cache.get(formula)
        if cached is None:
            nodes = self.check_nodes(formula)
            cached = [
                self.encoder.to_mask(time, node) for time, node in enumerate(nodes)
            ]
            self._bit_cache[formula] = cached
        return cached

    def check(self, formula: Formula) -> SatSet:
        """The satisfaction set in the legacy ``List[Set[int]]`` form."""
        cached = self._set_cache.get(formula)
        if cached is None:
            cached = to_level_sets(self.check_bits(formula))
            self._set_cache[formula] = cached
        return cached

    def holds_initially(self, formula: Formula) -> bool:
        """Whether the formula holds at every initial (time 0) point."""
        return self.check_nodes(formula)[0] == self.encoder.reach(0)

    def holds_everywhere(self, formula: Formula) -> bool:
        """Whether the formula holds at every reachable point."""
        nodes = self.check_nodes(formula)
        return all(
            nodes[time] == self.encoder.reach(time)
            for time in range(len(self.space.levels))
        )

    # -------------------------------------------------------------- evaluation

    def _levels(self) -> int:
        return len(self.space.levels)

    def _full(self) -> NodeSat:
        return [self.encoder.reach(time) for time in range(self._levels())]

    def _empty(self) -> NodeSat:
        return [self.encoder.bdd.false] * self._levels()

    def _eval(self, formula: Formula, env: Dict[str, NodeSat]) -> NodeSat:
        cacheable = not env
        if cacheable and formula in self._node_cache:
            return self._node_cache[formula]
        result = self._eval_uncached(formula, env)
        if cacheable:
            self._node_cache[formula] = result
        return result

    def _eval_uncached(self, formula: Formula, env: Dict[str, NodeSat]) -> NodeSat:
        bdd = self.encoder.bdd
        if isinstance(formula, Top):
            return self._full()
        if isinstance(formula, Bottom):
            return self._empty()
        if isinstance(formula, Atom):
            return [
                bdd.apply_and(
                    self.encoder.reach(time),
                    self.encoder.atom_bdd(time, formula.key),
                )
                for time in range(self._levels())
            ]
        if isinstance(formula, Var):
            if formula.name not in env:
                raise ValueError(f"unbound fixpoint variable {formula.name!r}")
            return list(env[formula.name])
        if isinstance(formula, Not):
            operand = self._eval(formula.operand, env)
            return [
                bdd.apply_diff(self.encoder.reach(time), operand[time])
                for time in range(self._levels())
            ]
        if isinstance(formula, And):
            result = self._full()
            for operand in formula.operands:
                operand_sat = self._eval(operand, env)
                result = [
                    bdd.apply_and(result[time], operand_sat[time])
                    for time in range(self._levels())
                ]
            return result
        if isinstance(formula, Or):
            result = self._empty()
            for operand in formula.operands:
                operand_sat = self._eval(operand, env)
                result = [
                    bdd.apply_or(result[time], operand_sat[time])
                    for time in range(self._levels())
                ]
            return result
        if isinstance(formula, Implies):
            antecedent = self._eval(formula.antecedent, env)
            consequent = self._eval(formula.consequent, env)
            return [
                bdd.apply_or(
                    bdd.apply_diff(self.encoder.reach(time), antecedent[time]),
                    consequent[time],
                )
                for time in range(self._levels())
            ]
        if isinstance(formula, Iff):
            left = self._eval(formula.left, env)
            right = self._eval(formula.right, env)
            return [
                bdd.apply_diff(
                    self.encoder.reach(time),
                    bdd.apply_xor(left[time], right[time]),
                )
                for time in range(self._levels())
            ]
        if isinstance(formula, Knows):
            return self._eval_knows(formula.agent, formula.operand, env, relative=False)
        if isinstance(formula, KnowsNonfaulty):
            return self._eval_knows(formula.agent, formula.operand, env, relative=True)
        if isinstance(formula, EveryoneBelieves):
            operand_sat = self._eval(formula.operand, env)
            return [
                everyone_believes_at(self.encoder, time, operand_sat[time])
                for time in range(self._levels())
            ]
        if isinstance(formula, CommonBelief):
            return self._eval_common_belief(formula.operand, env)
        if isinstance(formula, Nu):
            return self._eval_nu(formula, env)
        if isinstance(formula, Next):
            return self._eval_next(formula.operand, env, universal=True)
        if isinstance(formula, EvNext):
            return self._eval_next(formula.operand, env, universal=False)
        if isinstance(formula, Always):
            return self._eval_globally(formula.operand, env, universal=True)
        if isinstance(formula, EvAlways):
            return self._eval_globally(formula.operand, env, universal=False)
        if isinstance(formula, Eventually):
            return self._eval_eventually(formula.operand, env, universal=True)
        if isinstance(formula, EvEventually):
            return self._eval_eventually(formula.operand, env, universal=False)
        raise TypeError(f"unsupported formula node {type(formula).__name__}")

    # -- epistemic operators --------------------------------------------------

    def _knows_at(self, time: int, agent: int, target: int, relative: bool) -> int:
        """States of one level where ``K_agent`` (or ``B^N_agent``) of a BDD
        target set holds.

        The failing states are the relational image of the target's
        complement (restricted to nonfaulty states for the relative reading)
        under the observation relation — a function of the agent's local
        block, conjoined back with the reachable set.
        """
        return knows_at(self.encoder, time, agent, target, relative)

    def _eval_knows(
        self, agent: int, operand: Formula, env: Dict[str, NodeSat], relative: bool
    ) -> NodeSat:
        operand_sat = self._eval(operand, env)
        return [
            self._knows_at(time, agent, operand_sat[time], relative)
            for time in range(self._levels())
        ]

    def _eval_common_belief(self, operand: Formula, env: Dict[str, NodeSat]) -> NodeSat:
        operand_sat = self._eval(operand, env)
        # As in the explicit engine, the greatest fixpoint is per level: the
        # belief operators only relate points of the same time.
        return [
            common_belief_at(self.encoder, time, operand_sat[time])
            for time in range(self._levels())
        ]

    def _eval_nu(self, formula: Nu, env: Dict[str, NodeSat]) -> NodeSat:
        current = self._full()
        while True:
            inner = dict(env)
            inner[formula.variable] = current
            next_nodes = self._eval(formula.operand, inner)
            if next_nodes == current:
                return current
            current = next_nodes

    # -- temporal operators ---------------------------------------------------

    def _exist_step(self, time: int, target: int) -> int:
        """States at ``time`` with some successor inside the BDD target set."""
        encoder = self.encoder
        bdd = encoder.bdd
        successor_encoding = encoder.encoding(time + 1)
        return bdd.and_exists(
            encoder.transition(time),
            bdd.rename(target, successor_encoding.prime_mapping()),
            successor_encoding.variables(primed=True),
        )

    def _step_at(self, time: int, target: int, universal: bool) -> int:
        """States at ``time`` whose successors (all/some) satisfy ``target``."""
        bdd = self.encoder.bdd
        if universal:
            bad = bdd.apply_diff(self.encoder.reach(time + 1), target)
            return bdd.apply_diff(
                self.encoder.reach(time), self._exist_step(time, bad)
            )
        return self._exist_step(time, target)

    def _eval_next(
        self, operand: Formula, env: Dict[str, NodeSat], universal: bool
    ) -> NodeSat:
        operand_sat = self._eval(operand, env)
        last = self._levels() - 1
        result: NodeSat = [
            self._step_at(time, operand_sat[time + 1], universal)
            for time in range(last)
        ]
        # The final level is absorbing: AX phi and EX phi coincide with phi.
        result.append(operand_sat[last])
        return result

    def _eval_globally(
        self, operand: Formula, env: Dict[str, NodeSat], universal: bool
    ) -> NodeSat:
        operand_sat = self._eval(operand, env)
        bdd = self.encoder.bdd
        last = self._levels() - 1
        result: NodeSat = [bdd.false] * self._levels()
        result[last] = operand_sat[last]
        for time in range(last - 1, -1, -1):
            step = self._step_at(time, result[time + 1], universal)
            result[time] = bdd.apply_and(operand_sat[time], step)
        return result

    def _eval_eventually(
        self, operand: Formula, env: Dict[str, NodeSat], universal: bool
    ) -> NodeSat:
        operand_sat = self._eval(operand, env)
        bdd = self.encoder.bdd
        last = self._levels() - 1
        result: NodeSat = [bdd.false] * self._levels()
        result[last] = operand_sat[last]
        for time in range(last - 1, -1, -1):
            step = self._step_at(time, result[time + 1], universal)
            result[time] = bdd.apply_or(operand_sat[time], step)
        return result


# ---------------------------------------------------------------------------
# Specialised per-level synthesis evaluators (symbolic twins of the private
# helpers in repro.core.synthesis)
# ---------------------------------------------------------------------------


def _local_function_mask(encoder: SpaceEncoder, level: int, agent: int, node: int) -> int:
    """Convert a BDD over one agent's local block to a packed state bitmask.

    The node must be a function of the agent's (unprimed) local-block
    variables only — which is exactly what the knowledge images above
    produce.  Each distinct local state is evaluated once, then the verdict
    is broadcast to every state carrying that local component.
    """
    bdd = encoder.bdd
    encoding = encoder.encoding(level)
    verdicts = [
        bdd.evaluate(
            node,
            encoding._block_literals(
                encoding.local_bases[agent],
                encoding.local_widths[agent],
                local_id,
                False,
            ),
        )
        for local_id in range(len(encoding.local_ids[agent]))
    ]
    bits = 0
    for index, code in enumerate(encoder.codes(level)):
        if verdicts[code[agent + 1]]:
            bits |= 1 << index
    return bits


def _failure_image(
    encoder: SpaceEncoder, level: int, agent: int, witnesses: int
) -> int:
    """The local-block BDD of states with an observation-equivalent witness."""
    bdd = encoder.bdd
    encoding = encoder.encoding(level)
    return bdd.and_exists(
        encoder.observation_relation(level, agent),
        bdd.rename(witnesses, encoding.prime_mapping()),
        encoding.variables(primed=True),
    )


def _knows_failure_image(
    encoder: SpaceEncoder, level: int, agent: int, target: int, relative: bool
) -> int:
    """States (as a local-block BDD) where ``K``/``B^N`` of ``target`` fails.

    The witnessing states are the target's complement within the reachable
    set, restricted to the agent's nonfaulty states for the relative
    (belief) reading; the image under the observation relation is a
    function of the agent's local block.
    """
    bdd = encoder.bdd
    witnesses = bdd.apply_diff(encoder.reach(level), target)
    if relative:
        witnesses = bdd.apply_and(encoder.nonfaulty_bdd(level, agent), witnesses)
    return _failure_image(encoder, level, agent, witnesses)


def knows_at(
    encoder: SpaceEncoder, level: int, agent: int, target: int, relative: bool
) -> int:
    """One level's ``K_agent`` (or ``B^N_agent``) of a BDD target set."""
    bdd = encoder.bdd
    return bdd.apply_diff(
        encoder.reach(level),
        _knows_failure_image(encoder, level, agent, target, relative),
    )


def everyone_believes_at(encoder: SpaceEncoder, level: int, target: int) -> int:
    """``EB_N`` applied to one level's BDD target set.

    A point satisfies ``EB_N`` iff every agent that is nonfaulty at that
    point believes the target — the same accumulation the bitset engine
    runs on masks.  Shared by the checker's operator evaluation and the
    synthesis evaluators, so the belief semantics cannot drift.
    """
    bdd = encoder.bdd
    result = encoder.reach(level)
    for agent in range(encoder.space.model.num_agents):
        believes = knows_at(encoder, level, agent, target, relative=True)
        faulty = bdd.apply_diff(result, encoder.nonfaulty_bdd(level, agent))
        result = bdd.apply_and(result, bdd.apply_or(believes, faulty))
        if result == bdd.false:
            break
    return result


def common_belief_at(encoder: SpaceEncoder, level: int, operand: int) -> int:
    """``CB_N`` of one level's BDD operand set: the greatest fixpoint
    ``nu X . EB_N (operand and X)``, iterated to canonical-handle equality."""
    bdd = encoder.bdd
    current = encoder.reach(level)
    while True:
        next_node = everyone_believes_at(
            encoder, level, bdd.apply_and(operand, current)
        )
        if next_node == current:
            return current
        current = next_node


def sba_level_conditions(
    encoder: SpaceEncoder, level: int
) -> Dict[Tuple[int, int], int]:
    """Satisfaction of ``B^N_i CB_N ∃v`` per (agent, value) at one level.

    The symbolic twin of
    :func:`repro.core.synthesis._level_knowledge_conditions`: the same
    per-level greatest fixpoint, computed on the shared EB/CB helpers,
    returned as the packed bitmasks the synthesis loop consumes.
    """
    space = encoder.space
    model = space.model
    bdd = encoder.bdd
    reach = encoder.reach(level)

    conditions: Dict[Tuple[int, int], int] = {}
    for value in model.values():
        exists_value = bdd.apply_and(
            reach, encoder.atom_bdd(level, ("exists", value))
        )
        common_belief = common_belief_at(encoder, level, exists_value)
        for agent in model.agents():
            failure = _knows_failure_image(
                encoder, level, agent, common_belief, relative=True
            )
            conditions[(agent, value)] = _local_function_mask(
                encoder, level, agent, bdd.apply_not(failure)
            )
    return conditions


def eba_decide_zero_conditions(encoder: SpaceEncoder, level: int) -> Dict[int, int]:
    """Satisfaction of ``init_i = 0 \\/ K_i(some agent has decided 0)`` per agent.

    The symbolic twin of
    :func:`repro.core.synthesis._decide_zero_conditions_at_level`.
    """
    space = encoder.space
    model = space.model
    bdd = encoder.bdd
    reach = encoder.reach(level)
    some_decided_zero = bdd.apply_and(
        reach, encoder.atom_bdd(level, ("some_decided", 0))
    )
    conditions: Dict[int, int] = {}
    for agent in model.agents():
        knows = bdd.apply_not(
            _knows_failure_image(
                encoder, level, agent, some_decided_zero, relative=False
            )
        )
        init_zero = encoder.atom_bdd(level, ("init", agent, 0))
        conditions[agent] = _local_function_mask(
            encoder, level, agent, bdd.apply_or(knows, init_zero)
        )
    return conditions
