"""A pure-Python reduced-ordered binary decision diagram (ROBDD) engine.

Nodes live in a single :class:`BDD` manager and are identified by integer
handles; ``0`` and ``1`` are the terminal constants.  The manager maintains a
*unique table* so that every (variable, low, high) triple exists at most once,
which makes BDDs canonical: two functions are equal iff their handles are
equal, and fixpoint convergence checks are integer comparisons.

Variables are non-negative integers; smaller indices sit closer to the root.
The encoding layer (:mod:`repro.symbolic.encode`) interleaves current-state
and next-state variables (``2 * position`` and ``2 * position + 1``) so that
the :meth:`BDD.rename` used to prime a set before a relational image is
order-preserving.

Operations provided:

* :meth:`BDD.ite` — if-then-else, the universal connective, memoised in a
  compute table; ``apply_and``/``apply_or``/``apply_not``/``apply_xor``/
  ``apply_diff`` are thin wrappers over it.
* :meth:`BDD.restrict` / :meth:`BDD.compose` — cofactor by a literal and
  functional substitution of a variable.
* :meth:`BDD.exists` / :meth:`BDD.forall` — quantification over a cube of
  variables; :meth:`BDD.and_exists` fuses the conjunction with existential
  quantification (the relational-product kernel of the checker).
* :meth:`BDD.rename` — order-preserving variable renaming (prime/unprime).
* :meth:`BDD.cube` — conjunction of literals from an assignment.
* :meth:`BDD.evaluate`, :meth:`BDD.sat_count`, :meth:`BDD.sat_iter` —
  evaluation under a full assignment, model counting and model enumeration
  over an explicit variable list.

There is no garbage collection: the spaces this repository checks allocate at
most a few hundred thousand nodes per manager, and managers are dropped
wholesale with the encoder that owns them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.obs import profile as obs_profile

#: Sentinel variable index for the terminal nodes: larger than any real
#: variable, so ``min`` over node variables never selects a terminal.
_TERMINAL_VAR = 1 << 60

#: Handles of the constant functions.
FALSE = 0
TRUE = 1


class BDD:
    """A manager holding a forest of shared, canonical BDD nodes."""

    def __init__(self) -> None:
        # Parallel arrays indexed by node handle; entries 0 and 1 are the
        # terminals (their low/high fields are never consulted).
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self.false = FALSE
        self.true = TRUE

    # ------------------------------------------------------------- node store

    def __len__(self) -> int:
        """Total number of nodes ever allocated (terminals included)."""
        return len(self._var)

    def var_of(self, node: int) -> int:
        """The branching variable of a node (terminals report a sentinel)."""
        return self._var[node]

    def low_of(self, node: int) -> int:
        """The negative (variable = 0) child of a node."""
        return self._low[node]

    def high_of(self, node: int) -> int:
        """The positive (variable = 1) child of a node."""
        return self._high[node]

    def node(self, variable: int, low: int, high: int) -> int:
        """The canonical node for a triple (reduced: equal children collapse).

        Children must have strictly larger variable indices; this is the
        invariant every public operation maintains, so it is only asserted
        here in the one place where nodes are minted.
        """
        if low == high:
            return low
        key = (variable, low, high)
        handle = self._unique.get(key)
        if handle is None:
            if variable >= min(self._var[low], self._var[high]):
                raise ValueError(
                    f"variable {variable} is not above its children "
                    f"({self._var[low]}, {self._var[high]})"
                )
            handle = len(self._var)
            self._var.append(variable)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = handle
        return handle

    def variable(self, variable: int) -> int:
        """The BDD of the literal ``variable``."""
        return self.node(variable, FALSE, TRUE)

    def nvariable(self, variable: int) -> int:
        """The BDD of the literal ``not variable``."""
        return self.node(variable, TRUE, FALSE)

    def size(self, node: int) -> int:
        """Number of distinct internal (non-terminal) nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            stack.append(self._low[current])
            stack.append(self._high[current])
        return len(seen)

    def _cofactors(self, node: int, variable: int) -> Tuple[int, int]:
        """The (low, high) cofactors of a node with respect to ``variable``."""
        if self._var[node] == variable:
            return self._low[node], self._high[node]
        return node, node

    # ----------------------------------------------------------- connectives

    @obs_profile.kernel("bdd.ite")
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``.

        The profiled entry point (``REPRO_PROFILE=1`` times top-level calls
        only — the recursion goes through :meth:`_ite` directly, so one row
        in the kernel table is one caller-visible operation, not one node).
        """
        return self._ite(f, g, h)

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        result = self.node(top, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def apply_not(self, f: int) -> int:
        """Negation."""
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    def apply_diff(self, f: int, g: int) -> int:
        """Difference ``f and not g``."""
        return self.ite(g, FALSE, f)

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``not f or g``."""
        return self.ite(f, g, TRUE)

    def big_or(self, nodes: Iterable[int]) -> int:
        """Disjunction of many functions (balanced to keep intermediates small)."""
        return self._reduce(list(nodes), self.apply_or, FALSE)

    def big_and(self, nodes: Iterable[int]) -> int:
        """Conjunction of many functions."""
        return self._reduce(list(nodes), self.apply_and, TRUE)

    def _reduce(self, nodes: List[int], op, unit: int) -> int:
        if not nodes:
            return unit
        # Pairwise (tournament) reduction: intermediate results stay balanced,
        # which matters when OR-ing thousands of state minterms into a
        # reachable-set BDD.
        while len(nodes) > 1:
            nodes = [
                op(nodes[i], nodes[i + 1]) if i + 1 < len(nodes) else nodes[i]
                for i in range(0, len(nodes), 2)
            ]
        return nodes[0]

    # -------------------------------------------------- restriction and compose

    def restrict(self, f: int, variable: int, value: bool) -> int:
        """The cofactor of ``f`` with ``variable`` fixed to ``value``."""
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if self._var[node] > variable:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            if self._var[node] == variable:
                result = self._high[node] if value else self._low[node]
            else:
                result = self.node(
                    self._var[node],
                    walk(self._low[node]),
                    walk(self._high[node]),
                )
            memo[node] = result
            return result

        return walk(f)

    def compose(self, f: int, variable: int, g: int) -> int:
        """Substitute the function ``g`` for ``variable`` in ``f``."""
        return self.ite(
            g,
            self.restrict(f, variable, True),
            self.restrict(f, variable, False),
        )

    # --------------------------------------------------------- quantification

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification of ``f`` over a set of variables."""
        return self._quantify(f, frozenset(variables), existential=True)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification of ``f`` over a set of variables."""
        return self._quantify(f, frozenset(variables), existential=False)

    def _quantify(self, f: int, cube: frozenset, existential: bool) -> int:
        if not cube:
            return f
        last = max(cube)
        combine = self.apply_or if existential else self.apply_and
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if self._var[node] > last:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            low = walk(self._low[node])
            high = walk(self._high[node])
            if self._var[node] in cube:
                result = combine(low, high)
            else:
                result = self.node(self._var[node], low, high)
            memo[node] = result
            return result

        return walk(f)

    @obs_profile.kernel("bdd.and_exists")
    def and_exists(self, f: int, g: int, variables: Iterable[int]) -> int:
        """The relational product ``exists variables . (f and g)``, fused.

        Never materialises the full conjunction: quantified variables are
        eliminated on the way back up the recursion, which is the standard
        image-computation kernel.
        """
        cube = frozenset(variables)
        if not cube:
            return self.apply_and(f, g)
        last = max(cube)
        memo: Dict[Tuple[int, int], int] = {}

        def walk(f_node: int, g_node: int) -> int:
            if f_node == FALSE or g_node == FALSE:
                return FALSE
            if self._var[f_node] > last and self._var[g_node] > last:
                return self.apply_and(f_node, g_node)
            key = (f_node, g_node)
            cached = memo.get(key)
            if cached is not None:
                return cached
            top = min(self._var[f_node], self._var[g_node])
            f0, f1 = self._cofactors(f_node, top)
            g0, g1 = self._cofactors(g_node, top)
            low = walk(f0, g0)
            if top in cube and low == TRUE:
                # Short-circuit: or(TRUE, high) is TRUE regardless of high.
                result = TRUE
            else:
                high = walk(f1, g1)
                if top in cube:
                    result = self.apply_or(low, high)
                else:
                    result = self.node(top, low, high)
            memo[key] = result
            return result

        return walk(f, g)

    # ---------------------------------------------------------------- renaming

    def rename(self, f: int, mapping: Mapping[int, int]) -> int:
        """Rename variables by an order-preserving mapping.

        The mapping must be strictly monotone on the variables it touches
        relative to the fixed global order (the interleaved current/next
        layout guarantees this for priming); violating the order raises
        ``ValueError`` from the node constructor.
        """
        if not mapping:
            return f
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            variable = mapping.get(self._var[node], self._var[node])
            result = self.node(
                variable, walk(self._low[node]), walk(self._high[node])
            )
            memo[node] = result
            return result

        return walk(f)

    # --------------------------------------------------------------- cubes etc

    def cube(self, literals: Mapping[int, bool]) -> int:
        """The conjunction of the given literals (variable -> polarity)."""
        result = TRUE
        for variable in sorted(literals, reverse=True):
            if literals[variable]:
                result = self.node(variable, FALSE, result)
            else:
                result = self.node(variable, result, FALSE)
        return result

    def evaluate(self, f: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate ``f`` under an assignment covering its support."""
        node = f
        while node > 1:
            variable = self._var[node]
            try:
                value = assignment[variable]
            except KeyError:
                raise KeyError(
                    f"assignment is missing variable {variable} in the "
                    f"support of the evaluated BDD"
                ) from None
            node = self._high[node] if value else self._low[node]
        return node == TRUE

    def support(self, f: int) -> frozenset:
        """The set of variables ``f`` actually depends on."""
        found = set()
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            found.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return frozenset(found)

    def sat_count(self, f: int, variables: Iterable[int]) -> int:
        """Number of satisfying assignments over an explicit variable list."""
        order = sorted(set(variables))
        position = {variable: index for index, variable in enumerate(order)}
        for variable in self.support(f):
            if variable not in position:
                raise ValueError(
                    f"variable list is missing support variable {variable}"
                )
        total = len(order)
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            # Count over the variables at or below this node's depth, then
            # scale by skipped (don't-care) levels at the call sites.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            depth = position[self._var[node]]
            count = 0
            for child in (self._low[node], self._high[node]):
                child_depth = (
                    total if child <= 1 else position[self._var[child]]
                )
                count += walk(child) << (child_depth - depth - 1)
            memo[node] = count
            return count

        root_depth = total if f <= 1 else position[self._var[f]]
        return walk(f) << root_depth

    def sat_iter(
        self, f: int, variables: Iterable[int]
    ) -> Iterator[Tuple[bool, ...]]:
        """Yield every satisfying assignment as a tuple over ``variables``.

        Variables outside the BDD's support are expanded to both polarities,
        so the tuples enumerate complete assignments (``sat_count`` many).
        """
        order = sorted(set(variables))
        values: List[Optional[bool]] = [None] * len(order)
        index_of = {variable: index for index, variable in enumerate(order)}

        def expand(position: int, limit: int, node: int) -> Iterator[Tuple[bool, ...]]:
            if position == limit:
                yield from descend(node)
                return
            for value in (False, True):
                values[position] = value
                yield from expand(position + 1, limit, node)

        def descend(node: int) -> Iterator[Tuple[bool, ...]]:
            if node == FALSE:
                return
            if node == TRUE:
                yield tuple(values)  # type: ignore[arg-type]
                return
            position = index_of[self._var[node]]
            for value, child in (
                (False, self._low[node]),
                (True, self._high[node]),
            ):
                values[position] = value
                child_position = (
                    len(order) if child <= 1 else index_of[self._var[child]]
                )
                yield from expand(position + 1, child_position, child)

        root_position = len(order) if f <= 1 else index_of[self._var[f]]
        yield from expand(0, root_position, f)
