"""Lightweight scope and alias resolution shared by the lint rules.

Everything here is deliberately intra-module: the rules reason about one
source file at a time, so the call graph, name tables, and type guesses
never chase imports.  That keeps the engine fast (a single parse + a few
walks per file) and keeps false positives explainable — a rule only
claims what it can see in the file it is pointing at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
_OPAQUE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def build_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Map every node to its syntactic parent (identity-keyed)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def dotted(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` chains of Names/Attributes; ``None`` otherwise."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_target(call: ast.Call) -> Optional[str]:
    """The dotted name a call invokes, e.g. ``os.fork`` or ``self.close``."""
    return dotted(call.func)


def ancestors(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def enclosing_context(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> str:
    """Dotted qualname of the defs/classes enclosing ``node`` (may be '')."""
    names: List[str] = []
    for anc in ancestors(node, parents):
        if isinstance(anc, _SCOPE_NODES):
            names.append(anc.name)
    return ".".join(reversed(names))


@dataclass(frozen=True)
class FunctionInfo:
    """A def (module-level, method, or nested) with its resolved context."""

    node: FunctionNode
    qualname: str
    class_name: Optional[str]
    parent_function: Optional[FunctionNode]


def module_functions(
    tree: ast.Module, parents: Dict[ast.AST, ast.AST]
) -> List[FunctionInfo]:
    infos: List[FunctionInfo] = []
    for node in ast.walk(tree):
        if not isinstance(node, FUNCTION_NODES):
            continue
        class_name: Optional[str] = None
        parent_function: Optional[FunctionNode] = None
        for anc in ancestors(node, parents):
            if isinstance(anc, ast.ClassDef) and class_name is None:
                class_name = anc.name
            if isinstance(anc, FUNCTION_NODES) and parent_function is None:
                parent_function = anc
            if class_name is not None and parent_function is not None:
                break
        context = enclosing_context(node, parents)
        qualname = f"{context}.{node.name}" if context else node.name
        infos.append(
            FunctionInfo(
                node=node,
                qualname=qualname,
                class_name=class_name,
                parent_function=parent_function,
            )
        )
    return infos


def immediate_body_walk(func: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs/lambdas.

    Nested functions execute when *called*, not where they are defined, so
    rules that reason about what a function *does* must not attribute a
    nested def's body to its parent.  Nested defs get their own
    :class:`FunctionInfo` and are analysed separately.
    """
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _OPAQUE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


class LocalCallGraph:
    """Intra-module call edges resolved purely by name.

    Edges go from a function to the local callables it invokes directly:
    module-level functions by bare name, same-class methods via
    ``self.<name>``, and nested defs visible in the enclosing function.
    This is an under-approximation (callbacks passed by reference are not
    edges), which is the right bias for lint rules: missing an edge can
    miss a finding but never invents one.
    """

    def __init__(
        self, functions: Sequence[FunctionInfo], parents: Dict[ast.AST, ast.AST]
    ) -> None:
        self._functions = list(functions)
        self._by_node: Dict[ast.AST, FunctionInfo] = {f.node: f for f in functions}
        module_level: Dict[str, FunctionInfo] = {}
        methods: Dict[Tuple[str, str], FunctionInfo] = {}
        nested: Dict[Tuple[ast.AST, str], FunctionInfo] = {}
        for info in functions:
            if info.parent_function is not None:
                nested[(info.parent_function, info.node.name)] = info
            elif info.class_name is not None:
                methods[(info.class_name, info.node.name)] = info
            else:
                module_level[info.node.name] = info
        self._edges: Dict[ast.AST, List[FunctionInfo]] = {}
        for info in functions:
            callees: List[FunctionInfo] = []
            for node in immediate_body_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                target = call_target(node)
                if target is None:
                    continue
                resolved = self._resolve(info, target, nested, methods, module_level)
                if resolved is not None:
                    callees.append(resolved)
            self._edges[info.node] = callees

    def _resolve(
        self,
        caller: FunctionInfo,
        target: str,
        nested: Dict[Tuple[ast.AST, str], FunctionInfo],
        methods: Dict[Tuple[str, str], FunctionInfo],
        module_level: Dict[str, FunctionInfo],
    ) -> Optional[FunctionInfo]:
        if target.startswith("self.") and caller.class_name is not None:
            name = target[len("self.") :]
            if "." not in name:
                return methods.get((caller.class_name, name))
            return None
        if "." in target:
            return None
        # Look for a nested def in the caller, then in each enclosing
        # function, before falling back to module scope.
        scope: Optional[FunctionNode] = caller.node
        while scope is not None:
            hit = nested.get((scope, target))
            if hit is not None:
                return hit
            scope_info = self._by_node.get(scope)
            scope = scope_info.parent_function if scope_info is not None else None
        return module_level.get(target)

    def callees(self, func: FunctionNode) -> List[FunctionInfo]:
        return self._edges.get(func, [])

    def callee_closure(self, seeds: Iterable[FunctionInfo]) -> Set[ast.AST]:
        """Seeds plus everything they transitively call (taint direction)."""
        marked: Set[ast.AST] = set()
        stack = [s.node for s in seeds]
        while stack:
            node = stack.pop()
            if node in marked:
                continue
            marked.add(node)
            stack.extend(c.node for c in self._edges.get(node, []))
        return marked

    def calling_closure(self, seeds: Iterable[FunctionInfo]) -> Set[ast.AST]:
        """Seeds plus everything that transitively calls them."""
        marked: Set[ast.AST] = {s.node for s in seeds}
        changed = True
        while changed:
            changed = False
            for info in self._functions:
                if info.node in marked:
                    continue
                if any(c.node in marked for c in self._edges.get(info.node, [])):
                    marked.add(info.node)
                    changed = True
        return marked


_SET_ANNOTATION_NAMES = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _annotation_is_set(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = dotted(target)
    if name is None:
        return False
    return name.rsplit(".", maxsplit=1)[-1] in _SET_ANNOTATION_NAMES


@dataclass
class SetTypes:
    """Flow-insensitive guess at which local names hold sets.

    A name counts as set-typed if *any* assignment in the function gives it
    a recognisably set-valued expression, or its annotation says so.  The
    inference iterates to a fixpoint so chains like ``a = set(); b = a``
    resolve.
    """

    func: FunctionNode
    names: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        args = self.func.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]:
            if arg.annotation is not None and _annotation_is_set(arg.annotation):
                self.names.add(arg.arg)
        assigns: List[Tuple[str, ast.expr]] = []
        for node in immediate_body_walk(self.func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns.append((target.id, node.value))
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_set(node.annotation):
                    self.names.add(node.target.id)
                elif node.value is not None:
                    assigns.append((node.target.id, node.value))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                assigns.append((node.target.id, node.value))
        for _ in range(4):  # fixpoint; chains longer than 4 hops are unheard of
            grew = False
            for name, value in assigns:
                if name not in self.names and self.is_set(value):
                    self.names.add(name)
                    grew = True
            if not grew:
                break

    def is_set(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.names
        if isinstance(expr, ast.Call):
            target = call_target(expr)
            if target in ("set", "frozenset"):
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _SET_METHODS
                and self.is_set(expr.func.value)
            ):
                return True
            return False
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_BINOPS):
            return self.is_set(expr.left) or self.is_set(expr.right)
        if isinstance(expr, ast.IfExp):
            return self.is_set(expr.body) or self.is_set(expr.orelse)
        return False
