"""LOCK01 — guarded attributes must be touched under their declared lock.

The locking design of the serving layer lives in comments: ``Session``'s
bookkeeping counters, ``KeyedLocks``' registry, and
``MetricsRegistry``'s metric table all say which lock protects them.
This rule makes those comments executable: an ``__init__`` assignment
annotated ``# guarded by: <lock>`` turns every later ``self.<attr>``
access in the class into a proof obligation — it must sit inside a
``with self.<lock>:`` block.

Conventions honoured:

* methods whose name ends in ``_locked`` assert "caller holds the lock"
  and are exempt (the convention ``obs/metrics.py`` already uses);
* a dotted guard (e.g. ``# guarded by: Session._lock``) names a lock the
  class does not own — that declaration is documentation-only, because
  the discipline is enforced at the owner's call sites, not lexically
  here (``WeightedLRU`` is the motivating case);
* ``__init__`` itself is exempt — no other thread can hold a reference
  yet.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set

from repro.devtools.engine import Finding, ModuleUnderLint
from repro.devtools.scopes import FUNCTION_NODES, FunctionNode, dotted

_GUARD_RE = re.compile(r"#\s*guarded by:\s*([A-Za-z_][\w.]*)")


def _self_attr_target(node: ast.AST) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _declarations(
    init: FunctionNode, module: ModuleUnderLint
) -> Dict[str, str]:
    """``self.X = ... # guarded by: L`` assignments in ``__init__``."""
    declared: Dict[str, str] = {}
    for stmt in ast.walk(init):
        targets: Sequence[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        match = _GUARD_RE.search(module.line_text(stmt.lineno))
        if match is None:
            continue
        for target in targets:
            attr = _self_attr_target(target)
            if attr:
                declared[attr] = match.group(1)
    return declared


def _assigned_attrs(init: FunctionNode) -> Set[str]:
    attrs: Set[str] = set()
    for stmt in ast.walk(init):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = _self_attr_target(target)
                if attr:
                    attrs.add(attr)
        elif isinstance(stmt, ast.AnnAssign):
            attr = _self_attr_target(stmt.target)
            if attr:
                attrs.add(attr)
    return attrs


def _locks_entered(item: ast.withitem) -> str:
    """The attr name when a with-item enters ``self.<lock>``."""
    expr = item.context_expr
    name = dotted(expr)
    if name is not None and name.startswith("self."):
        tail = name[len("self.") :]
        if "." not in tail:
            return tail
    return ""


class Lock01:
    code = "LOCK01"
    title = "guarded attribute accessed outside its declared lock"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            init = next(
                (
                    stmt
                    for stmt in class_node.body
                    if isinstance(stmt, FUNCTION_NODES) and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            declared = _declarations(init, module)
            owned = _assigned_attrs(init)
            enforced = {
                attr: lock
                for attr, lock in declared.items()
                if "." not in lock and lock in owned
            }
            if not enforced:
                continue
            for method in class_node.body:
                if not isinstance(method, FUNCTION_NODES):
                    continue
                if method.name == "__init__" or method.name.endswith("_locked"):
                    continue
                yield from self._check_method(
                    module, class_node.name, method, enforced
                )

    def _check_method(
        self,
        module: ModuleUnderLint,
        class_name: str,
        method: FunctionNode,
        enforced: Dict[str, str],
    ) -> Iterator[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST, held: FrozenSet[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                entered = {
                    lock for lock in map(_locks_entered, node.items) if lock
                }
                inner = held | entered
                for child in ast.iter_child_nodes(node):
                    visit(child, inner)
                return
            attr = _self_attr_target(node)
            if attr and attr in enforced and enforced[attr] not in held:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=module.rel_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"'self.{attr}' is declared guarded by "
                            f"'{enforced[attr]}' but is accessed outside a "
                            f"'with self.{enforced[attr]}:' block in "
                            f"{class_name}.{method.name} (rename the method "
                            "with a _locked suffix if the caller holds the "
                            "lock)"
                        ),
                        context=f"{class_name}.{method.name}",
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in method.body:
            visit(stmt, frozenset())
        yield from findings
