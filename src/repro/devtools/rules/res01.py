"""RES01 — every acquired descriptor needs a disposition.

The PR 3 bug class: ``harness/runner.py`` once leaked the parent end of
result pipes on early-exit paths until the scheduler ran out of fds.
This rule does a lightweight escape analysis per function: a name bound
from ``open``/``os.open``/``os.pipe``/``os.fdopen``/``socket.socket``/…
must have *some* disposition somewhere in the function — closed
(``x.close()`` or passed to a call like ``os.close(x)``), managed
(``with``), returned/yielded to a caller, stored on an object, or
aliased onward.  A resource with no disposition at all cannot be closed
on *any* path, which is the unambiguous leak this rule reports.

This is deliberately path-insensitive: "closed on the happy path but
not under exceptions" is real but noisy to prove lexically; "never
closed anywhere" is the PR 3 shape and has no false positives worth
arguing about.  ``with open(...) as f`` never binds through an
``Assign`` node, so managed resources are invisible to the tracker by
construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.devtools.engine import Finding, ModuleUnderLint
from repro.devtools.scopes import (
    FunctionNode,
    call_target,
    immediate_body_walk,
    module_functions,
)

OPEN_CALLS: Dict[str, str] = {
    "open": "open()",
    "os.open": "os.open()",
    "os.fdopen": "os.fdopen()",
    "os.pipe": "os.pipe()",
    "os.dup": "os.dup()",
    "socket.socket": "socket.socket()",
    "socket.create_connection": "socket.create_connection()",
    "socket.socketpair": "socket.socketpair()",
}


def _opened_names(func: FunctionNode) -> List[Tuple[str, int, str]]:
    """``(name, line, what)`` for every resource bound to a local name."""
    opened: List[Tuple[str, int, str]] = []
    for node in immediate_body_walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        target_call = call_target(node.value)
        if target_call not in OPEN_CALLS:
            continue
        what = OPEN_CALLS[target_call]
        if len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name):
            opened.append((target.id, node.lineno, what))
        elif isinstance(target, (ast.Tuple, ast.List)):
            # r, w = os.pipe(): each descriptor has its own lifecycle.
            for element in target.elts:
                if isinstance(element, ast.Name):
                    opened.append((element.id, node.lineno, what))
    return opened


def _disposed_names(func: FunctionNode) -> Set[str]:
    """Names that are closed, handed off, stored, or escape the function."""
    disposed: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in ("close", "shutdown", "detach")
                and isinstance(func_expr.value, ast.Name)
            ):
                disposed.add(func_expr.value.id)
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                for name in ast.walk(arg):
                    if isinstance(name, ast.Name):
                        disposed.add(name.id)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                for name in ast.walk(node.value):
                    if isinstance(name, ast.Name):
                        disposed.add(name.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for name in ast.walk(item.context_expr):
                    if isinstance(name, ast.Name):
                        disposed.add(name.id)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is None:
                continue
            aliases: List[str] = []
            if isinstance(value, ast.Name):
                aliases.append(value.id)
            elif isinstance(value, (ast.Tuple, ast.List)):
                aliases.extend(
                    e.id for e in value.elts if isinstance(e, ast.Name)
                )
            targets: Sequence[ast.expr] = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            stores_away = any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
            )
            if aliases and (stores_away or isinstance(node, ast.Assign)):
                disposed.update(aliases)
    return disposed


class Res01:
    code = "RES01"
    title = "resource acquired but never closed or handed off"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        for info in module_functions(module.tree, module.parents):
            opened = _opened_names(info.node)
            if not opened:
                continue
            disposed = _disposed_names(info.node)
            for name, line, what in opened:
                if name in disposed:
                    continue
                yield Finding(
                    rule=self.code,
                    path=module.rel_path,
                    line=line,
                    col=0,
                    message=(
                        f"{name!r} holds a descriptor from {what} but is "
                        "never closed, returned, stored, or passed on — "
                        "close it in a finally block or use a with "
                        "statement (the PR 3 runner fd-leak class)"
                    ),
                    context=info.qualname,
                )
