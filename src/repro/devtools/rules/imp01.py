"""IMP01 — no function-local imports in thread-shared modules.

The PR 7 bug class: a function-local ``import`` executed for the first
time on a serving thread can observe another thread's partially
initialised module (CPython publishes the module object in
``sys.modules`` *before* its body finishes), raising spurious
``AttributeError``/``ImportError`` under load.  The fix is structural:
modules that serving or worker threads import must take every import at
module import time, while the process is still single-threaded.

Scope: the rule applies to the serving-side packages (``api``, ``obs``,
``runtime``, ``core``, ``symbolic``, ``logic``, ``spec``, ``kbp``,
``systems``, ``protocols``, ``exchanges``, ``failures``, ``engines``,
``factory``).  Driver-side code that runs strictly on the main thread —
the CLI, the grid harness (which parallelises with forked *processes*,
not threads), and offline analysis — may keep cycle-breaking lazy
imports and is excluded.  Cycle-forced exceptions inside the serving
scope must carry a ``# lint: disable=IMP01`` pragma with a justification
comment, which keeps each one a reviewed decision rather than a habit.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.devtools.engine import Finding, ModuleUnderLint
from repro.devtools.scopes import FUNCTION_NODES, ancestors

# Path fragments (relative to the package root) outside the rule's scope.
EXCLUDED_SEGMENTS: Tuple[str, ...] = (
    "harness/",
    "analysis/",
    "devtools/",
    "cli.py",
    "__main__.py",
)


def _in_scope(rel_path: str) -> bool:
    normalised = rel_path.replace("\\", "/")
    marker = "repro/"
    index = normalised.rfind(marker)
    tail = normalised[index + len(marker) :] if index >= 0 else normalised
    return not any(tail.startswith(seg) for seg in EXCLUDED_SEGMENTS)


class Imp01:
    code = "IMP01"
    title = "function-local import in a thread-shared module"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        if not _in_scope(module.rel_path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            enclosing = next(
                (
                    anc
                    for anc in ancestors(node, module.parents)
                    if isinstance(anc, FUNCTION_NODES)
                ),
                None,
            )
            if enclosing is None:
                continue  # module-level (incl. TYPE_CHECKING blocks) is fine
            if isinstance(node, ast.Import):
                what = ", ".join(alias.name for alias in node.names)
            else:
                what = node.module or "."
            yield Finding(
                rule=self.code,
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"function-local import of {what!r} inside "
                    f"{enclosing.name!r}: first execution on a serving "
                    "thread can observe a partially initialised module "
                    "(the PR 7 race) — hoist it to module level, or "
                    "pragma it with a justification if an import cycle "
                    "forces laziness"
                ),
                context=module.context_of(node),
            )
