"""Rule registry for ``repro lint``, mirroring :mod:`repro.engines`.

Engines are selected by name, validated, then instantiated via
``checker_for``; rules follow the same contract: :data:`RULE_CODES` is
the canonical tuple, :func:`validate_rule` normalises a user-supplied
code, and :func:`rule_for` builds the checker instance.  Adding a rule
is one module in this package plus one entry in :data:`_RULE_TYPES`.

Every rule exposes ``code``, ``title`` and
``check(module: ModuleUnderLint) -> Iterator[Finding]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Type

from repro.devtools.rules.det01 import Det01
from repro.devtools.rules.fork01 import Fork01
from repro.devtools.rules.imp01 import Imp01
from repro.devtools.rules.lock01 import Lock01
from repro.devtools.rules.res01 import Res01

_RULE_TYPES: Dict[str, Type[object]] = {
    Det01.code: Det01,
    Fork01.code: Fork01,
    Imp01.code: Imp01,
    Lock01.code: Lock01,
    Res01.code: Res01,
}

RULE_CODES: Tuple[str, ...] = tuple(sorted(_RULE_TYPES))


def validate_rule(code: str) -> str:
    """Normalise a rule code, raising ``ValueError`` for unknown ones."""
    normalised = code.strip().upper()
    if normalised not in _RULE_TYPES:
        options = ", ".join(RULE_CODES)
        raise ValueError(f"unknown lint rule {code!r} (choose from: {options})")
    return normalised


def rule_for(code: str) -> object:
    """Instantiate the checker registered under ``code``."""
    return _RULE_TYPES[validate_rule(code)]()


def rules_for(codes: Optional[Iterable[str]] = None) -> List[object]:
    """Instantiate the requested rules, or the full suite when ``None``."""
    selected = RULE_CODES if codes is None else tuple(codes)
    return [rule_for(code) for code in selected]


def all_rules() -> List[object]:
    return rules_for(None)


__all__ = [
    "Det01",
    "Fork01",
    "Imp01",
    "Lock01",
    "Res01",
    "RULE_CODES",
    "all_rules",
    "rule_for",
    "rules_for",
    "validate_rule",
]
