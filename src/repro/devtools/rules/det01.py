"""DET01 — hash-seed-dependent iteration on rendering/key paths.

The PR 5 bug class: ``describe()`` once iterated Quine–McCluskey prime
sets in hash order, so table text changed with ``PYTHONHASHSEED``.  Any
function that (transitively, within its module) feeds rendered output,
``canonical_json``, or a cache/store key must not iterate a ``set`` /
``frozenset`` without an explicit order.

Mechanics: seed a taint set from *sink* functions — recognised by name
(``describe``, ``canonical_json``, ``cell_key``, ``render*`` …) or by
calling ``json.dumps`` — close it over the intra-module call graph, and
flag set-typed iteration sites inside tainted functions unless the
iteration lands in an order-insensitive consumer (``sorted``, ``min``,
``sum``, another set, …).

``dict`` iteration is deliberately *not* flagged: dicts preserve
insertion order on every Python this repo supports, so dict order is
deterministic unless the keys came out of a set — which this rule
catches at the set.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.devtools.engine import Finding, ModuleUnderLint
from repro.devtools.scopes import (
    FunctionInfo,
    FunctionNode,
    LocalCallGraph,
    SetTypes,
    call_target,
    immediate_body_walk,
    module_functions,
)

# Functions whose very name marks them as producing rendered output or
# canonical keys.  This is the project's sink registry — extend it when a
# new output surface appears.
SINK_NAMES = frozenset(
    {
        "describe",
        "canonical_json",
        "canonical_key",
        "cell_key",
        "to_json",
        "to_text",
        "exposition",
        "snapshot",
        "__str__",
        "__repr__",
        "truth_table_minimise",
        "minimise",
        "minimised_cover",
    }
)
SINK_PREFIXES = ("render", "format_")
SINK_CALLEES = frozenset({"json.dumps", "json.dump"})

# Consumers for which iteration order cannot be observed downstream.
_ORDER_INSENSITIVE = frozenset(
    {
        "sorted",
        "min",
        "max",
        "sum",
        "any",
        "all",
        "len",
        "set",
        "frozenset",
        "Counter",
        "collections.Counter",
    }
)
# Calls that materialise iteration order into their result.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "reversed"})


def _is_sink(info: FunctionInfo) -> bool:
    name = info.node.name
    if name in SINK_NAMES or name.startswith(SINK_PREFIXES):
        return True
    for node in immediate_body_walk(info.node):
        if isinstance(node, ast.Call):
            target = call_target(node)
            if target is None:
                continue
            if target in SINK_CALLEES:
                return True
            bare = target.rsplit(".", maxsplit=1)[-1]
            if bare in SINK_NAMES or bare.startswith(SINK_PREFIXES):
                return True
    return False


def _iteration_sites(
    func_node: FunctionNode,
) -> Iterator[Tuple[ast.expr, ast.AST, str]]:
    """Yield ``(iterated expr, anchor node, description)`` triples."""
    for node in immediate_body_walk(func_node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node, "a for loop"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                yield gen.iter, node, "a comprehension"
        elif isinstance(node, ast.Call):
            target = call_target(node)
            if target in _ORDER_SENSITIVE_CALLS and node.args:
                yield node.args[0], node, f"{target}(...)"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
            ):
                yield node.args[0], node, "str.join"
        # SetComp targets a set again: order is laundered, not observed.


def _consumed_order_insensitively(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> bool:
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        target = call_target(parent)
        if target in _ORDER_INSENSITIVE:
            return True
    return False


class Det01:
    code = "DET01"
    title = "set iteration on a rendering/key path without sorted()"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        functions = module_functions(module.tree, module.parents)
        graph = LocalCallGraph(functions, module.parents)
        tainted = graph.callee_closure(f for f in functions if _is_sink(f))
        for info in functions:
            if info.node not in tainted:
                continue
            types = SetTypes(info.node)
            seen: Set[Tuple[int, int]] = set()
            for iter_expr, anchor, how in _iteration_sites(info.node):
                if not types.is_set(iter_expr):
                    continue
                if _consumed_order_insensitively(anchor, module.parents):
                    continue
                key = (anchor.lineno, anchor.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    rule=self.code,
                    path=module.rel_path,
                    line=anchor.lineno,
                    col=anchor.col_offset,
                    message=(
                        f"iterating a set in {how} inside {info.qualname!r}, "
                        "which feeds rendered output or a canonical key; "
                        "set order depends on PYTHONHASHSEED — wrap the "
                        "iterable in sorted(...)"
                    ),
                    context=info.qualname,
                )
