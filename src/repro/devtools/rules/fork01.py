"""FORK01 — fork/thread ordering and async-signal-safe handlers.

Two sub-checks, both born from the serving front in ``api/service.py``:

1. **Thread-before-fork.**  A child produced by ``os.fork()`` inherits
   only the forking thread; any other live thread's locks are frozen in
   whatever state they were in, which is how fork+threads deadlocks
   happen.  Within a function we therefore require that every thread
   started (directly, or by calling a local helper that leaves a thread
   running) is ``join()``-ed before any statement that can reach
   ``os.fork()``.  The pre-fork gate in ``_serve_prefork`` — start the
   answering thread, ``join()`` it, only then fork workers — is the
   blessed shape.

2. **Signal-handler allowlist.**  CPython handlers run between
   bytecodes on the main thread, so anything that takes a lock, logs, or
   allocates heavily can deadlock or corrupt state mid-operation.
   Handlers registered via ``signal.signal(sig, handler)`` may only call
   an async-safe allowlist (``os.kill``, ``os.write``, ``signal.alarm``,
   ``sys.exit`` …) — raising an exception is always allowed, since that
   is the documented CPython-safe way to abort the interrupted frame
   (``runtime/guard.py``'s SIGALRM handler).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.engine import Finding, ModuleUnderLint
from repro.devtools.scopes import (
    FunctionInfo,
    FunctionNode,
    LocalCallGraph,
    ancestors,
    call_target,
    immediate_body_walk,
    module_functions,
)

_THREAD_FACTORIES = frozenset({"threading.Thread", "threading.Timer", "Thread"})
_FORK_CALLS = frozenset({"os.fork"})

# Calls considered async-signal-safe inside a handler.  Deliberately
# small: extend it only with calls that neither allocate heavily nor
# take interpreter-visible locks.
SIGNAL_SAFE_CALLS = frozenset(
    {
        "os.kill",
        "os._exit",
        "os.write",
        "os.close",
        "signal.alarm",
        "signal.signal",
        "signal.setitimer",
        "signal.getsignal",
        "signal.raise_signal",
        "sys.exit",
        "len",
        "list",
        "int",
        "id",
    }
)


def _is_thread_factory(call: ast.Call) -> bool:
    return call_target(call) in _THREAD_FACTORIES


def _direct_fork_lines(func: FunctionNode) -> List[int]:
    return [
        node.lineno
        for node in immediate_body_walk(func)
        if isinstance(node, ast.Call) and call_target(node) in _FORK_CALLS
    ]


def _thread_events(func: FunctionNode) -> Tuple[List[Tuple[int, Optional[str]]], Dict[str, List[int]]]:
    """Direct thread starts in a function body.

    Returns ``(starts, joins)`` where a start is ``(line, var)`` —
    ``var`` is the name the thread lives in, or ``None`` for anonymous
    ``threading.Thread(...).start()`` chains — and ``joins`` maps var
    name to the lines where ``var.join()`` is called.
    """
    thread_vars: Set[str] = set()
    starts: List[Tuple[int, Optional[str]]] = []
    joins: Dict[str, List[int]] = {}
    # First pass: names bound to thread objects (walk order is not source
    # order, so the name table must be complete before scanning calls).
    for node in immediate_body_walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_thread_factory(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        thread_vars.add(target.id)
    for node in immediate_body_walk(func):
        if not isinstance(node, ast.Call):
            continue
        func_expr = node.func
        if not isinstance(func_expr, ast.Attribute):
            continue
        owner = func_expr.value
        if func_expr.attr == "start":
            if isinstance(owner, ast.Call) and _is_thread_factory(owner):
                starts.append((node.lineno, None))
            elif isinstance(owner, ast.Name) and owner.id in thread_vars:
                starts.append((node.lineno, owner.id))
        elif func_expr.attr == "join" and isinstance(owner, ast.Name):
            joins.setdefault(owner.id, []).append(node.lineno)
    return starts, joins


def _leaves_thread_running(func: FunctionNode) -> bool:
    """True when the function starts a thread it does not itself join."""
    starts, joins = _thread_events(func)
    for line, var in starts:
        if var is None:
            return True
        if not any(join_line > line for join_line in joins.get(var, [])):
            return True
    return False


class Fork01:
    code = "FORK01"
    title = "thread started before fork, or unsafe signal handler"

    def check(self, module: ModuleUnderLint) -> Iterator[Finding]:
        functions = module_functions(module.tree, module.parents)
        graph = LocalCallGraph(functions, module.parents)
        yield from self._check_thread_before_fork(module, functions, graph)
        yield from self._check_signal_handlers(module, functions)

    # -- sub-check 1: thread starts ordered before a reachable fork ------

    def _check_thread_before_fork(
        self,
        module: ModuleUnderLint,
        functions: List[FunctionInfo],
        graph: LocalCallGraph,
    ) -> Iterator[Finding]:
        fork_reaching = graph.calling_closure(
            f for f in functions if _direct_fork_lines(f.node)
        )
        thread_leaving = {
            f.node for f in functions if _leaves_thread_running(f.node)
        }
        by_node = {f.node: f for f in functions}
        for info in functions:
            starts, joins = _thread_events(info.node)
            # Calls to local helpers that leave a thread running count as
            # start events here; when assigned, the variable is joinable.
            assigned_calls: Dict[ast.AST, Optional[str]] = {}
            for node in immediate_body_walk(info.node):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    var: Optional[str] = None
                    if len(node.targets) == 1 and isinstance(
                        node.targets[0], ast.Name
                    ):
                        var = node.targets[0].id
                    assigned_calls[node.value] = var
            for node in immediate_body_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._local_callee(info, node, graph, by_node)
                if callee is not None and callee.node in thread_leaving:
                    starts.append((node.lineno, assigned_calls.get(node)))
            fork_lines = list(_direct_fork_lines(info.node))
            for node in immediate_body_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._local_callee(info, node, graph, by_node)
                if callee is not None and callee.node in fork_reaching:
                    fork_lines.append(node.lineno)
            fork_lines.sort()
            for start_line, var in starts:
                fork_line = next(
                    (line for line in fork_lines if line > start_line), None
                )
                if fork_line is None:
                    continue
                joined = var is not None and any(
                    start_line < join_line <= fork_line
                    for join_line in joins.get(var, [])
                )
                if joined:
                    continue
                yield Finding(
                    rule=self.code,
                    path=module.rel_path,
                    line=start_line,
                    col=0,
                    message=(
                        f"a thread started here is still running when "
                        f"os.fork() is reached at line {fork_line}; the "
                        "child inherits its locks mid-state — join() the "
                        "thread before forking"
                    ),
                    context=info.qualname,
                )

    @staticmethod
    def _local_callee(
        caller: FunctionInfo,
        call: ast.Call,
        graph: LocalCallGraph,
        by_node: Dict[ast.AST, FunctionInfo],
    ) -> Optional[FunctionInfo]:
        target = call_target(call)
        if target is None:
            return None
        for callee in graph.callees(caller.node):
            if callee.node.name == target.rsplit(".", maxsplit=1)[-1]:
                return callee
        return None

    # -- sub-check 2: async-signal-safe handlers -------------------------

    def _check_signal_handlers(
        self, module: ModuleUnderLint, functions: List[FunctionInfo]
    ) -> Iterator[Finding]:
        defs_by_name: Dict[str, List[FunctionNode]] = {}
        for info in functions:
            defs_by_name.setdefault(info.node.name, []).append(info.node)
        checked: Set[ast.AST] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_target(node) != "signal.signal" or len(node.args) != 2:
                continue
            handler_expr = node.args[1]
            handlers: List[FunctionNode] = []
            if isinstance(handler_expr, ast.Name):
                handlers = defs_by_name.get(handler_expr.id, [])
            if not handlers:
                continue  # signal.SIG_DFL / SIG_IGN / lambdas / imports
            for handler in handlers:
                if handler in checked:
                    continue  # registered for several signals: report once
                checked.add(handler)
                yield from self._check_handler_body(module, handler)

    def _check_handler_body(
        self, module: ModuleUnderLint, handler: FunctionNode
    ) -> Iterator[Finding]:
        for node in immediate_body_walk(handler):
            if not isinstance(node, ast.Call):
                continue
            if any(
                isinstance(anc, ast.Raise)
                for anc in ancestors(node, module.parents)
            ):
                continue  # raising out of a handler is the sanctioned path
            target = call_target(node)
            if target is not None and target in SIGNAL_SAFE_CALLS:
                continue
            label = target or "<dynamic call>"
            yield Finding(
                rule=self.code,
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"signal handler {handler.name!r} calls {label}, which "
                    "is not on the async-signal-safe allowlist; handlers "
                    "run between bytecodes and must not take locks, log, "
                    "or allocate heavily"
                ),
                context=module.context_of(node),
            )
