"""Project-native static analysis for the repro codebase.

The devtools package hosts ``repro lint``: an AST-based engine plus a
pluggable registry of rules that mechanise the invariants this repo has
historically broken by hand — hash-seed-dependent rendering (DET01),
lock discipline (LOCK01), fork/thread/signal ordering (FORK01), file
descriptor lifecycles (RES01), and lazy-import races (IMP01).

The registry mirrors :mod:`repro.engines`: rule codes are strings,
``validate_rule`` normalises them, and ``rule_for`` instantiates the
checker.  ``LintEngine`` walks a source tree, applies the selected
rules, filters per-line ``# lint: disable=RULE`` pragmas and baseline
entries, and renders text or schema-versioned JSON reports.
"""

from repro.devtools.engine import (
    SCHEMA_VERSION,
    Baseline,
    BaselineEntry,
    Finding,
    LintEngine,
    LintError,
    LintReport,
    ModuleUnderLint,
    check_source,
    render_json,
    render_text,
    report_from_json,
)
from repro.devtools.rules import RULE_CODES, all_rules, rule_for, rules_for, validate_rule

__all__ = [
    "SCHEMA_VERSION",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintEngine",
    "LintError",
    "LintReport",
    "ModuleUnderLint",
    "RULE_CODES",
    "all_rules",
    "check_source",
    "render_json",
    "render_text",
    "report_from_json",
    "rule_for",
    "rules_for",
    "validate_rule",
]
