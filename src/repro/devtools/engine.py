"""The lint engine: file walking, suppression, and report rendering.

Suppression happens in two layers, mirroring how the repo's own
invariants are managed:

* a per-line pragma ``# lint: disable=RULE[,RULE]`` silences a finding at
  the line that carries it — used for deliberate, commented violations
  (e.g. the SIGTERM handler's shutdown thread in ``api/service.py``);
* a committed baseline file grandfathers findings by
  ``(rule, path, context)`` identity so line drift does not churn it —
  each entry must carry a justification, and the self-check test keeps
  the shipped tree at "baseline empty or justified".

JSON output is schema-versioned exactly like :mod:`repro.api.results`:
``schema_version`` is embedded in every report and
:func:`report_from_json` refuses payloads from a different schema with
:class:`repro.api.results.SchemaVersionError`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api.results import SchemaVersionError
from repro.devtools.scopes import build_parents, enclosing_context

SCHEMA_VERSION = 1
_TOOL_NAME = "repro-lint"
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    ``context`` is the dotted qualname of the enclosing class/function;
    together with ``rule`` and ``path`` it forms the stable identity used
    for baseline matching (line numbers drift, qualnames rarely do).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    context: str = ""

    @property
    def identity(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.context)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }


@dataclass(frozen=True)
class LintError:
    """A file the engine could not parse or a rule crash, kept non-fatal."""

    path: str
    message: str

    def to_json(self) -> Dict[str, object]:
        return {"path": self.path, "message": self.message}


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    context: str
    justification: str

    @property
    def identity(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.context)


class Baseline:
    """Grandfathered findings loaded from a committed JSON file."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._index: Set[Tuple[str, str, str]] = {e.identity for e in entries}

    def matches(self, finding: Finding) -> bool:
        return finding.identity in self._index

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"baseline {path} must be a JSON object")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"baseline {path} has schema_version={version!r}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        entries: List[BaselineEntry] = []
        raw_entries = payload.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ValueError(f"baseline {path}: 'entries' must be a list")
        for raw in raw_entries:
            if not isinstance(raw, dict):
                raise ValueError(f"baseline {path}: entries must be objects")
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"baseline {path}: every entry needs a non-empty "
                    f"justification (offending entry: {raw!r})"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    context=str(raw.get("context", "")),
                    justification=justification,
                )
            )
        return cls(entries)


@dataclass
class LintReport:
    findings: List[Finding] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_scanned: int = 0
    rules: Tuple[str, ...] = ()
    suppressed_pragma: int = 0
    suppressed_baseline: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "tool": _TOOL_NAME,
            "rules": list(self.rules),
            "files_scanned": self.files_scanned,
            "findings": [f.to_json() for f in self.findings],
            "errors": [e.to_json() for e in self.errors],
            "suppressed": {
                "pragma": self.suppressed_pragma,
                "baseline": self.suppressed_baseline,
            },
        }


def report_from_json(payload: Dict[str, object]) -> LintReport:
    """Rehydrate a report, dispatching on ``schema_version``.

    Mirrors ``repro.api.results.result_from_json``: unknown versions are a
    hard error so CI artefacts are never silently misread.
    """
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"lint report has schema_version={version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    findings_raw = payload.get("findings", [])
    errors_raw = payload.get("errors", [])
    suppressed = payload.get("suppressed", {})
    if not isinstance(findings_raw, list) or not isinstance(errors_raw, list):
        raise ValueError("lint report: 'findings' and 'errors' must be lists")
    if not isinstance(suppressed, dict):
        raise ValueError("lint report: 'suppressed' must be an object")
    rules_raw = payload.get("rules", [])
    rules = tuple(str(r) for r in rules_raw) if isinstance(rules_raw, list) else ()
    return LintReport(
        findings=[
            Finding(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                line=int(str(raw["line"])),
                col=int(str(raw["col"])),
                message=str(raw["message"]),
                context=str(raw.get("context", "")),
            )
            for raw in findings_raw
        ],
        errors=[
            LintError(path=str(raw["path"]), message=str(raw["message"]))
            for raw in errors_raw
        ],
        files_scanned=int(str(payload.get("files_scanned", 0))),
        rules=rules,
        suppressed_pragma=int(str(suppressed.get("pragma", 0))),
        suppressed_baseline=int(str(suppressed.get("baseline", 0))),
    )


@dataclass
class ModuleUnderLint:
    """One parsed source file plus the precomputed maps rules share."""

    path: Path
    rel_path: str
    source: str
    lines: List[str]
    tree: ast.Module
    parents: Dict[ast.AST, ast.AST]

    @classmethod
    def load(cls, path: Path, rel_path: str) -> "ModuleUnderLint":
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, path=path, rel_path=rel_path)

    @classmethod
    def from_source(
        cls, source: str, path: Path = Path("<memory>"), rel_path: str = "<memory>"
    ) -> "ModuleUnderLint":
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            rel_path=rel_path,
            source=source,
            lines=source.splitlines(),
            tree=tree,
            parents=build_parents(tree),
        )

    def context_of(self, node: ast.AST) -> str:
        return enclosing_context(node, self.parents)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _pragma_codes(line: str) -> Set[str]:
    match = _PRAGMA_RE.search(line)
    if match is None:
        return set()
    return {code.strip() for code in match.group(1).split(",") if code.strip()}


class LintEngine:
    """Runs a rule suite over a set of files and applies suppression."""

    def __init__(
        self,
        rules: Sequence[object],
        baseline: Optional[Baseline] = None,
    ) -> None:
        self.rules = list(rules)
        self.baseline = baseline if baseline is not None else Baseline()

    @staticmethod
    def discover(paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        return files

    def run(
        self, paths: Sequence[Path], rel_to: Optional[Path] = None
    ) -> LintReport:
        report = LintReport(
            rules=tuple(sorted(str(getattr(r, "code", r)) for r in self.rules))
        )
        for file_path in self.discover(paths):
            rel_path = _relativise(file_path, rel_to)
            try:
                module = ModuleUnderLint.load(file_path, rel_path)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                report.errors.append(LintError(path=rel_path, message=str(exc)))
                continue
            report.files_scanned += 1
            self._check_module(module, report)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

    def check_module(self, module: ModuleUnderLint) -> LintReport:
        report = LintReport(
            rules=tuple(sorted(str(getattr(r, "code", r)) for r in self.rules)),
            files_scanned=1,
        )
        self._check_module(module, report)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

    def _check_module(self, module: ModuleUnderLint, report: LintReport) -> None:
        for rule in self.rules:
            code = str(getattr(rule, "code", rule))
            try:
                findings = list(rule.check(module))  # type: ignore[attr-defined]
            except Exception as exc:  # rule crash stays non-fatal
                report.errors.append(
                    LintError(
                        path=module.rel_path,
                        message=f"rule {code} crashed: {exc!r}",
                    )
                )
                continue
            for finding in findings:
                if finding.rule in _pragma_codes(module.line_text(finding.line)):
                    report.suppressed_pragma += 1
                elif self.baseline.matches(finding):
                    report.suppressed_baseline += 1
                else:
                    report.findings.append(finding)


def _relativise(path: Path, rel_to: Optional[Path]) -> str:
    resolved = path.resolve()
    if rel_to is not None:
        try:
            return resolved.relative_to(rel_to.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def check_source(
    source: str,
    rules: Sequence[object],
    rel_path: str = "repro/fixture.py",
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint an in-memory snippet — the unit-test entry point."""
    engine = LintEngine(rules, baseline=baseline)
    module = ModuleUnderLint.from_source(source, rel_path=rel_path)
    return engine.check_module(module)


def render_text(report: LintReport) -> str:
    out: List[str] = []
    for finding in report.findings:
        out.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
    for error in report.errors:
        out.append(f"{error.path}: error: {error.message}")
    suppressed = report.suppressed_pragma + report.suppressed_baseline
    out.append(
        f"{len(report.findings)} finding(s), {len(report.errors)} error(s), "
        f"{suppressed} suppressed across {report.files_scanned} file(s)"
    )
    return "\n".join(out)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
