"""Persistent result store for experiment grids.

The paper's evaluation is a grid of hundreds of budgeted cells; losing a
multi-hour sweep to a crash or a ^C is unacceptable, so every completed
:class:`~repro.harness.runner.CaseOutcome` is journalled as soon as it is
harvested.  The journal is a JSON-lines file:

* one ``{"kind": "spec", ...}`` record per :func:`run_table` invocation,
  describing the table structure (title, row header, rows and the *resolved*
  per-cell task parameters, budgets included) — enough to re-render the
  table without re-running anything;
* one ``{"kind": "outcome", ...}`` record per completed cell, keyed by the
  canonical JSON encoding of ``(task, params)``.

Appending one line per event means an interrupted sweep loses at most the
cells that were in flight; on ``--resume`` the store is reloaded and every
cell whose key is already present is skipped.  When the same key appears
more than once (a cell re-run without ``--resume``), the last record wins,
as does the last spec record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.api import Scenario
from repro.harness.runner import CaseOutcome

#: A resolved cell: (row key, column label, task name, task parameters).
ResolvedCell = Tuple[Tuple, str, str, Dict[str, object]]


def canonical_key(task: str, params: Dict[str, object]) -> str:
    """The store key for a cell: the :class:`~repro.api.Scenario` canonical form.

    Parameters that map onto a scenario are normalised through
    ``Scenario.from_task_params`` → :meth:`Scenario.cell_key`, so two
    parameter dictionaries that mean the same configuration — whatever
    defaults they spell out and in whatever order — always produce the same
    key.  This is also the migration path for pre-redesign journals: their
    keys are recomputed through the same normalisation on load, so a journal
    whose cells spelled ``num_values=2`` or ``failures="crash"`` explicitly
    resumes against a sweep that omits them.  Unknown tasks (tests, forks)
    fall back to plain canonical JSON of the raw parameters.
    """
    try:
        return Scenario.from_task_params(task, params).cell_key(task)
    except (TypeError, ValueError):
        return json.dumps([task, params], sort_keys=True, separators=(",", ":"))


def outcome_to_record(outcome: CaseOutcome) -> Dict[str, object]:
    """Serialise an outcome to its JSON journal record."""
    return {
        "kind": "outcome",
        "key": canonical_key(outcome.task, outcome.params),
        "task": outcome.task,
        "params": outcome.params,
        "seconds": outcome.seconds,
        "timed_out": outcome.timed_out,
        "error": outcome.error,
        "result": outcome.result,
        "build_seconds": outcome.build_seconds,
        "check_seconds": outcome.check_seconds,
        "metrics": outcome.metrics,
        "profile": outcome.profile,
    }


def outcome_from_record(record: Dict[str, object]) -> CaseOutcome:
    """Rebuild an outcome from its JSON journal record.

    The timing-split and observability keys are read with ``.get`` so
    journals written before those fields existed load unchanged (they read
    back as None).
    """
    return CaseOutcome(
        task=record["task"],
        params=record["params"],
        seconds=record["seconds"],
        timed_out=record["timed_out"],
        error=record.get("error"),
        result=record.get("result"),
        build_seconds=record.get("build_seconds"),
        check_seconds=record.get("check_seconds"),
        metrics=record.get("metrics"),
        profile=record.get("profile"),
    )


class ResultStore:
    """A JSON-lines journal of completed cells, reloadable for resume/report."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.outcomes: Dict[str, CaseOutcome] = {}
        #: Wall-clock budget each outcome was recorded under (None = unknown
        #: or unbounded); lets resume re-run TO cells when the budget grew.
        self.budgets: Dict[str, Optional[float]] = {}
        self._spec_record: Optional[Dict[str, object]] = None
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        for position, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                # A torn final line is what a kill mid-append leaves behind;
                # dropping it loses exactly that one in-flight record.  A
                # torn line *followed by* intact records is real corruption.
                if all(not rest.strip() for rest in lines[position + 1:]):
                    break
                raise ValueError(
                    f"corrupt results journal {self.path}: {line[:80]!r}"
                ) from exc
            kind = record.get("kind")
            if kind == "outcome":
                # Keys are recomputed (not trusted from the record) so journals
                # written before the Scenario normalisation migrate on read:
                # their cells re-key to the same canonical form new lookups use.
                key = canonical_key(record["task"], record["params"])
                self.outcomes[key] = outcome_from_record(record)
                self.budgets[key] = record.get("timeout")
            elif kind == "spec":
                self._spec_record = record

    def __contains__(self, key: str) -> bool:
        return key in self.outcomes

    def __len__(self) -> int:
        return len(self.outcomes)

    def _key_candidates(self, task: str, params: Dict[str, object]) -> List[str]:
        """The store keys a cell may be filed under, most specific first.

        Journals written before engine selection existed carry no ``engine``
        in their cell parameters; every outcome in them ran on the explicit
        bitset engine (the only backend at the time).  A *bitset* lookup
        therefore falls back to the engine-less key, so old sweeps stay
        resumable; lookups for any other engine never fall back — reusing a
        pre-engine cell under a different backend would silently mix them.

        For scenario tasks the :func:`canonical_key` normalisation already
        re-keys engine-less parameters to the bitset form (both candidates
        coincide); the explicit fallback still matters for ad-hoc tasks that
        key under raw parameter JSON.
        """
        keys = [canonical_key(task, params)]
        if params.get("engine") == "bitset":
            legacy = {name: value for name, value in params.items() if name != "engine"}
            keys.append(canonical_key(task, legacy))
        return keys

    def get(self, task: str, params: Dict[str, object]) -> Optional[CaseOutcome]:
        """The stored outcome for a cell, or None if it has not completed."""
        for key in self._key_candidates(task, params):
            outcome = self.outcomes.get(key)
            if outcome is not None:
                return outcome
        return None

    def budget_for(self, task: str, params: Dict[str, object]) -> Optional[float]:
        """The wall-clock budget a stored outcome ran under, if recorded."""
        for key in self._key_candidates(task, params):
            if key in self.budgets:
                return self.budgets[key]
        return None

    def _append(self, record: Dict[str, object]) -> None:
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def record(
        self, outcome: CaseOutcome, timeout: Optional[float] = None
    ) -> None:
        """Journal one completed cell (append-only, immediately flushed).

        ``timeout`` is the wall-clock budget the cell ran under; recording it
        lets a later resume distinguish a conclusive ``TO`` from one taken
        under a smaller budget than the re-run asks for.
        """
        record = outcome_to_record(outcome)
        record["timeout"] = timeout
        self._append(record)
        self.outcomes[record["key"]] = outcome
        self.budgets[record["key"]] = timeout

    def record_spec(
        self,
        name: str,
        title: str,
        row_header: Iterable[str],
        cells: Iterable[ResolvedCell],
        engine: str = "bitset",
    ) -> None:
        """Journal the table structure so the store is self-describing.

        ``cells`` carries the *resolved* parameters (budgets merged in, the
        satisfaction ``engine`` included), so :meth:`load_result` can look
        every cell up by the same canonical key :func:`run_table` records
        outcomes under.  The engine is also recorded at the spec level, so a
        rendered report names the backend its numbers were measured with.
        """
        rows: List[Dict[str, object]] = []
        by_key: Dict[Tuple, Dict[str, object]] = {}
        for row_key, column, task, params in cells:
            if row_key not in by_key:
                by_key[row_key] = {"key": list(row_key), "cells": []}
                rows.append(by_key[row_key])
            by_key[row_key]["cells"].append(
                {"column": column, "task": task, "params": params}
            )
        record = {
            "kind": "spec",
            "name": name,
            "title": title,
            "row_header": list(row_header),
            "engine": engine,
            "rows": rows,
        }
        self._append(record)
        self._spec_record = record

    @property
    def has_spec(self) -> bool:
        return self._spec_record is not None

    def load_result(self):
        """Rebuild a renderable table result from the journal alone.

        Returns a :class:`~repro.harness.tables.TableResult`; cells whose
        outcome was never journalled render as ``-``, exactly like cells a
        sweep has not reached yet.
        """
        from repro.harness.tables import TableResult, TableSpec

        if self._spec_record is None:
            raise ValueError(
                f"results journal {self.path} has no spec record; it was not "
                "written by run_table"
            )
        spec = TableSpec(
            name=self._spec_record["name"],
            title=self._spec_record["title"],
            row_header=tuple(self._spec_record["row_header"]),
            # Journals written before the engine field default to the engine
            # that was the only backend at the time.
            engine=self._spec_record.get("engine", "bitset"),
        )
        result = TableResult(spec=spec)
        for row in self._spec_record["rows"]:
            row_key = tuple(row["key"])
            cells = []
            for cell in row["cells"]:
                cells.append((cell["column"], cell["task"], cell["params"]))
                outcome = self.outcomes.get(
                    canonical_key(cell["task"], cell["params"])
                )
                if outcome is not None:
                    result.outcomes[(row_key, cell["column"])] = outcome
            spec.rows.append((row_key, cells))
        return result
