"""Experiment tasks: the work behind each table cell.

Every task is a module-level function taking plain keyword arguments and
returning a small JSON-like dictionary, so it can be executed in a separate
process by :mod:`repro.harness.runner`.  The returned dictionaries include
enough qualitative information (spec results, optimality verdicts, state
counts) to be checked by the integration tests, not just timed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.synthesis import synthesize_eba, synthesize_sba
from repro.engines import DEFAULT_ENGINE, checker_for, validate_engine
from repro.factory import build_eba_model, build_sba_model
from repro.kbp.implementation import verify_sba_implementation
from repro.protocols.eba import EBasicProtocol, EMinProtocol
from repro.protocols.sba import (
    CountConditionProtocol,
    DworkMosesProtocol,
    FloodSetRevisedProtocol,
    FloodSetStandardProtocol,
)
from repro.spec.eba import eba_spec_formulas
from repro.spec.sba import sba_spec_formulas
from repro.systems.space import build_space


def _sba_protocol(exchange: str, num_agents: int, max_faulty: int, optimal: bool):
    """The literature protocol used for model checking a given exchange."""
    if exchange == "floodset":
        if optimal:
            return FloodSetRevisedProtocol(num_agents, max_faulty)
        return FloodSetStandardProtocol(num_agents, max_faulty)
    if exchange in ("count", "diff"):
        if optimal:
            return CountConditionProtocol(num_agents, max_faulty)
        return FloodSetStandardProtocol(num_agents, max_faulty)
    if exchange == "dwork-moses":
        return DworkMosesProtocol(num_agents, max_faulty)
    raise ValueError(f"no literature protocol for exchange {exchange!r}")


def sba_model_check_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    rounds: Optional[int] = None,
    optimal_protocol: bool = False,
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check an SBA protocol: temporal specification + knowledge analysis.

    This mirrors the paper's model-checking experiments: the space generated
    by the literature protocol is built, the SBA specification formulas are
    checked, and the protocol's decisions are compared against the knowledge
    condition ``B^N_i CB_N ∃v`` at every point (the optimality check).
    """
    validate_engine(engine)
    model = build_sba_model(
        exchange, num_agents=num_agents, max_faulty=max_faulty,
        num_values=num_values, failures=failures,
    )
    horizon = rounds if rounds is not None else model.default_horizon()
    protocol = _sba_protocol(exchange, num_agents, max_faulty, optimal_protocol)
    space = build_space(model, protocol, horizon=horizon, max_states=max_states)

    checker = checker_for(space, engine)
    spec_results = {
        name: checker.holds_initially(formula)
        for name, formula in sba_spec_formulas(model, horizon).items()
    }
    # The verifier shares the checker's engine state (one symbolic encoder
    # per task, not one for the spec formulas and another for the guards).
    report = verify_sba_implementation(
        model, protocol, space=space, engine=engine, checker=checker
    )
    return {
        "task": "sba-model-check",
        "engine": engine,
        "exchange": exchange,
        "failures": failures,
        "n": num_agents,
        "t": max_faulty,
        "rounds": horizon,
        "protocol": protocol.name,
        "states": space.num_states(),
        "spec": spec_results,
        "implementation_ok": report.ok,
        "optimal": report.is_optimal,
        "sound": report.is_sound,
        "late_points": len(report.late_mismatches()),
    }


def sba_temporal_only_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check only the purely temporal SBA specification.

    This is the ablation suggested by the paper's concluding remark: checking
    the temporal specification alone (no knowledge or common-belief
    operators) scales considerably better.
    """
    validate_engine(engine)
    model = build_sba_model(
        exchange, num_agents=num_agents, max_faulty=max_faulty,
        num_values=num_values, failures=failures,
    )
    horizon = model.default_horizon()
    protocol = _sba_protocol(exchange, num_agents, max_faulty, optimal=False)
    space = build_space(model, protocol, horizon=horizon, max_states=max_states)
    checker = checker_for(space, engine)
    spec_results = {
        name: checker.holds_initially(formula)
        for name, formula in sba_spec_formulas(model, horizon).items()
    }
    return {
        "task": "sba-temporal-only",
        "engine": engine,
        "exchange": exchange,
        "n": num_agents,
        "t": max_faulty,
        "states": space.num_states(),
        "spec": spec_results,
    }


def sba_synthesis_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    rounds: Optional[int] = None,
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Synthesize the optimal SBA protocol for an exchange and failure model."""
    model = build_sba_model(
        exchange, num_agents=num_agents, max_faulty=max_faulty,
        num_values=num_values, failures=failures,
    )
    result = synthesize_sba(model, horizon=rounds, max_states=max_states, engine=engine)
    earliest = None
    for time in range(result.space.horizon + 1):
        if any(
            not result.conditions.get(agent, time, value).always_false()
            for agent in model.agents()
            for value in model.values()
        ):
            earliest = time
            break
    return {
        "task": "sba-synthesis",
        "engine": engine,
        "exchange": exchange,
        "failures": failures,
        "n": num_agents,
        "t": max_faulty,
        "states": result.space.num_states(),
        "earliest_condition_time": earliest,
    }


def eba_synthesis_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Synthesize an implementation of ``P0`` for an EBA exchange."""
    model = build_eba_model(
        exchange, num_agents=num_agents, max_faulty=max_faulty, failures=failures
    )
    result = synthesize_eba(model, max_states=max_states, engine=engine)
    return {
        "task": "eba-synthesis",
        "engine": engine,
        "exchange": exchange,
        "failures": failures,
        "n": num_agents,
        "t": max_faulty,
        "states": result.space.num_states(),
        "iterations": result.iterations,
        "converged": result.converged,
    }


def eba_model_check_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check the literature EBA protocol against the EBA specification."""
    validate_engine(engine)
    model = build_eba_model(
        exchange, num_agents=num_agents, max_faulty=max_faulty, failures=failures
    )
    if exchange == "emin":
        protocol = EMinProtocol(num_agents, max_faulty)
    elif exchange == "ebasic":
        protocol = EBasicProtocol(num_agents, max_faulty)
    else:
        raise ValueError(f"unknown EBA exchange {exchange!r}")
    horizon = model.default_horizon()
    space = build_space(model, protocol, horizon=horizon, max_states=max_states)
    checker = checker_for(space, engine)
    spec_results = {
        name: checker.holds_initially(formula)
        for name, formula in eba_spec_formulas(model, horizon).items()
    }
    return {
        "task": "eba-model-check",
        "engine": engine,
        "exchange": exchange,
        "failures": failures,
        "n": num_agents,
        "t": max_faulty,
        "protocol": protocol.name,
        "states": space.num_states(),
        "spec": spec_results,
    }


#: Registry used by the subprocess runner (names must be stable).
TASKS = {
    "sba-model-check": sba_model_check_task,
    "sba-temporal-only": sba_temporal_only_task,
    "sba-synthesis": sba_synthesis_task,
    "eba-synthesis": eba_synthesis_task,
    "eba-model-check": eba_model_check_task,
}
