"""Experiment tasks: the work behind each table cell.

Every task is a module-level function taking plain keyword arguments and
returning a small JSON-like dictionary, so it can be executed in a separate
process by :mod:`repro.harness.runner`.  Since the API redesign the tasks are
thin shims over the :mod:`repro.api` facade: each one builds a validated
:class:`~repro.api.Scenario` from its keyword arguments (via
``Scenario.from_task_params``, which is also what canonicalises the store
keys) and runs the corresponding typed query through a fresh
:class:`~repro.api.Session`.  A task gets a *fresh* session on purpose: grid
cells run in forked children anyway, and the in-process runs the benchmarks
use must measure real construction cost, not a warm cache.  Long-lived
callers that want amortisation (the CLI one-shots, ``repro serve``) hold a
session of their own.
The returned dictionaries are the typed results' legacy ``to_dict`` form,
byte-compatible with pre-redesign result journals.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api import Scenario, Session
from repro.engines import DEFAULT_ENGINE


def sba_model_check_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    rounds: Optional[int] = None,
    optimal_protocol: bool = False,
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check an SBA protocol: temporal specification + knowledge analysis.

    This mirrors the paper's model-checking experiments: the space generated
    by the literature protocol is built, the SBA specification formulas are
    checked, and the protocol's decisions are compared against the knowledge
    condition ``B^N_i CB_N ∃v`` at every point (the optimality check).
    """
    scenario = Scenario.from_task_params(
        "sba-model-check",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            num_values=num_values, failures=failures, rounds=rounds,
            optimal_protocol=optimal_protocol, max_states=max_states,
            engine=engine,
        ),
    )
    return Session().check(scenario).to_dict()


def sba_temporal_only_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check only the purely temporal SBA specification.

    This is the ablation suggested by the paper's concluding remark: checking
    the temporal specification alone (no knowledge or common-belief
    operators) scales considerably better.
    """
    scenario = Scenario.from_task_params(
        "sba-temporal-only",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            num_values=num_values, failures=failures, max_states=max_states,
            engine=engine,
        ),
    )
    return Session().check_temporal(scenario).to_dict()


def sba_synthesis_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    rounds: Optional[int] = None,
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Synthesize the optimal SBA protocol for an exchange and failure model."""
    scenario = Scenario.from_task_params(
        "sba-synthesis",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            num_values=num_values, failures=failures, rounds=rounds,
            max_states=max_states, engine=engine,
        ),
    )
    return Session().synthesize(scenario).to_dict()


def eba_synthesis_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Synthesize an implementation of ``P0`` for an EBA exchange."""
    scenario = Scenario.from_task_params(
        "eba-synthesis",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            failures=failures, max_states=max_states, engine=engine,
        ),
    )
    return Session().synthesize(scenario).to_dict()


def eba_model_check_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check the literature EBA protocol against the EBA specification."""
    scenario = Scenario.from_task_params(
        "eba-model-check",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            failures=failures, max_states=max_states, engine=engine,
        ),
    )
    return Session().check(scenario).to_dict()


#: Registry used by the subprocess runner (names must be stable).
TASKS = {
    "sba-model-check": sba_model_check_task,
    "sba-temporal-only": sba_temporal_only_task,
    "sba-synthesis": sba_synthesis_task,
    "eba-synthesis": eba_synthesis_task,
    "eba-model-check": eba_model_check_task,
}
