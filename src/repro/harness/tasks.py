"""Experiment tasks: the work behind each table cell.

Every task is a module-level function taking plain keyword arguments and
returning a small JSON-like dictionary, so it can be executed in a separate
process by :mod:`repro.harness.runner`.  Since the API redesign the tasks are
thin shims over the :mod:`repro.api` facade: each one builds a validated
:class:`~repro.api.Scenario` from its keyword arguments (via
``Scenario.from_task_params``, which is also what canonicalises the store
keys) and runs the corresponding typed query through a fresh
:class:`~repro.api.Session`.  A task gets a *fresh* session on purpose: grid
cells run in forked children anyway, and the in-process runs the benchmarks
use must measure real construction cost, not a warm cache.  Long-lived
callers that want amortisation (the CLI one-shots, ``repro serve``) hold a
session of their own.

Two process-local channels connect the tasks to the compute plane without
changing the task signatures (which are pickled across the fork boundary as
plain kwargs):

* :func:`set_active_preloader` installs a
  :class:`~repro.runtime.preload.Preloader` whose read-only artefacts every
  subsequent task's session consumes (forked children inherit the parent's
  preloader copy-on-write and the runner re-installs it after the fork).
* :data:`LAST_TIMING` publishes each task's ``(build_seconds,
  check_seconds)`` split, which the runner attaches to the cell outcome.

The returned dictionaries are the typed results' legacy ``to_dict`` form,
byte-compatible with pre-redesign result journals.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.api import Scenario, Session
from repro.engines import DEFAULT_ENGINE

#: The preloader whose artefacts task sessions consume (process-local).
_ACTIVE_PRELOADER = None

#: The ``(build_seconds, check_seconds)`` split of the last task run in this
#: process, or None.  A side channel rather than a return-value change so the
#: task result dictionaries stay byte-compatible with existing journals.
LAST_TIMING: Optional[Tuple[float, float]] = None


def set_active_preloader(preloader) -> None:
    """Install the process-local preloader task sessions will consume."""
    global _ACTIVE_PRELOADER
    _ACTIVE_PRELOADER = preloader


def consume_last_timing() -> Optional[Tuple[float, float]]:
    """Pop the ``(build, check)`` seconds of the last task run, if any."""
    global LAST_TIMING
    timing, LAST_TIMING = LAST_TIMING, None
    return timing


def _run_timed(query: Callable[[Session], object]) -> Dict[str, object]:
    """Run one query on a fresh session and publish its timing split.

    ``build_seconds`` is the session's shareable-artefact build time (model +
    space) — the part a preloaded space amortises away; ``check_seconds`` is
    everything else (satisfaction, optimality, synthesis search).  Synthesis
    cells build their space incrementally inside the search, so their build
    share is reported as ~0 by construction: there is no shareable build.
    """
    global LAST_TIMING
    session = Session(preloaded=_ACTIVE_PRELOADER)
    start = time.perf_counter()
    result = query(session)
    total = time.perf_counter() - start
    build = session.build_seconds()
    LAST_TIMING = (min(build, total), max(total - build, 0.0))
    return result.to_dict()


def sba_model_check_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    rounds: Optional[int] = None,
    optimal_protocol: bool = False,
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check an SBA protocol: temporal specification + knowledge analysis.

    This mirrors the paper's model-checking experiments: the space generated
    by the literature protocol is built, the SBA specification formulas are
    checked, and the protocol's decisions are compared against the knowledge
    condition ``B^N_i CB_N ∃v`` at every point (the optimality check).
    """
    scenario = Scenario.from_task_params(
        "sba-model-check",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            num_values=num_values, failures=failures, rounds=rounds,
            optimal_protocol=optimal_protocol, max_states=max_states,
            engine=engine,
        ),
    )
    return _run_timed(lambda session: session.check(scenario))


def sba_temporal_only_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check only the purely temporal SBA specification.

    This is the ablation suggested by the paper's concluding remark: checking
    the temporal specification alone (no knowledge or common-belief
    operators) scales considerably better.
    """
    scenario = Scenario.from_task_params(
        "sba-temporal-only",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            num_values=num_values, failures=failures, max_states=max_states,
            engine=engine,
        ),
    )
    return _run_timed(lambda session: session.check_temporal(scenario))


def sba_synthesis_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    num_values: int = 2,
    failures: str = "crash",
    rounds: Optional[int] = None,
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Synthesize the optimal SBA protocol for an exchange and failure model."""
    scenario = Scenario.from_task_params(
        "sba-synthesis",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            num_values=num_values, failures=failures, rounds=rounds,
            max_states=max_states, engine=engine,
        ),
    )
    return _run_timed(lambda session: session.synthesize(scenario))


def eba_synthesis_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Synthesize an implementation of ``P0`` for an EBA exchange."""
    scenario = Scenario.from_task_params(
        "eba-synthesis",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            failures=failures, max_states=max_states, engine=engine,
        ),
    )
    return _run_timed(lambda session: session.synthesize(scenario))


def eba_model_check_task(
    exchange: str,
    num_agents: int,
    max_faulty: int,
    failures: str = "sending",
    max_states: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, object]:
    """Model check the literature EBA protocol against the EBA specification."""
    scenario = Scenario.from_task_params(
        "eba-model-check",
        dict(
            exchange=exchange, num_agents=num_agents, max_faulty=max_faulty,
            failures=failures, max_states=max_states, engine=engine,
        ),
    )
    return _run_timed(lambda session: session.check(scenario))


#: Registry used by the subprocess runner (names must be stable).
TASKS = {
    "sba-model-check": sba_model_check_task,
    "sba-temporal-only": sba_temporal_only_task,
    "sba-synthesis": sba_synthesis_task,
    "eba-synthesis": eba_synthesis_task,
    "eba-model-check": eba_model_check_task,
}
