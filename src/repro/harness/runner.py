"""Run experiment tasks in separate processes with wall-clock budgets.

Each table cell in the paper is one run of MCK with a 10-minute timeout; the
runner reproduces that protocol: the task is executed in a forked process, and
if it does not finish within the budget it is terminated and the cell is
reported as ``TO``.  A state budget (``max_states``) provides an additional
memory guard that is also reported as ``TO``.

:class:`CaseHandle` is the non-blocking half of the runner: it starts the
child and can be polled against its deadline, which is what lets
:func:`repro.harness.tables.run_table` keep several cells in flight at once.
:func:`run_case` is the blocking convenience wrapper around it.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Optional

from repro.harness import tasks as task_registry
from repro.harness.tasks import TASKS
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.runtime.guard import WallClockExceeded, wall_clock_limit
from repro.systems.space import SpaceBudgetExceeded

#: How long a timed-out child gets to honour SIGTERM before it is SIGKILLed.
#: A worker stuck inside a single long arbitrary-precision integer operation
#: never reaches a bytecode boundary where the default SIGTERM handler runs,
#: so an unbounded ``join()`` after ``terminate()`` can hang forever.
TERM_GRACE_SECONDS = 5.0


@dataclass
class CaseOutcome:
    """Outcome of a single experiment case.

    ``build_seconds``/``check_seconds`` split ``seconds`` into shareable
    artefact construction (model + space) and everything else (satisfaction,
    optimality, synthesis search).  They are None for cells that did not
    report a split (timeouts, errors, journal records written before the
    split existed).  Synthesis cells report a build share of ~0 by
    construction: their space grows inside the search and is not shareable.
    """

    task: str
    params: Dict[str, object]
    seconds: Optional[float]
    timed_out: bool
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    build_seconds: Optional[float] = None
    check_seconds: Optional[float] = None
    #: The child's metrics-registry snapshot (cache lookups, build
    #: histograms) — journalled alongside the outcome so a finished grid can
    #: be mined for per-cell cache behaviour after the fact.  None for
    #: timeouts, errors, in-process runs, and pre-observability journals.
    metrics: Optional[Dict[str, object]] = None
    #: Per-kernel profile summary when the child ran with ``REPRO_PROFILE=1``
    #: (or ``--profile``); None otherwise.
    profile: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """True when the case completed within its budgets."""
        return not self.timed_out and self.error is None

    def cell(self) -> str:
        """The table-cell rendering: ``MmSS.mmm`` as in the paper, or ``TO``."""
        if self.timed_out:
            return "TO"
        if self.error is not None:
            return "ERR"
        assert self.seconds is not None
        minutes = int(self.seconds // 60)
        seconds = self.seconds - 60 * minutes
        return f"{minutes}m{seconds:06.3f}"


def _child(task_name: str, params: Dict[str, object], pipe, preloaded=None) -> None:
    # The child measures its own elapsed time: the scheduler may be busy
    # (e.g. escalating a sibling's kill) when this child exits, so a
    # harvest-time measurement in the parent would overstate the runtime.
    # ``preloaded`` arrived by reference across the fork (copy-on-write, no
    # pickling); installing it here lets the task's session read the parent's
    # prebuilt space artefacts.
    task_registry.set_active_preloader(preloaded)
    task_registry.consume_last_timing()
    # The fork copied the parent's already-populated registry and profiling
    # state; this cell's snapshot must start from zero.  Profiling enablement
    # is re-derived from the environment here for the same reason — the
    # parent imported repro.obs.profile long before --profile set the flag.
    obs_metrics.REGISTRY.reset()
    obs_profile.maybe_enable_from_env()
    obs_profile.consume_summary()
    start = time.perf_counter()
    try:
        func = TASKS[task_name]
        result = func(**params)
        timing = task_registry.consume_last_timing()
        observed = {
            "metrics": obs_metrics.REGISTRY.snapshot(),
            "profile": obs_profile.consume_summary(),
        }
        pipe.send(("ok", result, time.perf_counter() - start, timing, observed))
    except MemoryError:
        pipe.send(("error", "out of memory", None, None))
    except Exception:  # pragma: no cover - defensive: report, don't hang
        pipe.send(("error", traceback.format_exc(limit=5), None, None))
    finally:
        pipe.close()


class CaseHandle:
    """A started experiment case: the forked child plus its result pipe.

    The handle owns two OS resources — the parent end of the result pipe and
    the child process object — and releases both exactly once, in
    :meth:`harvest`, whatever path the case takes (success, error, timeout,
    kill escalation).  The parent's copy of the child end is closed as soon
    as the fork has happened; a 100+-cell sweep that kept all three alive
    per cell would exhaust the fd table (``EMFILE``).
    """

    def __init__(
        self,
        task: str,
        params: Dict[str, object],
        timeout: Optional[float] = None,
        term_grace: float = TERM_GRACE_SECONDS,
        preloaded=None,
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"unknown task {task!r}; known tasks: {sorted(TASKS)}")
        self.task = task
        self.params = params
        self.timeout = timeout
        self.term_grace = term_grace
        self._outcome: Optional[CaseOutcome] = None
        context = multiprocessing.get_context("fork")
        self._pipe, child_pipe = context.Pipe(duplex=False)
        # The preloader rides the fork by reference: CoW pages, no pickling.
        self._process = context.Process(
            target=_child, args=(task, params, child_pipe, preloaded)
        )
        self.started = time.perf_counter()
        self._process.start()
        # The child inherited its own copy of this end across the fork; the
        # parent's copy must go, both to save an fd per cell and so that the
        # parent end sees EOF if the child dies without sending.
        child_pipe.close()

    @property
    def sentinel(self) -> int:
        """Waitable fd that becomes ready when the child exits."""
        return self._process.sentinel

    @property
    def deadline(self) -> Optional[float]:
        """``perf_counter`` time at which the case busts its budget."""
        return None if self.timeout is None else self.started + self.timeout

    def expired(self, now: Optional[float] = None) -> bool:
        """True once the wall-clock budget has elapsed."""
        if self.deadline is None:
            return False
        return (time.perf_counter() if now is None else now) >= self.deadline

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait (up to ``timeout`` seconds) for the child to exit."""
        self._process.join(timeout)

    def poll(self) -> Optional[CaseOutcome]:
        """Harvest if the child has finished or busted its budget, else None."""
        if self._outcome is not None:
            return self._outcome
        if self._process.is_alive() and not self.expired():
            return None
        return self.harvest()

    def harvest(self) -> CaseOutcome:
        """Reap the child and build the outcome, releasing all OS resources.

        If the child is still alive (budget exceeded), it is sent SIGTERM,
        given :attr:`term_grace` seconds, then SIGKILLed — a child stuck in a
        single long C-level operation never services SIGTERM, and an
        unbounded join would hang the whole table.  Idempotent: the outcome
        is cached and resources are released only once.
        """
        if self._outcome is not None:
            return self._outcome
        elapsed = time.perf_counter() - self.started

        timed_out = False
        if self._process.is_alive():
            timed_out = True
            self._process.terminate()
            self._process.join(self.term_grace)
            if self._process.is_alive():
                self._process.kill()
                self._process.join()

        status, payload, child_seconds, timing, observed = (
            "error", "worker produced no result", None, None, None,
        )
        try:
            if self._pipe.poll():
                message = self._pipe.recv()
                # Tolerate the pre-split 3-tuple and pre-observability
                # 4-tuple shapes: a monkeypatched or stale child sending
                # without timing or metrics is not an error.
                status, payload, child_seconds = message[:3]
                timing = message[3] if len(message) > 3 else None
                observed = message[4] if len(message) > 4 else None
                if not isinstance(observed, dict):
                    observed = None
        except (EOFError, OSError):  # pragma: no cover - torn-down pipe
            pass
        finally:
            self._pipe.close()
        self._process.join()
        self._process.close()

        if timed_out:
            outcome = CaseOutcome(
                task=self.task, params=self.params, seconds=None, timed_out=True
            )
        elif status == "ok":
            outcome = CaseOutcome(
                task=self.task,
                params=self.params,
                seconds=child_seconds if child_seconds is not None else elapsed,
                timed_out=False,
                result=payload,
                build_seconds=timing[0] if timing else None,
                check_seconds=timing[1] if timing else None,
                metrics=(observed or {}).get("metrics"),
                profile=(observed or {}).get("profile"),
            )
        elif isinstance(payload, str) and "SpaceBudgetExceeded" in payload:
            # A state-budget violation surfaces as an error; report it as TO
            # since it plays the same role as the paper's timeout.
            outcome = CaseOutcome(
                task=self.task, params=self.params, seconds=None, timed_out=True
            )
        else:
            outcome = CaseOutcome(
                task=self.task,
                params=self.params,
                seconds=None,
                timed_out=False,
                error=str(payload),
            )
        self._outcome = outcome
        return outcome


def run_case(
    task: str,
    params: Dict[str, object],
    timeout: Optional[float] = None,
    in_process: bool = False,
    term_grace: float = TERM_GRACE_SECONDS,
    preloaded=None,
) -> CaseOutcome:
    """Run one experiment case, optionally with a wall-clock budget.

    ``in_process=True`` skips the fork and runs the task directly; this is
    what the pytest-benchmark benchmarks use so that the measured time is the
    task itself rather than process start-up.  The wall-clock budget still
    applies in-process, enforced with a SIGALRM interval timer — best-effort
    (a task stuck in one long C-level operation cannot be interrupted) and,
    off the main thread, degraded to an explicit ``RuntimeWarning``.

    ``preloaded`` is a :class:`~repro.runtime.preload.Preloader` whose
    read-only space artefacts the task's session consumes instead of
    building; forked children inherit it copy-on-write.
    """
    if task not in TASKS:
        raise ValueError(f"unknown task {task!r}; known tasks: {sorted(TASKS)}")

    if in_process or timeout is None:
        previous_preloader = task_registry._ACTIVE_PRELOADER
        task_registry.set_active_preloader(preloaded)
        task_registry.consume_last_timing()
        # In-process runs share the process registry with everything else in
        # the process (benchmarks, earlier cells), so no per-cell metrics
        # snapshot is attached; the profile is still collected per call.
        obs_profile.maybe_enable_from_env()
        obs_profile.consume_summary()
        start = time.perf_counter()
        try:
            with wall_clock_limit(timeout, label=f"task {task!r}"):
                result = TASKS[task](**params)
        except (WallClockExceeded, SpaceBudgetExceeded):
            # Same verdict as the forked path: a busted wall-clock or state
            # budget is the paper's TO cell, not an error.
            return CaseOutcome(
                task=task, params=params, seconds=None, timed_out=True
            )
        except Exception:
            return CaseOutcome(
                task=task,
                params=params,
                seconds=None,
                timed_out=False,
                error=traceback.format_exc(limit=5),
            )
        finally:
            task_registry.set_active_preloader(previous_preloader)
        elapsed = time.perf_counter() - start
        timing = task_registry.consume_last_timing()
        return CaseOutcome(
            task=task,
            params=params,
            seconds=elapsed,
            timed_out=False,
            result=result,
            build_seconds=timing[0] if timing else None,
            check_seconds=timing[1] if timing else None,
            profile=obs_profile.consume_summary(),
        )

    handle = CaseHandle(
        task, params, timeout=timeout, term_grace=term_grace, preloaded=preloaded
    )
    handle.join(timeout)
    return handle.harvest()
