"""Run experiment tasks in separate processes with wall-clock budgets.

Each table cell in the paper is one run of MCK with a 10-minute timeout; the
runner reproduces that protocol: the task is executed in a forked process, and
if it does not finish within the budget it is terminated and the cell is
reported as ``TO``.  A state budget (``max_states``) provides an additional
memory guard that is also reported as ``TO``.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Optional

from repro.harness.tasks import TASKS


@dataclass
class CaseOutcome:
    """Outcome of a single experiment case."""

    task: str
    params: Dict[str, object]
    seconds: Optional[float]
    timed_out: bool
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """True when the case completed within its budgets."""
        return not self.timed_out and self.error is None

    def cell(self) -> str:
        """The table-cell rendering: ``MmSS.mmm`` as in the paper, or ``TO``."""
        if self.timed_out:
            return "TO"
        if self.error is not None:
            return "ERR"
        assert self.seconds is not None
        minutes = int(self.seconds // 60)
        seconds = self.seconds - 60 * minutes
        return f"{minutes}m{seconds:.3f}"


def _child(task_name: str, params: Dict[str, object], pipe) -> None:
    try:
        func = TASKS[task_name]
        result = func(**params)
        pipe.send(("ok", result))
    except MemoryError:
        pipe.send(("error", "out of memory"))
    except Exception:  # pragma: no cover - defensive: report, don't hang
        pipe.send(("error", traceback.format_exc(limit=5)))
    finally:
        pipe.close()


def run_case(
    task: str,
    params: Dict[str, object],
    timeout: Optional[float] = None,
    in_process: bool = False,
) -> CaseOutcome:
    """Run one experiment case, optionally with a wall-clock budget.

    ``in_process=True`` skips the fork and runs the task directly (no timeout
    enforcement); this is what the pytest-benchmark benchmarks use so that the
    measured time is the task itself rather than process start-up.
    """
    if task not in TASKS:
        raise ValueError(f"unknown task {task!r}; known tasks: {sorted(TASKS)}")

    if in_process or timeout is None:
        start = time.perf_counter()
        try:
            result = TASKS[task](**params)
        except Exception:
            return CaseOutcome(
                task=task,
                params=params,
                seconds=None,
                timed_out=False,
                error=traceback.format_exc(limit=5),
            )
        elapsed = time.perf_counter() - start
        return CaseOutcome(
            task=task, params=params, seconds=elapsed, timed_out=False, result=result
        )

    context = multiprocessing.get_context("fork")
    parent_pipe, child_pipe = context.Pipe(duplex=False)
    process = context.Process(target=_child, args=(task, params, child_pipe))
    start = time.perf_counter()
    process.start()
    process.join(timeout)
    elapsed = time.perf_counter() - start

    if process.is_alive():
        process.terminate()
        process.join()
        return CaseOutcome(task=task, params=params, seconds=None, timed_out=True)

    status, payload = ("error", "worker produced no result")
    if parent_pipe.poll():
        status, payload = parent_pipe.recv()
    if status == "ok":
        return CaseOutcome(
            task=task, params=params, seconds=elapsed, timed_out=False, result=payload
        )
    # A state-budget violation surfaces as an error; report it as TO since it
    # plays the same role as the paper's timeout.
    if isinstance(payload, str) and "SpaceBudgetExceeded" in payload:
        return CaseOutcome(task=task, params=params, seconds=None, timed_out=True)
    return CaseOutcome(
        task=task, params=params, seconds=None, timed_out=False, error=str(payload)
    )
