"""Benchmark harness.

The harness reproduces the structure of the paper's performance experiments
(Section 10): each table cell is one model-checking or synthesis task, run in
a separate process with a wall-clock budget; tasks that exceed the budget (or
a state budget) are reported as ``TO`` exactly as in the paper's tables.

* :mod:`repro.harness.tasks` — the individual experiment tasks (model check /
  synthesize one configuration) returning small result summaries.
* :mod:`repro.harness.runner` — subprocess execution with timeouts.
* :mod:`repro.harness.tables` — the table definitions (Tables 1–3 plus the
  ablations) and text rendering.
"""

from repro.harness.runner import CaseOutcome, run_case
from repro.harness.tables import (
    TableSpec,
    ablation_failure_models,
    ablation_temporal_only,
    render_table,
    run_table,
    table1_spec,
    table2_spec,
    table3_spec,
)

__all__ = [
    "CaseOutcome",
    "run_case",
    "TableSpec",
    "render_table",
    "run_table",
    "table1_spec",
    "table2_spec",
    "table3_spec",
    "ablation_temporal_only",
    "ablation_failure_models",
]
