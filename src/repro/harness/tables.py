"""Table definitions and rendering for the paper's performance experiments.

Each :class:`TableSpec` describes one of the paper's tables (or one of our
ablations) as a list of rows, where every row contains the varied parameters
and one or more cells; every cell is an experiment task run with a wall-clock
budget.  :func:`run_table` executes a spec and :func:`render_table` renders
the outcome in the same row/column structure the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import CaseOutcome, run_case

#: A cell: (column label, task name, task parameters).
CellSpec = Tuple[str, str, Dict[str, object]]


@dataclass
class TableSpec:
    """A benchmark table: a title, row labels and per-row cells."""

    name: str
    title: str
    row_header: Sequence[str]
    rows: List[Tuple[Tuple, List[CellSpec]]] = field(default_factory=list)

    def columns(self) -> List[str]:
        """The distinct column labels, in first-appearance order."""
        seen: List[str] = []
        for _, cells in self.rows:
            for label, _, _ in cells:
                if label not in seen:
                    seen.append(label)
        return seen


@dataclass
class TableResult:
    """The outcome of running a :class:`TableSpec`."""

    spec: TableSpec
    outcomes: Dict[Tuple[Tuple, str], CaseOutcome] = field(default_factory=dict)

    def cell(self, row_key: Tuple, column: str) -> str:
        """The rendered cell for a row key and column label."""
        outcome = self.outcomes.get((row_key, column))
        return outcome.cell() if outcome is not None else "-"


def run_table(
    spec: TableSpec,
    timeout: Optional[float] = 60.0,
    max_states: Optional[int] = 2_000_000,
    verbose: bool = False,
) -> TableResult:
    """Run every cell of a table spec with the given budgets."""
    result = TableResult(spec=spec)
    for row_key, cells in spec.rows:
        for column, task, params in cells:
            case_params = dict(params)
            if max_states is not None and "max_states" not in case_params:
                case_params["max_states"] = max_states
            outcome = run_case(task, case_params, timeout=timeout)
            result.outcomes[(row_key, column)] = outcome
            if verbose:
                print(f"  {spec.name} {row_key} {column}: {outcome.cell()}", flush=True)
    return result


def render_table(result: TableResult) -> str:
    """Render a table result as aligned text (paper-style rows and columns)."""
    spec = result.spec
    columns = spec.columns()
    header = list(spec.row_header) + columns
    body: List[List[str]] = []
    for row_key, _ in spec.rows:
        row = [str(part) for part in row_key]
        for column in columns:
            row.append(result.cell(row_key, column))
        body.append(row)

    widths = [len(name) for name in header]
    for row in body:
        for position, value in enumerate(row):
            widths[position] = max(widths[position], len(value))

    lines = [spec.title]
    lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in body:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The paper's tables
# ---------------------------------------------------------------------------


def _nt_grid(max_n: int, min_n: int = 2) -> List[Tuple[int, int]]:
    """The (n, t) grid used by Table 1: all t from 1 to n, n from 2 up."""
    grid = []
    for n in range(min_n, max_n + 1):
        for t in range(1, n + 1):
            grid.append((n, t))
    return grid


def table1_spec(max_n: int = 5, include_count: bool = True) -> TableSpec:
    """Table 1: SBA model checking and synthesis, FloodSet vs Count-FloodSet."""
    spec = TableSpec(
        name="table1",
        title="Table 1: running times for SBA model checking and synthesis "
        "(crash failures, |V| = 2)",
        row_header=("n", "t"),
    )
    for n, t in _nt_grid(max_n):
        cells: List[CellSpec] = [
            (
                "floodset-mc",
                "sba-model-check",
                {"exchange": "floodset", "num_agents": n, "max_faulty": t},
            ),
            (
                "floodset-synth",
                "sba-synthesis",
                {"exchange": "floodset", "num_agents": n, "max_faulty": t},
            ),
        ]
        if include_count:
            cells.extend(
                [
                    (
                        "count-mc",
                        "sba-model-check",
                        {"exchange": "count", "num_agents": n, "max_faulty": t},
                    ),
                    (
                        "count-synth",
                        "sba-synthesis",
                        {"exchange": "count", "num_agents": n, "max_faulty": t},
                    ),
                ]
            )
        spec.rows.append(((n, t), cells))
    return spec


def table2_spec(max_n: int = 4) -> TableSpec:
    """Table 2: SBA model checking for Diff and Dwork–Moses, varying rounds."""
    spec = TableSpec(
        name="table2",
        title="Table 2: running times for SBA model checking, Diff and "
        "Dwork-Moses protocols (crash failures, |V| = 2)",
        row_header=("n", "t", "rounds"),
    )
    for n in range(2, max_n + 1):
        for t in range(1, n + 1):
            for rounds in range(1, t + 2):
                cells: List[CellSpec] = [
                    (
                        "diff-mc",
                        "sba-model-check",
                        {
                            "exchange": "diff",
                            "num_agents": n,
                            "max_faulty": t,
                            "rounds": rounds,
                        },
                    ),
                    (
                        "dwork-moses-mc",
                        "sba-model-check",
                        {
                            "exchange": "dwork-moses",
                            "num_agents": n,
                            "max_faulty": t,
                            "rounds": rounds,
                        },
                    ),
                ]
                spec.rows.append(((n, t, rounds), cells))
    return spec


def table3_spec(max_n: int = 4) -> TableSpec:
    """Table 3: EBA synthesis, E_min and E_basic, crash and sending omissions."""
    spec = TableSpec(
        name="table3",
        title="Table 3: running times for EBA synthesis",
        row_header=("n", "t"),
    )
    for n in range(2, max_n + 1):
        for t in range(1, n + 1):
            cells: List[CellSpec] = []
            for exchange in ("emin", "ebasic"):
                for failures in ("crash", "sending"):
                    cells.append(
                        (
                            f"{exchange}-{failures}",
                            "eba-synthesis",
                            {
                                "exchange": exchange,
                                "num_agents": n,
                                "max_faulty": t,
                                "failures": failures,
                            },
                        )
                    )
            spec.rows.append(((n, t), cells))
    return spec


def ablation_temporal_only(max_n: int = 5) -> TableSpec:
    """Ablation: purely temporal SBA checking scales further (Section 13)."""
    spec = TableSpec(
        name="ablation-temporal",
        title="Ablation: purely temporal SBA specification checking "
        "(no knowledge operators)",
        row_header=("exchange", "n", "t"),
    )
    for exchange in ("floodset", "dwork-moses"):
        for n in range(3, max_n + 1):
            t = n - 1
            spec.rows.append(
                (
                    (exchange, n, t),
                    [
                        (
                            "temporal-mc",
                            "sba-temporal-only",
                            {"exchange": exchange, "num_agents": n, "max_faulty": t},
                        ),
                        (
                            "full-mc",
                            "sba-model-check",
                            {"exchange": exchange, "num_agents": n, "max_faulty": t},
                        ),
                    ],
                )
            )
    return spec


def ablation_failure_models(max_n: int = 3) -> TableSpec:
    """Ablation: receiving and general omissions behave like sending omissions."""
    spec = TableSpec(
        name="ablation-failures",
        title="Ablation: EBA synthesis under other omission failure models",
        row_header=("n", "t"),
    )
    for n in range(2, max_n + 1):
        for t in range(1, n + 1):
            cells: List[CellSpec] = []
            for failures in ("sending", "receiving", "general"):
                cells.append(
                    (
                        f"emin-{failures}",
                        "eba-synthesis",
                        {
                            "exchange": "emin",
                            "num_agents": n,
                            "max_faulty": t,
                            "failures": failures,
                        },
                    )
                )
            spec.rows.append(((n, t), cells))
    return spec
