"""Table definitions and the grid engine for the paper's experiments.

Each :class:`TableSpec` describes one of the paper's tables (or one of our
ablations) as a list of rows, where every row contains the varied parameters
and one or more cells; every cell is an experiment task run with a wall-clock
budget.  :func:`run_table` executes a spec — sequentially or on a pool of
``workers`` concurrent forked children, optionally journalling every
completed cell to a :class:`~repro.harness.store.ResultStore` and skipping
cells the store already holds (``resume=True``) — and :func:`render_table`,
:func:`render_json` and :func:`render_csv` render the outcome in the same
row/column structure the paper uses.
"""

from __future__ import annotations

import csv
import io
import json
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_sentinels
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import Scenario, TableCell
from repro.engines import DEFAULT_ENGINE, validate_engine
from repro.harness.runner import (
    TERM_GRACE_SECONDS,
    CaseHandle,
    CaseOutcome,
    run_case,
)
from repro.harness.store import ResultStore
from repro.runtime.guard import wall_clock_limit
from repro.runtime.plan import SpacePlan, cell_space_plan
from repro.runtime.preload import Preloader

#: A cell: (column label, task name, task parameters).
CellSpec = Tuple[str, str, Dict[str, object]]


@dataclass
class TableSpec:
    """A benchmark table: a title, row labels and per-row cells."""

    name: str
    title: str
    row_header: Sequence[str]
    rows: List[Tuple[Tuple, List[CellSpec]]] = field(default_factory=list)
    #: The satisfaction engine every cell of the table runs under.  Also part
    #: of each cell's task parameters (and hence its store key), so a resumed
    #: grid can never silently mix backends.
    engine: str = DEFAULT_ENGINE

    def columns(self) -> List[str]:
        """The distinct column labels, in first-appearance order."""
        seen: List[str] = []
        for _, cells in self.rows:
            for label, _, _ in cells:
                if label not in seen:
                    seen.append(label)
        return seen


@dataclass
class TableResult:
    """The outcome of running a :class:`TableSpec`."""

    spec: TableSpec
    outcomes: Dict[Tuple[Tuple, str], CaseOutcome] = field(default_factory=dict)

    def cell(self, row_key: Tuple, column: str) -> str:
        """The rendered cell for a row key and column label."""
        outcome = self.outcomes.get((row_key, column))
        return outcome.cell() if outcome is not None else "-"


def _resolved_cells(
    spec: TableSpec, max_states: Optional[int]
) -> List[Tuple[Tuple, str, str, Dict[str, object]]]:
    """Flatten a spec into (row key, column, task, resolved params) cells.

    Every cell is resolved through a validated
    :class:`~repro.api.Scenario`: the spec's engine and the state budget are
    merged in, and the scenario's canonical parameter form
    (:meth:`Scenario.to_params`) becomes the cell's resolved params — so a
    malformed spec fails before any child forks, the engine is part of every
    canonical store key (outcomes recorded under one backend are never
    reused when resuming under another), and two specs that spell the same
    configuration differently journal under the same key.
    """
    from repro.api.scenario import TASK_FIELDS

    cells = []
    for row_key, row_cells in spec.rows:
        for column, task, params in row_cells:
            case_params = dict(params)
            if max_states is not None and "max_states" not in case_params:
                case_params["max_states"] = max_states
            case_params.setdefault("engine", spec.engine)
            if task in TASK_FIELDS:
                scenario = Scenario.from_task_params(task, case_params)
                case_params = scenario.to_params(task)
            # Ad-hoc tasks registered straight into TASKS (tests, forks) keep
            # their raw parameters; only the scenario tasks are canonicalised.
            cells.append((row_key, column, task, case_params))
    return cells


class _Progress:
    """Per-cell progress lines; all printing happens in the scheduler process,
    so concurrent workers never interleave partial lines."""

    def __init__(self, spec_name: str, total: int, verbose: bool) -> None:
        self.spec_name = spec_name
        self.total = total
        self.done = 0
        self.verbose = verbose

    def report(self, row_key: Tuple, column: str, outcome: CaseOutcome,
               cached: bool = False) -> None:
        self.done += 1
        if not self.verbose:
            return
        suffix = "  (cached)" if cached else ""
        print(
            f"  [{self.done}/{self.total}] {self.spec_name} {row_key} "
            f"{column}: {outcome.cell()}{suffix}",
            flush=True,
        )


class _SharedSpaces:
    """The scheduler's side of the compute plane: group, preload, release.

    Pending cells are regrouped so that cells reading the same
    :class:`~repro.runtime.plan.SpaceKey` run consecutively; the first cell
    of a group triggers one parent-side build at the *largest* horizon any
    cell of the group needs (guarded by the per-cell wall-clock budget), the
    group's children inherit the artefacts copy-on-write, and the artefacts
    are released as soon as the group's last cell has forked, so the
    parent's footprint stays one group wide.  A preload that busts the
    budget — or fails in any other way — downgrades its whole group to the
    per-cell rebuild path rather than failing the cells.
    """

    def __init__(
        self, pending: List[Tuple], timeout: Optional[float], verbose: bool
    ) -> None:
        self.preloader = Preloader()
        self.timeout = timeout
        self.verbose = verbose
        self._failed: set = set()
        self._remaining: Dict[object, int] = {}
        self._scenarios: Dict[object, Scenario] = {}
        self._horizons: Dict[object, int] = {}
        self.plans: Dict[int, Optional[SpacePlan]] = {}

        group_order: Dict[object, int] = {}
        annotated = []
        for position, cell in enumerate(pending):
            _, _, task, case_params = cell
            plan = cell_space_plan(task, case_params)
            if plan is None:
                # Unshareable cells (synthesis, ad-hoc tasks) keep their
                # relative order but form no group.
                token: object = ("solo", position)
            else:
                token = plan.key
                self._remaining[plan.key] = self._remaining.get(plan.key, 0) + 1
                horizon = self._horizons.get(plan.key)
                if horizon is None or plan.horizon > horizon:
                    self._horizons[plan.key] = plan.horizon
                    self._scenarios[plan.key] = Scenario.from_task_params(
                        task, dict(case_params)
                    )
            group_order.setdefault(token, len(group_order))
            annotated.append((group_order[token], position, cell, plan))
        annotated.sort(key=lambda item: (item[0], item[1]))
        self.schedule = [cell for _, _, cell, _ in annotated]
        self.plans = {
            index: plan for index, (_, _, _, plan) in enumerate(annotated)
        }

    def preloader_for(self, index: int) -> Optional[Preloader]:
        """The preloader a cell's child should inherit (preloading lazily).

        The parent-side build is bounded by the per-cell wall-clock budget:
        a space too big to build within one cell's budget would make every
        cell of its group TO anyway, so the group falls back to per-cell
        rebuilds (which report the TOs with the usual machinery).
        """
        plan = self.plans.get(index)
        if plan is None or plan.key in self._failed:
            return None
        if plan.key not in self.preloader:
            scenario = self._scenarios[plan.key]
            horizon = self._horizons[plan.key]
            label = (
                f"space preload for {scenario.exchange} "
                f"n={scenario.num_agents} t={scenario.max_faulty}"
            )
            started = time.perf_counter()
            try:
                with wall_clock_limit(self.timeout, label=label):
                    artefacts = self.preloader.ensure(scenario, horizon=horizon)
            except Exception:
                # WallClockExceeded (budget), MemoryError, anything else: the
                # group runs on the per-cell rebuild path instead of failing.
                self._failed.add(plan.key)
                self.preloader.release(plan.key)
                return None
            if self.verbose:
                states = (
                    artefacts.space.num_states()
                    if artefacts.space is not None else 0
                )
                print(
                    f"  [preload] {scenario.exchange} n={scenario.num_agents} "
                    f"t={scenario.max_faulty}: {states} states to horizon "
                    f"{artefacts.built_horizon} in "
                    f"{time.perf_counter() - started:.2f}s",
                    flush=True,
                )
        return self.preloader

    def forked(self, index: int) -> None:
        """Note that a cell has forked (or run); release drained groups."""
        plan = self.plans.get(index)
        if plan is None:
            return
        self._remaining[plan.key] -= 1
        if self._remaining[plan.key] <= 0:
            self.preloader.release(plan.key)


def run_table(
    spec: TableSpec,
    timeout: Optional[float] = 60.0,
    max_states: Optional[int] = 2_000_000,
    verbose: bool = False,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    term_grace: float = TERM_GRACE_SECONDS,
    share_spaces: bool = True,
) -> TableResult:
    """Run every cell of a table spec with the given budgets.

    With ``workers > 1`` up to that many cells run concurrently, each in its
    own forked child with the per-cell wall-clock budget still enforced by
    the scheduler.  A ``store`` journals every completed cell immediately;
    with ``resume=True`` cells whose canonical key the store already holds
    are reused instead of re-run, so an interrupted sweep loses at most the
    cells that were in flight.

    With ``share_spaces`` (the default) model-checking cells that read the
    same literature-protocol space are grouped and served from one
    parent-side build forked copy-on-write into each child, instead of every
    child rebuilding the space from scratch; ``share_spaces=False`` is the
    per-cell rebuild baseline (what the benchmarks compare against).
    Outcomes are identical either way — a preloaded space is byte-for-byte
    the space the cell would have built (see :mod:`repro.runtime.plan`) —
    only the wall-clock changes.  While the parent is building a group's
    space, harvesting of in-flight cells is delayed: a cell past its
    deadline is killed correspondingly late, but its recorded time is the
    child's own measurement, so the delay never inflates reported numbers.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    result = TableResult(spec=spec)
    cells = _resolved_cells(spec, max_states)
    if store is not None:
        store.record_spec(
            spec.name, spec.title, spec.row_header, cells, engine=spec.engine
        )

    def reusable(stored: CaseOutcome, stored_budget: Optional[float]) -> bool:
        # A completed (or errored) cell is conclusive under any budget; a TO
        # is only conclusive if it was taken under at least the current
        # budget — resuming with a larger --timeout must retry TO cells.
        if not stored.timed_out:
            return True
        return (
            timeout is not None
            and stored_budget is not None
            and stored_budget >= timeout
        )

    progress = _Progress(spec.name, len(cells), verbose)
    pending: List[Tuple[Tuple, str, str, Dict[str, object]]] = []
    for row_key, column, task, case_params in cells:
        stored = store.get(task, case_params) if store is not None and resume else None
        if stored is not None and reusable(stored, store.budget_for(task, case_params)):
            result.outcomes[(row_key, column)] = stored
            progress.report(row_key, column, stored, cached=True)
        else:
            pending.append((row_key, column, task, case_params))

    def record(row_key: Tuple, column: str, outcome: CaseOutcome) -> None:
        result.outcomes[(row_key, column)] = outcome
        if store is not None:
            store.record(outcome, timeout=timeout)
        progress.report(row_key, column, outcome)

    shared = (
        _SharedSpaces(pending, timeout, verbose) if share_spaces else None
    )
    if shared is not None:
        pending = shared.schedule

    if workers == 1:
        for index, (row_key, column, task, case_params) in enumerate(pending):
            preloaded = (
                shared.preloader_for(index) if shared is not None else None
            )
            outcome = run_case(
                task, case_params, timeout=timeout, term_grace=term_grace,
                preloaded=preloaded,
            )
            if shared is not None:
                shared.forked(index)
            record(row_key, column, outcome)
        return result

    # Worker-pool scheduler: keep up to ``workers`` forked children in
    # flight; wake on child exit (their sentinels) or the earliest deadline,
    # harvest whatever finished or busted its budget, then refill.
    in_flight: Dict[Tuple[Tuple, str], CaseHandle] = {}
    next_cell = 0
    while next_cell < len(pending) or in_flight:
        while next_cell < len(pending) and len(in_flight) < workers:
            row_key, column, task, case_params = pending[next_cell]
            preloaded = (
                shared.preloader_for(next_cell) if shared is not None else None
            )
            in_flight[(row_key, column)] = CaseHandle(
                task, case_params, timeout=timeout, term_grace=term_grace,
                preloaded=preloaded,
            )
            if shared is not None:
                shared.forked(next_cell)
            next_cell += 1
        now = time.perf_counter()
        deadlines = [
            handle.deadline - now
            for handle in in_flight.values()
            if handle.deadline is not None
        ]
        wait_for = max(0.0, min(deadlines)) if deadlines else None
        _wait_sentinels(
            [handle.sentinel for handle in in_flight.values()], timeout=wait_for
        )
        for key in list(in_flight):
            outcome = in_flight[key].poll()
            if outcome is not None:
                del in_flight[key]
                record(key[0], key[1], outcome)
    return result


def _timing_split(outcome: Optional[CaseOutcome]) -> Optional[str]:
    """``build+check`` seconds for one cell, or None when not recorded."""
    if (
        outcome is None
        or outcome.build_seconds is None
        or outcome.check_seconds is None
    ):
        return None
    return f"{outcome.build_seconds:.3f}+{outcome.check_seconds:.3f}"


def _has_timing(result: TableResult) -> bool:
    return any(
        _timing_split(outcome) is not None
        for outcome in result.outcomes.values()
    )


def _render_grid(title: str, header: List[str], body: List[List[str]]) -> str:
    widths = [len(name) for name in header]
    for row in body:
        for position, value in enumerate(row):
            widths[position] = max(widths[position], len(value))
    lines = [title]
    lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in body:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def render_table(result: TableResult) -> str:
    """Render a table result as aligned text (paper-style rows and columns).

    When any cell recorded the build/check timing split, a second grid with
    per-cell ``build+check`` seconds follows the paper-style one (build =
    shareable model + space construction, check = everything else).
    """
    spec = result.spec
    columns = spec.columns()
    header = list(spec.row_header) + columns
    body: List[List[str]] = []
    for row_key, _ in spec.rows:
        row = [str(part) for part in row_key]
        for column in columns:
            row.append(result.cell(row_key, column))
        body.append(row)
    rendered = _render_grid(spec.title, header, body)

    if not _has_timing(result):
        return rendered
    split_body: List[List[str]] = []
    for row_key, _ in spec.rows:
        row = [str(part) for part in row_key]
        for column in columns:
            split = _timing_split(result.outcomes.get((row_key, column)))
            row.append(split if split is not None else "-")
        split_body.append(row)
    breakdown = _render_grid(
        "Timing split: shareable build + check seconds", header, split_body
    )
    return rendered + "\n\n" + breakdown


def render_json(result: TableResult) -> str:
    """Render a table result as structured JSON (full outcomes, not just cells).

    Each populated cell is a versioned :class:`~repro.api.TableCell` record
    (``schema_version`` and type tag included), so the export round-trips
    through :func:`repro.api.result_from_json`.
    """
    spec = result.spec
    columns = spec.columns()
    rows = []
    for row_key, _ in spec.rows:
        cells: Dict[str, object] = {}
        for column in columns:
            outcome = result.outcomes.get((row_key, column))
            if outcome is None:
                cells[column] = None
                continue
            cells[column] = TableCell.from_outcome(column, outcome).to_json()
        rows.append({"key": list(row_key), "cells": cells})
    return json.dumps(
        {
            "table": spec.name,
            "title": spec.title,
            "row_header": list(spec.row_header),
            "engine": spec.engine,
            "columns": columns,
            "rows": rows,
        },
        indent=2,
        sort_keys=True,
    )


def render_csv(result: TableResult) -> str:
    """Render a table result as CSV: row-header columns then one per cell.

    When any cell recorded the build/check timing split, each cell column is
    followed by ``<column> build_s`` and ``<column> check_s`` columns (empty
    for cells without a split — timeouts, errors, pre-split journals).
    """
    spec = result.spec
    columns = spec.columns()
    timing = _has_timing(result)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = list(spec.row_header)
    for column in columns:
        header.append(column)
        if timing:
            header.extend([f"{column} build_s", f"{column} check_s"])
    writer.writerow(header)
    for row_key, _ in spec.rows:
        row = [str(part) for part in row_key]
        for column in columns:
            row.append(result.cell(row_key, column))
            if timing:
                outcome = result.outcomes.get((row_key, column))
                if outcome is not None and outcome.build_seconds is not None:
                    row.extend(
                        [f"{outcome.build_seconds:.3f}",
                         f"{outcome.check_seconds:.3f}"]
                    )
                else:
                    row.extend(["", ""])
        writer.writerow(row)
    return buffer.getvalue()


def _percentile(ordered: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * fraction
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def render_timings(result: TableResult) -> str:
    """Render the ``report --timings`` view: build/check latency per column.

    One row per grid column with the p50/p95/max of the build and check
    seconds across that column's completed cells, plus a closing ``all``
    row over every cell — the at-a-glance answer to "which task is slow,
    and is it the space build or the satisfaction pass".  Cells without a
    recorded split (timeouts, errors, pre-split journals) are counted but
    excluded from the distributions.
    """
    spec = result.spec
    columns = spec.columns()
    per_column: Dict[str, List[Tuple[float, float]]] = {
        column: [] for column in columns
    }
    unreported = 0
    for (_, column), outcome in result.outcomes.items():
        if outcome.build_seconds is None or outcome.check_seconds is None:
            unreported += 1
            continue
        per_column.setdefault(column, []).append(
            (outcome.build_seconds, outcome.check_seconds)
        )

    def _row(label: str, samples: List[Tuple[float, float]]) -> List[str]:
        builds = sorted(sample[0] for sample in samples)
        checks = sorted(sample[1] for sample in samples)
        total = sum(builds) + sum(checks)
        return [
            label,
            str(len(samples)),
            f"{_percentile(builds, 0.5):.3f}",
            f"{_percentile(builds, 0.95):.3f}",
            f"{_percentile(checks, 0.5):.3f}",
            f"{_percentile(checks, 0.95):.3f}",
            f"{max(checks, default=0.0):.3f}",
            f"{total:.3f}",
        ]

    header = ["column", "cells", "build_p50", "build_p95",
              "check_p50", "check_p95", "check_max", "total_s"]
    body = [_row(column, per_column.get(column, [])) for column in columns]
    everything = [sample for samples in per_column.values()
                  for sample in samples]
    body.append(_row("all", everything))
    title = f"Timings — {spec.title} (seconds, percentiles across cells)"
    rendered = _render_grid(title, header, body)
    if unreported:
        rendered += (f"\n({unreported} cell(s) without a timing split: "
                     f"timeouts, errors, or pre-split journals)")
    return rendered


# ---------------------------------------------------------------------------
# The paper's tables
# ---------------------------------------------------------------------------


def _nt_grid(max_n: int, min_n: int = 2) -> List[Tuple[int, int]]:
    """The (n, t) grid used by Table 1: all t from 1 to n, n from 2 up."""
    grid = []
    for n in range(min_n, max_n + 1):
        for t in range(1, n + 1):
            grid.append((n, t))
    return grid


def table1_spec(
    max_n: int = 5, include_count: bool = True, engine: str = DEFAULT_ENGINE
) -> TableSpec:
    """Table 1: SBA model checking and synthesis, FloodSet vs Count-FloodSet."""
    spec = TableSpec(
        name="table1",
        title="Table 1: running times for SBA model checking and synthesis "
        "(crash failures, |V| = 2)",
        row_header=("n", "t"),
        engine=validate_engine(engine),
    )
    for n, t in _nt_grid(max_n):
        cells: List[CellSpec] = [
            (
                "floodset-mc",
                "sba-model-check",
                {"exchange": "floodset", "num_agents": n, "max_faulty": t},
            ),
            (
                "floodset-synth",
                "sba-synthesis",
                {"exchange": "floodset", "num_agents": n, "max_faulty": t},
            ),
        ]
        if include_count:
            cells.extend(
                [
                    (
                        "count-mc",
                        "sba-model-check",
                        {"exchange": "count", "num_agents": n, "max_faulty": t},
                    ),
                    (
                        "count-synth",
                        "sba-synthesis",
                        {"exchange": "count", "num_agents": n, "max_faulty": t},
                    ),
                ]
            )
        spec.rows.append(((n, t), cells))
    return spec


def table2_spec(max_n: int = 4, engine: str = DEFAULT_ENGINE) -> TableSpec:
    """Table 2: SBA model checking for Diff and Dwork–Moses, varying rounds."""
    spec = TableSpec(
        name="table2",
        title="Table 2: running times for SBA model checking, Diff and "
        "Dwork-Moses protocols (crash failures, |V| = 2)",
        row_header=("n", "t", "rounds"),
        engine=validate_engine(engine),
    )
    for n in range(2, max_n + 1):
        for t in range(1, n + 1):
            for rounds in range(1, t + 2):
                cells: List[CellSpec] = [
                    (
                        "diff-mc",
                        "sba-model-check",
                        {
                            "exchange": "diff",
                            "num_agents": n,
                            "max_faulty": t,
                            "rounds": rounds,
                        },
                    ),
                    (
                        "dwork-moses-mc",
                        "sba-model-check",
                        {
                            "exchange": "dwork-moses",
                            "num_agents": n,
                            "max_faulty": t,
                            "rounds": rounds,
                        },
                    ),
                ]
                spec.rows.append(((n, t, rounds), cells))
    return spec


def table3_spec(max_n: int = 4, engine: str = DEFAULT_ENGINE) -> TableSpec:
    """Table 3: EBA synthesis, E_min and E_basic, crash and sending omissions."""
    spec = TableSpec(
        name="table3",
        title="Table 3: running times for EBA synthesis",
        row_header=("n", "t"),
        engine=validate_engine(engine),
    )
    for n in range(2, max_n + 1):
        for t in range(1, n + 1):
            cells: List[CellSpec] = []
            for exchange in ("emin", "ebasic"):
                for failures in ("crash", "sending"):
                    cells.append(
                        (
                            f"{exchange}-{failures}",
                            "eba-synthesis",
                            {
                                "exchange": exchange,
                                "num_agents": n,
                                "max_faulty": t,
                                "failures": failures,
                            },
                        )
                    )
            spec.rows.append(((n, t), cells))
    return spec


def ablation_temporal_only(max_n: int = 5, engine: str = DEFAULT_ENGINE) -> TableSpec:
    """Ablation: purely temporal SBA checking scales further (Section 13)."""
    spec = TableSpec(
        name="ablation-temporal",
        title="Ablation: purely temporal SBA specification checking "
        "(no knowledge operators)",
        row_header=("exchange", "n", "t"),
        engine=validate_engine(engine),
    )
    for exchange in ("floodset", "dwork-moses"):
        for n in range(3, max_n + 1):
            t = n - 1
            spec.rows.append(
                (
                    (exchange, n, t),
                    [
                        (
                            "temporal-mc",
                            "sba-temporal-only",
                            {"exchange": exchange, "num_agents": n, "max_faulty": t},
                        ),
                        (
                            "full-mc",
                            "sba-model-check",
                            {"exchange": exchange, "num_agents": n, "max_faulty": t},
                        ),
                    ],
                )
            )
    return spec


def ablation_failure_models(max_n: int = 3, engine: str = DEFAULT_ENGINE) -> TableSpec:
    """Ablation: receiving and general omissions behave like sending omissions."""
    spec = TableSpec(
        name="ablation-failures",
        title="Ablation: EBA synthesis under other omission failure models",
        row_header=("n", "t"),
        engine=validate_engine(engine),
    )
    for n in range(2, max_n + 1):
        for t in range(1, n + 1):
            cells: List[CellSpec] = []
            for failures in ("sending", "receiving", "general"):
                cells.append(
                    (
                        f"emin-{failures}",
                        "eba-synthesis",
                        {
                            "exchange": "emin",
                            "num_agents": n,
                            "max_faulty": t,
                            "failures": failures,
                        },
                    )
                )
            spec.rows.append(((n, t), cells))
    return spec
