"""The persistent on-disk artefact store behind warm-starting sessions.

A store directory is a content-addressed map from query identity to
versioned result JSON, shared safely between processes:

* **Key schema.**  A result's identity is the triple ``(op,
  Scenario.canonical_json(), results schema version)`` — the engine is part
  of the canonical scenario encoding, so backends never share entries.  The
  identity is serialised to canonical JSON and hashed (SHA-256) into the
  file name; the identity is *also* stored inside the record and checked on
  read, so a renamed or colliding file can never answer the wrong query.

* **Crash consistency.**  Writes go to a temporary file in the store
  directory and are published with ``os.replace`` — readers see either the
  old record or the complete new one, never a torn write.  A file that
  fails to parse, carries the wrong format/schema version, or does not
  match its own key is **quarantined**: moved (atomically) into
  ``quarantine/`` with a warning, counted, and treated as a miss — a
  corrupt store degrades to cold queries, it never takes the service down.

* **Durability is best-effort.**  A failed write (``ENOSPC``, permissions,
  a vanished directory) is counted and logged; the query that triggered it
  still answers from the freshly built artefact.

* **The store is bounded.**  With ``max_bytes``/``max_entries`` set, a
  compaction pass (:meth:`ArtefactStore.compact`) drops the least recently
  used entries — recency is file mtime, refreshed on every hit — until the
  live entries (``results/`` plus ``artefacts/``) fit the bounds again, and
  the store runs that pass itself every ``compact_interval`` writes.
  Compaction is safe under concurrent readers *in any process*: removal is
  a plain ``unlink``, and a reader that loses the race simply sees a miss —
  the same degraded path a crash or quarantine already exercises.  ``repro
  store stats|compact`` runs the scan/pass from the command line.

* **Pickled artefacts are opt-in.**  Typed results are plain JSON and safe
  to share.  Heavyweight build artefacts (levelled spaces) can also be
  stored, pickled, under ``artefacts/`` — but only when the store is
  constructed with ``allow_pickle=True``, because unpickling executes code
  and is only safe for store directories the operator trusts end-to-end.

``repro serve --store DIR`` points the serving session here, so a restarted
or second server process answers repeated queries from the store tier
without rebuilding anything.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.results import SCHEMA_VERSION
from repro.obs import metrics as obs_metrics

logger = logging.getLogger(__name__)

#: Version of the on-disk record layout (wrapper shape, directory scheme).
#: Bump when the wrapper changes; readers quarantine anything else.
STORE_FORMAT_VERSION = 1

_RESULTS_DIR = "results"
_ARTEFACTS_DIR = "artefacts"
_QUARANTINE_DIR = "quarantine"

#: Subdirectories whose entries count towards the size/entry bounds.
_BOUNDED_DIRS = (_RESULTS_DIR, _ARTEFACTS_DIR)

#: Stray ``.tmp`` files (crashed writers) older than this are removed
#: during compaction.
_STALE_TMP_SECONDS = 3600.0


class ArtefactStore:
    """A process-shared, crash-consistent store of serialised artefacts.

    ``max_bytes``/``max_entries`` bound the live entries (see module docs);
    ``compact_interval`` is how many successful writes may land between the
    store's own compaction passes when a bound is configured.
    """

    def __init__(
        self,
        root,
        allow_pickle: bool = False,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        compact_interval: int = 64,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if compact_interval < 1:
            raise ValueError(
                f"compact_interval must be >= 1, got {compact_interval}"
            )
        self.root = Path(root)
        self.allow_pickle = bool(allow_pickle)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._compact_interval = compact_interval
        self._writes_since_compact = 0
        self._compact_lock = threading.Lock()
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "write_errors": 0,
            "quarantined": 0,
            "compactions": 0,
            "compacted": 0,
        }
        registry = obs_metrics.REGISTRY if metrics is None else metrics
        self._m_events = registry.counter(
            "repro_store_events_total",
            "Persistent artefact-store events (hits, misses, writes, "
            "write_errors, quarantined, compactions, compacted)",
        )
        for subdir in (_RESULTS_DIR, _ARTEFACTS_DIR, _QUARANTINE_DIR):
            (self.root / subdir).mkdir(parents=True, exist_ok=True)
        if self.max_bytes is not None or self.max_entries is not None:
            # A restarted process trims an over-bound directory immediately
            # instead of waiting out the first compact_interval writes.
            self.compact()

    # ---------------------------------------------------------------- keying

    @staticmethod
    def result_identity(op: str, scenario_key: str) -> str:
        """The canonical identity string of one result entry.

        ``scenario_key`` is :meth:`Scenario.canonical_json` output (engine
        included); the results schema version is part of the identity, so a
        schema bump starts a disjoint namespace instead of serving stale
        shapes.
        """
        return json.dumps(
            {"op": op, "scenario": scenario_key, "schema_version": SCHEMA_VERSION},
            sort_keys=True, separators=(",", ":"),
        )

    @staticmethod
    def artefact_identity(kind: str, key: str) -> str:
        """The canonical identity string of one pickled-artefact entry."""
        return json.dumps(
            {"kind": kind, "key": key, "format": STORE_FORMAT_VERSION},
            sort_keys=True, separators=(",", ":"),
        )

    def _path_for(self, subdir: str, identity: str, suffix: str) -> Path:
        digest = hashlib.sha256(identity.encode()).hexdigest()
        return self.root / subdir / f"{digest}{suffix}"

    def result_path(self, op: str, scenario_key: str) -> Path:
        """Where the record for ``(op, scenario)`` lives (exists or not)."""
        return self._path_for(
            _RESULTS_DIR, self.result_identity(op, scenario_key), ".json"
        )

    # ------------------------------------------------------------- plumbing

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[counter] += amount
        self._m_events.inc(amount, event=counter)

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime so compaction sees it as recently used."""
        try:
            os.utime(str(path))
        except OSError:  # raced with an unlink; the read already succeeded
            pass

    def stats(self) -> Dict[str, int]:
        """A fresh snapshot of the store counters (safe to hand out)."""
        with self._lock:
            return dict(self._counters)

    def _atomic_write(self, path: Path, data: bytes) -> bool:
        """Publish ``data`` at ``path`` via write-to-temp + rename.

        Returns False (and counts ``write_errors``) on any OS failure —
        a full disk must degrade durability, not break the query.
        """
        fd = None
        tmp_name = None
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
            )
            os.write(fd, data)
            os.close(fd)
            fd = None
            os.replace(tmp_name, str(path))
            tmp_name = None
            self._count("writes")
            self._maybe_compact()
            return True
        except OSError as exc:
            reason = errno.errorcode.get(exc.errno, exc.errno) if exc.errno else exc
            logger.warning("artefact store: write of %s failed (%s); "
                           "continuing without persisting", path.name, reason)
            self._count("write_errors")
            return False
        finally:
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed/invalid
                    pass
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    def quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside (atomically, without clobbering) and log why.

        The moved file keeps its name under ``quarantine/`` (a numeric
        suffix separates generations), so an operator can inspect what went
        wrong; the live directory is clean again and the next query simply
        rebuilds.  The claim on a quarantine name is an **exclusive-create
        hard link**: ``os.link`` fails with ``EEXIST`` instead of silently
        replacing, so two processes quarantining concurrently — or a new
        corrupt generation racing an old one — can never overwrite a
        quarantined file, unlike the probe-then-``os.replace`` dance this
        replaces (the probe was stale by the time the replace ran).
        """
        quarantine_root = self.root / _QUARANTINE_DIR
        target = quarantine_root / path.name
        attempt = 0
        linked = False
        while True:
            try:
                os.link(str(path), str(target))
                linked = True
                break
            except FileExistsError:
                attempt += 1
                if attempt > 1000:
                    break
                target = quarantine_root / f"{path.name}.{attempt}"
            except FileNotFoundError:
                break  # a racing process quarantined (or removed) it first
            except OSError:
                # Filesystem without hard links: fall back to a rename onto
                # a per-process-unique name, which no other process can be
                # targeting, so it still cannot clobber a sibling's work.
                target = quarantine_root / (
                    f"{path.name}.pid{os.getpid()}.{attempt}"
                )
                try:
                    os.replace(str(path), str(target))
                    linked = True
                except OSError:
                    pass
                break
        if linked:
            try:
                os.unlink(str(path))
            except OSError:  # raced: the link is what mattered
                pass
        self._count("quarantined")
        logger.warning(
            "artefact store: quarantined %s (%s)", path.name, reason
        )

    # ------------------------------------------------------------- lifecycle

    def _bounded_entries(self) -> List[Tuple[float, int, Path]]:
        """Live ``(mtime, size, path)`` entries, sweeping stale tmp files."""
        now = time.time()
        entries: List[Tuple[float, int, Path]] = []
        for subdir in _BOUNDED_DIRS:
            try:
                listing = list(os.scandir(self.root / subdir))
            except OSError:
                continue
            for item in listing:
                try:
                    stat = item.stat()
                    if not item.is_file():
                        continue
                    if item.name.endswith(".tmp"):
                        # A crashed writer's leavings; sweep once stale.
                        if now - stat.st_mtime > _STALE_TMP_SECONDS:
                            os.unlink(item.path)
                        continue
                    entries.append((stat.st_mtime, stat.st_size, Path(item.path)))
                except OSError:  # vanished mid-scan: someone else's unlink
                    continue
        return entries

    def disk_stats(self) -> Dict[str, Dict[str, int]]:
        """On-disk entry counts and byte totals, per subdirectory.

        ``total`` covers the bounded set (``results`` + ``artefacts``) —
        the number compaction compares against ``max_bytes``/``max_entries``.
        ``quarantine`` is reported alongside but never counts towards the
        bounds (it is diagnostic state an operator clears by hand).
        """
        stats: Dict[str, Dict[str, int]] = {}
        total = {"entries": 0, "bytes": 0}
        for subdir in _BOUNDED_DIRS + (_QUARANTINE_DIR,):
            entries = 0
            size = 0
            try:
                listing = list(os.scandir(self.root / subdir))
            except OSError:
                listing = []
            for item in listing:
                try:
                    if not item.is_file() or item.name.endswith(".tmp"):
                        continue
                    entries += 1
                    size += item.stat().st_size
                except OSError:
                    continue
            stats[subdir] = {"entries": entries, "bytes": size}
            if subdir in _BOUNDED_DIRS:
                total["entries"] += entries
                total["bytes"] += size
        stats["total"] = total
        return stats

    def _maybe_compact(self) -> None:
        """Run the store's own compaction pass every ``compact_interval`` writes."""
        if self.max_bytes is None and self.max_entries is None:
            return
        with self._lock:
            self._writes_since_compact += 1
            due = self._writes_since_compact >= self._compact_interval
            if due:
                self._writes_since_compact = 0
        if due:
            self.compact()

    def compact(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> Dict[str, int]:
        """Drop least-recently-used entries until the store fits its bounds.

        Recency is mtime — refreshed on every read hit, so the pass is a
        true LRU, not insertion order.  Arguments override the configured
        bounds for one pass (the ``repro store compact`` command).  Removal
        is plain ``unlink``: concurrent readers in other processes observe
        either the entry or a miss, never an error, and two concurrent
        compactors merely race to remove the same victims.  Returns a
        summary of what was examined, kept and removed.
        """
        bound_bytes = self.max_bytes if max_bytes is None else max_bytes
        bound_entries = self.max_entries if max_entries is None else max_entries
        with self._compact_lock:
            entries = self._bounded_entries()
            entries.sort(key=lambda entry: entry[0], reverse=True)  # newest first
            kept = kept_bytes = 0
            removed = removed_bytes = 0
            for _mtime, size, path in entries:
                over_entries = (
                    bound_entries is not None and kept + 1 > bound_entries
                )
                over_bytes = (
                    bound_bytes is not None and kept_bytes + size > bound_bytes
                )
                if not over_entries and not over_bytes:
                    kept += 1
                    kept_bytes += size
                    continue
                try:
                    os.unlink(str(path))
                except OSError:  # already gone: a racing compactor's unlink
                    continue
                removed += 1
                removed_bytes += size
        if removed:
            self._count("compacted", removed)
        self._count("compactions")
        if removed:
            logger.info(
                "artefact store: compacted %d entries (%d bytes); "
                "%d entries (%d bytes) remain",
                removed, removed_bytes, kept, kept_bytes,
            )
        return {
            "examined": len(entries),
            "kept": kept,
            "kept_bytes": kept_bytes,
            "removed": removed,
            "removed_bytes": removed_bytes,
        }

    # -------------------------------------------------------------- results

    def put_result(self, op: str, scenario_key: str, payload: Dict[str, object]) -> bool:
        """Persist one typed-result JSON payload; best-effort, never raises."""
        record = {
            "format": STORE_FORMAT_VERSION,
            "schema_version": SCHEMA_VERSION,
            "op": op,
            "scenario": scenario_key,
            "result": payload,
        }
        path = self.result_path(op, scenario_key)
        try:
            data = json.dumps(record, sort_keys=True).encode()
        except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
            logger.warning("artefact store: unserialisable result for %s: %s",
                           path.name, exc)
            self._count("write_errors")
            return False
        return self._atomic_write(path, data)

    def get_result(self, op: str, scenario_key: str) -> Optional[Dict[str, object]]:
        """The stored result payload for ``(op, scenario)``, or None.

        Counts a hit or miss; anything unreadable or mismatched is
        quarantined and reported as a miss.
        """
        path = self.result_path(op, scenario_key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError as exc:  # pragma: no cover - unreadable, not absent
            self.quarantine(path, f"unreadable: {exc}")
            self._count("misses")
            return None
        try:
            record = json.loads(raw)
        except ValueError as exc:
            self.quarantine(path, f"corrupt JSON: {exc}")
            self._count("misses")
            return None
        reason = self._validate_result_record(record, op, scenario_key)
        if reason is not None:
            self.quarantine(path, reason)
            self._count("misses")
            return None
        self._count("hits")
        self._touch(path)
        return record["result"]

    @staticmethod
    def _validate_result_record(
        record: object, op: str, scenario_key: str
    ) -> Optional[str]:
        """Why a parsed record must not be served (None when it may be)."""
        if not isinstance(record, dict):
            return "record is not a JSON object"
        if record.get("format") != STORE_FORMAT_VERSION:
            return (f"store format {record.get('format')!r} "
                    f"(this build reads {STORE_FORMAT_VERSION})")
        if record.get("schema_version") != SCHEMA_VERSION:
            return (f"result schema version {record.get('schema_version')!r} "
                    f"(this build reads {SCHEMA_VERSION})")
        if record.get("op") != op or record.get("scenario") != scenario_key:
            return "key mismatch (file does not answer this query)"
        result = record.get("result")
        if not isinstance(result, dict):
            return "record carries no result object"
        if result.get("schema_version") != SCHEMA_VERSION:
            return (f"payload schema version {result.get('schema_version')!r} "
                    f"(this build reads {SCHEMA_VERSION})")
        return None

    # ---------------------------------------------- pickled artefacts (opt-in)

    def put_artefact(self, kind: str, key: str, artefact: object) -> bool:
        """Persist one pickled build artefact; no-op unless ``allow_pickle``."""
        if not self.allow_pickle:
            return False
        identity = self.artefact_identity(kind, key)
        path = self._path_for(_ARTEFACTS_DIR, identity, ".pkl")
        try:
            data = pickle.dumps({"identity": identity, "artefact": artefact})
        except Exception as exc:  # unpicklable artefacts degrade, never raise
            logger.warning("artefact store: cannot pickle %s artefact: %s",
                           kind, exc)
            self._count("write_errors")
            return False
        return self._atomic_write(path, data)

    def get_artefact(self, kind: str, key: str) -> Optional[object]:
        """The stored artefact for ``(kind, key)``; None unless ``allow_pickle``."""
        if not self.allow_pickle:
            return None
        identity = self.artefact_identity(kind, key)
        path = self._path_for(_ARTEFACTS_DIR, identity, ".pkl")
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError as exc:  # pragma: no cover - unreadable, not absent
            self.quarantine(path, f"unreadable: {exc}")
            self._count("misses")
            return None
        try:
            record = pickle.loads(raw)
        except Exception as exc:
            self.quarantine(path, f"corrupt pickle: {exc}")
            self._count("misses")
            return None
        if not isinstance(record, dict) or record.get("identity") != identity:
            self.quarantine(path, "key mismatch (file does not answer this query)")
            self._count("misses")
            return None
        self._count("hits")
        self._touch(path)
        return record.get("artefact")
