"""The :class:`Scenario` value object: one fully-specified model configuration.

A scenario names everything an epistemic query needs — the information
exchange, the system size ``(n, t)``, the value domain, the failure model,
the satisfaction engine, an optional horizon override and the
protocol-variant flag — and is validated once, at construction.  It is
frozen and hashable, so it can key caches directly, and it has a canonical
JSON form (:meth:`Scenario.canonical_json`) that replaces the hand-rolled
``(task, params)`` store keys: two parameter dictionaries that mean the same
configuration always normalise to the same key, whatever defaults they spell
out.

The scenario/task mapping is bidirectional:

* :meth:`Scenario.from_task_params` builds a scenario from a task name and
  the loose keyword dictionary the experiment harness has always used,
  validating that every parameter is known and applicable to that task;
* :meth:`Scenario.to_params` renders the scenario back into the *minimal*
  parameter dictionary for a task — defaults omitted, the engine always
  explicit — which is exactly the form the pre-redesign result journals used
  for their keys, so old journals keep resuming and reporting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.engines import DEFAULT_ENGINE, validate_engine
from repro.failures import FAILURE_MODELS

#: Exchanges usable for the Simultaneous Byzantine Agreement experiments.
SBA_EXCHANGES = ("floodset", "count", "diff", "dwork-moses")
#: Exchanges usable for the Eventual Byzantine Agreement experiments.
EBA_EXCHANGES = ("emin", "ebasic")

#: The experiment-task names, with the scenario fields each accepts beyond
#: the always-applicable core (exchange, n, t, failures, max_states, engine).
TASK_FIELDS: Dict[str, Tuple[str, ...]] = {
    "sba-model-check": ("num_values", "rounds", "optimal_protocol"),
    "sba-temporal-only": ("num_values",),
    "sba-synthesis": ("num_values", "rounds"),
    "eba-model-check": (),
    "eba-synthesis": (),
}

#: Fields every task accepts.
_CORE_FIELDS = ("exchange", "num_agents", "max_faulty", "failures", "max_states", "engine")

#: The paper's default failure model per family: the SBA experiments
#: (Tables 1 and 2) run crash failures, the EBA experiments (Table 3) run
#: sending omissions — the model the ``P0`` optimality result is stated for.
FAMILY_DEFAULT_FAILURES = {"sba": "crash", "eba": "sending"}


def task_family(task: str) -> str:
    """The protocol family (``sba`` or ``eba``) of a task name."""
    if task not in TASK_FIELDS:
        raise ValueError(f"unknown task {task!r}; known tasks: {sorted(TASK_FIELDS)}")
    return task.split("-", 1)[0]


@dataclass(frozen=True)
class Scenario:
    """A validated, hashable model configuration for epistemic queries.

    ``failures=None`` means "the paper's default for the family" and is
    normalised at construction (``crash`` for SBA exchanges, ``sending``
    omissions for EBA exchanges), so two scenarios that mean the same
    configuration always compare and hash equal.
    """

    exchange: str
    num_agents: int
    max_faulty: int
    num_values: int = 2
    failures: Optional[str] = None
    rounds: Optional[int] = None
    optimal_protocol: bool = False
    max_states: Optional[int] = None
    engine: str = DEFAULT_ENGINE

    def __post_init__(self) -> None:
        if self.exchange not in SBA_EXCHANGES + EBA_EXCHANGES:
            raise ValueError(
                f"{self.exchange!r} is not a known exchange (expected one of "
                f"{SBA_EXCHANGES + EBA_EXCHANGES})"
            )
        for name in ("num_agents", "max_faulty", "num_values"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{name} must be an integer, got {value!r}")
        if self.num_agents < 1:
            raise ValueError(f"num_agents must be >= 1, got {self.num_agents}")
        if self.max_faulty < 0:
            raise ValueError(f"max_faulty must be >= 0, got {self.max_faulty}")
        if self.num_values < 2:
            raise ValueError(f"num_values must be >= 2, got {self.num_values}")
        if self.family == "eba" and self.num_values != 2:
            raise ValueError(
                "EBA exchanges fix the value domain to {0, 1}; "
                f"got num_values={self.num_values}"
            )
        if self.failures is None:
            object.__setattr__(self, "failures", self.default_failures())
        if self.failures not in FAILURE_MODELS:
            raise ValueError(
                f"{self.failures!r} is not a failure model (expected one of "
                f"{FAILURE_MODELS})"
            )
        if self.rounds is not None and (
            not isinstance(self.rounds, int) or isinstance(self.rounds, bool)
            or self.rounds < 0
        ):
            raise ValueError(f"rounds must be a non-negative integer, got {self.rounds!r}")
        if self.max_states is not None and (
            not isinstance(self.max_states, int) or isinstance(self.max_states, bool)
            or self.max_states < 1
        ):
            raise ValueError(f"max_states must be a positive integer, got {self.max_states!r}")
        validate_engine(self.engine)

    # ------------------------------------------------------------- structure

    @property
    def family(self) -> str:
        """The protocol family of the exchange: ``sba`` or ``eba``."""
        return "eba" if self.exchange in EBA_EXCHANGES else "sba"

    def default_failures(self) -> str:
        """The paper's default failure model for this scenario's family."""
        return FAMILY_DEFAULT_FAILURES[self.family]

    def check_task(self) -> str:
        """The model-checking task name for this scenario's family."""
        return f"{self.family}-model-check"

    def synthesis_task(self) -> str:
        """The synthesis task name for this scenario's family."""
        return f"{self.family}-synthesis"

    def with_engine(self, engine: str) -> "Scenario":
        """The same scenario under another satisfaction engine."""
        return replace(self, engine=engine)

    # ----------------------------------------------------------- canonical form

    def to_params(self, task: Optional[str] = None) -> Dict[str, object]:
        """The minimal task-parameter dictionary for this scenario.

        Fields at their defaults are omitted (the engine is always explicit),
        which is the exact form the experiment journals have always keyed
        cells by — the canonical encoding is therefore stable across the API
        redesign.  With a ``task``, fields the task does not accept must be
        at their defaults (a scenario with a horizon override cannot run a
        task that takes no ``rounds``), and only applicable fields are
        emitted.
        """
        applicable = set(_CORE_FIELDS)
        if task is not None:
            family = task_family(task)
            if family != self.family:
                article = "an SBA" if family == "sba" else "an EBA"
                raise ValueError(
                    f"{self.exchange!r} is not {article} exchange (expected one of "
                    f"{SBA_EXCHANGES if family == 'sba' else EBA_EXCHANGES})"
                )
            applicable |= set(TASK_FIELDS[task])
        else:
            applicable |= {"num_values", "rounds", "optimal_protocol"}

        params: Dict[str, object] = {
            "exchange": self.exchange,
            "num_agents": self.num_agents,
            "max_faulty": self.max_faulty,
            "engine": self.engine,
        }
        optional = {
            "num_values": (self.num_values, 2),
            "failures": (self.failures, self.default_failures()),
            "rounds": (self.rounds, None),
            "optimal_protocol": (self.optimal_protocol, False),
            "max_states": (self.max_states, None),
        }
        for name, (value, default) in optional.items():
            if value == default:
                continue
            if name not in applicable:
                raise ValueError(
                    f"task {task!r} does not take {name!r} (set to {value!r})"
                )
            params[name] = value
        return params

    def canonical_json(self) -> str:
        """The canonical JSON encoding of this scenario (defaults omitted).

        Equal scenarios — however their constructors spelled the defaults —
        produce byte-identical canonical JSON, so the string can key caches,
        stores and journals directly.
        """
        return json.dumps(self.to_params(), sort_keys=True, separators=(",", ":"))

    def cell_key(self, task: str) -> str:
        """The canonical store key of one experiment cell: task + scenario."""
        return json.dumps(
            [task, self.to_params(task)], sort_keys=True, separators=(",", ":")
        )

    # ----------------------------------------------------------- conversions

    @classmethod
    def from_task_params(
        cls, task: str, params: Mapping[str, object]
    ) -> "Scenario":
        """Build a scenario from a task name and its loose parameter dict.

        Unknown parameters and parameters the task does not accept raise
        ``ValueError`` — this is the validation layer the loose-kwargs API
        never had.
        """
        family = task_family(task)
        allowed = set(_CORE_FIELDS) | set(TASK_FIELDS[task])
        unknown = set(params) - allowed
        if unknown:
            raise ValueError(
                f"task {task!r} does not take parameters {sorted(unknown)} "
                f"(accepted: {sorted(allowed)})"
            )
        if "exchange" not in params:
            raise ValueError(f"task {task!r} requires an 'exchange' parameter")
        scenario = cls(**dict(params))
        if scenario.family != family:
            article = "an SBA" if family == "sba" else "an EBA"
            expected = SBA_EXCHANGES if family == "sba" else EBA_EXCHANGES
            raise ValueError(
                f"{scenario.exchange!r} is not {article} exchange "
                f"(expected one of {expected})"
            )
        return scenario

    def to_json(self) -> Dict[str, object]:
        """The fully-explicit JSON form (every field spelled out)."""
        data: Dict[str, object] = {field.name: getattr(self, field.name) for field in fields(self)}
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output (or any subset).

        Missing fields take their defaults; unknown fields raise
        ``ValueError`` so a typo'd request never silently runs the default.
        """
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields {sorted(unknown)} (known: {sorted(known)})"
            )
        return cls(**dict(data))
